// Package report renders experiment results as fixed-width text
// tables and CSV, mirroring the rows/series of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a labelled grid of values: one row per x-axis point, one
// column per scheme.
type Table struct {
	Title   string
	XLabel  string
	YLabel  string
	Columns []string
	Rows    []Row
	// Notes appear under the table (calibration remarks, budgets).
	Notes []string
}

// Row is one x-axis point.
type Row struct {
	Label  string
	Values []float64
	// Missing marks columns with no measurement (e.g. IP beyond its
	// tractable scale); rendered as "-".
	Missing []bool
}

// AddRow appends a fully populated row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values, Missing: make([]bool, len(values))})
}

// AddRowMissing appends a row where mask[i] marks missing columns.
func (t *Table) AddRowMissing(label string, values []float64, mask []bool) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values, Missing: mask})
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(w, "   (%s by %s)\n", t.YLabel, t.XLabel)
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Values))
		for j, v := range r.Values {
			s := "-"
			if j >= len(r.Missing) || !r.Missing[j] {
				s = formatValue(v)
			}
			cells[i][j] = s
			if j+1 < len(widths) && len(s) > widths[j+1] {
				widths[j+1] = len(s)
			}
		}
	}
	for j, c := range t.Columns {
		if len(c) > widths[j+1] {
			widths[j+1] = len(c)
		}
	}
	fmt.Fprintf(w, "%-*s", widths[0]+2, t.XLabel)
	for j, c := range t.Columns {
		fmt.Fprintf(w, "%*s", widths[j+1]+2, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*len(widths)))
	for i, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", widths[0]+2, r.Label)
		for j := range r.Values {
			fmt.Fprintf(w, "%*s", widths[j+1]+2, cells[i][j])
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// FprintCSV renders the table as CSV.
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintf(w, "%s", csvEscape(t.XLabel))
	for _, c := range t.Columns {
		fmt.Fprintf(w, ",%s", csvEscape(c))
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s", csvEscape(r.Label))
		for j, v := range r.Values {
			if j < len(r.Missing) && r.Missing[j] {
				fmt.Fprint(w, ",")
			} else {
				fmt.Fprintf(w, ",%g", v)
			}
		}
		fmt.Fprintln(w)
	}
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
