package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/gantt"); external test
	// packages get the conventional ".test" suffix appended.
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// FileName maps each *ast.File to the path it was parsed from.
	FileName map[*ast.File]string
	Types    *types.Package
	Info     *types.Info
}

// Loader discovers, parses and type-checks every package of a module
// using only the standard library (go/parser + go/types with a
// source-level importer — no go/packages, no external processes).
type Loader struct {
	fset *token.FileSet
	// ModulePath is the module's import-path prefix (from go.mod).
	ModulePath string
	// Root is the module root directory.
	Root string

	std  types.Importer
	pkgs map[string]*Package // primary packages by import path
}

// NewLoader prepares a loader for the module rooted at dir (the
// directory containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	mod, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w (schedlint must run from a module root)", err)
	}
	path := ""
	for _, line := range strings.Split(string(mod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			path = strings.TrimSpace(rest)
			break
		}
	}
	if path == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", dir)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		ModulePath: path,
		Root:       dir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// skipDir lists directory names the walk never descends into,
// mirroring the go tool's conventions (testdata holds deliberately
// broken lint fixtures).
func skipDir(name string) bool {
	switch name {
	case "testdata", "vendor", ".git", ".github", "results":
		return true
	}
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadAll loads every package under the module root, including
// external _test packages, in a deterministic order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	// Dedupe with a set, not against the last entry: WalkDir yields a
	// directory's files and subdirectories interleaved in lexical
	// order, so a package directory with a subdirectory sorting into
	// the middle of its files (internal/obs with internal/obs/journal)
	// would be appended twice — and a twice-loaded package doubles its
	// call-graph nodes, fabricating lockorder self-edges.
	seen := map[string]bool{}
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if p != l.Root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			dir := filepath.Dir(p)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		primary, ext, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		if primary != nil {
			out = append(out, primary)
		}
		if ext != nil {
			out = append(out, ext)
		}
	}
	return out, nil
}

// LoadDir type-checks a single directory as the given import path —
// used by tests to load fixture packages that live outside the module
// tree.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	primary, ext, err := l.loadDir(path, dir)
	if err != nil {
		return nil, err
	}
	if primary == nil {
		return ext, nil
	}
	return primary, nil
}

// loadDir parses a directory and type-checks its primary package and,
// when present, its external _test package.
func (l *Loader) loadDir(path, dir string) (primary, external *Package, err error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	byName := map[string][]*ast.File{}
	names := map[*ast.File]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fp := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, fp, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		byName[f.Name.Name] = append(byName[f.Name.Name], f)
		names[f] = fp
	}
	if len(byName) == 0 {
		return nil, nil, nil
	}
	// Identify the primary package (at most one non-_test name) and the
	// optional external test package.
	var primaryName, extName string
	for name := range byName {
		if strings.HasSuffix(name, "_test") {
			extName = name
			continue
		}
		if primaryName != "" {
			return nil, nil, fmt.Errorf("analysis: %s holds two packages, %s and %s", dir, primaryName, name)
		}
		primaryName = name
	}
	if primaryName != "" {
		primary, err = l.check(path, dir, byName[primaryName], names)
		if err != nil {
			return nil, nil, err
		}
		l.pkgs[path] = primary
	}
	if extName != "" {
		external, err = l.check(path+".test", dir, byName[extName], names)
		if err != nil {
			return nil, nil, err
		}
	}
	return primary, external, nil
}

// check type-checks one group of files as a package.
func (l *Loader) check(path, dir string, files []*ast.File, names map[*ast.File]string) (*Package, error) {
	sort.Slice(files, func(i, j int) bool { return names[files[i]] < names[files[j]] })
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	fileNames := make(map[*ast.File]string, len(files))
	for _, f := range files {
		fileNames[f] = names[f]
	}
	return &Package{
		Path:     path,
		Dir:      dir,
		Fset:     l.fset,
		Files:    files,
		FileName: fileNames,
		Types:    tpkg,
		Info:     info,
	}, nil
}

// Import implements types.Importer: module-internal paths resolve
// through the loader itself, everything else falls back to the
// source-level standard-library importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.Root, filepath.FromSlash(rel))
		p, _, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: no Go package in %s", dir)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
