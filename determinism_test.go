package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
	"repro/internal/sched/ipsched"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/workload"
)

// These tests pin the determinism contract of the parallel solver core
// (DESIGN.md §"Concurrency"): for a fixed seed every scheduler and
// every figure runner must produce identical results regardless of the
// worker count, because all randomness is split deterministically from
// the seed and parallel results are merged in a fixed order. Only
// Result.SchedulingTime (real wall clock) may vary between runs.

// sameResult compares every deterministic field of two core.Results.
func sameResult(t *testing.T, name string, a, b *core.Result) {
	t.Helper()
	if a.Makespan != b.Makespan {
		t.Errorf("%s: makespan %v vs %v", name, a.Makespan, b.Makespan)
	}
	if a.SubBatches != b.SubBatches || a.TaskCount != b.TaskCount {
		t.Errorf("%s: sub-batches/tasks (%d,%d) vs (%d,%d)", name, a.SubBatches, a.TaskCount, b.SubBatches, b.TaskCount)
	}
	if a.RemoteTransfers != b.RemoteTransfers || a.RemoteBytes != b.RemoteBytes {
		t.Errorf("%s: remote traffic (%d,%d) vs (%d,%d)", name, a.RemoteTransfers, a.RemoteBytes, b.RemoteTransfers, b.RemoteBytes)
	}
	if a.ReplicaTransfers != b.ReplicaTransfers || a.ReplicaBytes != b.ReplicaBytes {
		t.Errorf("%s: replica traffic (%d,%d) vs (%d,%d)", name, a.ReplicaTransfers, a.ReplicaBytes, b.ReplicaTransfers, b.ReplicaBytes)
	}
	if a.Evictions != b.Evictions {
		t.Errorf("%s: evictions %d vs %d", name, a.Evictions, b.Evictions)
	}
	if a.StorageBusy != b.StorageBusy || a.ComputeBusy != b.ComputeBusy {
		t.Errorf("%s: busy (%v,%v) vs (%v,%v)", name, a.StorageBusy, a.ComputeBusy, b.StorageBusy, b.ComputeBusy)
	}
}

// TestSchedulersDeterministicWithWorkers constructs each scheduler
// twice with the same seed and Workers > 1 and demands identical
// results. The IP case runs on a batch small enough that every
// portfolio dive exhausts well inside its (generous) time budget;
// the determinism contract only covers exhausted solves, since a
// wall-clock cutoff freezes each dive at a timing-dependent node.
func TestSchedulersDeterministicWithWorkers(t *testing.T) {
	makeBatch := func() *core.Problem {
		b, err := workload.Image(workload.ImageConfig{
			NumTasks: 6, Overlap: workload.HighOverlap, NumStorage: 2, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return &core.Problem{Batch: b, Platform: platform.OSUMED(2, 2, 0)}
	}
	schedulers := []struct {
		name string
		make func() core.Scheduler
	}{
		{"IP", func() core.Scheduler {
			ip := ipsched.New(7)
			ip.AllocBudget = time.Minute
			ip.SelectBudget = time.Minute
			ip.Workers = 4
			return ip
		}},
		{"BiPartition", func() core.Scheduler {
			bp := bipart.New(7)
			bp.Workers = 4
			return bp
		}},
		{"MinMin", func() core.Scheduler { return minmin.New() }},
		{"JobDataPresent", func() core.Scheduler { return jdp.New() }},
	}
	for _, s := range schedulers {
		var ref *core.Result
		for rep := 0; rep < 2; rep++ {
			p := makeBatch()
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(p, s.make())
			if err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			sameResult(t, s.name, ref, res)
		}
	}
}

// TestFigureRowsWorkersInvariant runs the quick Figure 3 once
// sequentially and once with four workers and demands identical table
// rows: the harness merges cells in fixed order and every cell
// re-derives its inputs from the seed, so the worker count must never
// leak into the figures. IP is skipped because its wall-clock solve
// budget is outside the determinism contract.
func TestFigureRowsWorkersInvariant(t *testing.T) {
	opts := experiments.Options{Quick: true, Seed: 3, SkipIP: true}
	opts.Workers = 1
	seq, err := experiments.Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := experiments.Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("table count %d vs %d", len(seq), len(par))
	}
	for ti := range seq {
		if len(seq[ti].Rows) != len(par[ti].Rows) {
			t.Fatalf("table %d: row count %d vs %d", ti, len(seq[ti].Rows), len(par[ti].Rows))
		}
		for ri, row := range seq[ti].Rows {
			prow := par[ti].Rows[ri]
			if row.Label != prow.Label {
				t.Fatalf("table %d row %d: label %q vs %q", ti, ri, row.Label, prow.Label)
			}
			for ci := range row.Values {
				if row.Values[ci] != prow.Values[ci] || row.Missing[ci] != prow.Missing[ci] {
					t.Errorf("table %d row %q col %s: %v vs %v", ti, row.Label, seq[ti].Columns[ci], row.Values[ci], prow.Values[ci])
				}
			}
		}
	}
}
