package hypergraph

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/obs"
)

// PartitionBINW computes a Bounded Incident Net Weight partition
// (§5.1): the number of parts is not predetermined; instead every
// part's incident net weight — the summed weights of all nets touching
// any of its vertices, including absorbed size-1 net weights — must
// not exceed bound. Parts are produced by recursive bisection
// (balancing incident weight, minimizing cut) until each side fits;
// minimizing the connectivity-1 cost simultaneously keeps the part
// count low, as the paper notes.
//
// A single vertex whose own incident weight exceeds bound is returned
// as a singleton part (the caller's problem guarantees — one task's
// files fit on the cluster — make this a can't-happen guard rather
// than a supported case).
//
// The result maps each vertex to a part id in 0..numParts−1, ordered
// so that part ids are dense.
func PartitionBINW(h *Hypergraph, bound int64, eps float64, seed int64) ([]int, int, error) {
	return PartitionBINWOpt(h, bound, BINWOptions{Eps: eps, Seed: seed})
}

// BINWOptions tunes PartitionBINWOpt.
type BINWOptions struct {
	// Eps is the per-bisection imbalance tolerance.
	Eps float64
	// Seed drives the randomized multilevel pipeline; per-branch RNG
	// streams split deterministically from it, so the partition is
	// independent of Workers.
	Seed int64
	// Workers bounds the goroutines used for the independent sub-
	// bisections (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// Trace, when non-nil, receives one span per multilevel bisection
	// (coarsen/initial/refine instants with cut values). Observability
	// only: the partition never depends on it.
	Trace obs.Tracer
}

// binwLeaf is one finished part of the recursion: the original vertex
// ids it holds plus its left/right descent path from the root. Part
// ids are assigned by sorting leaves on that path, which reproduces
// the sequential left-to-right numbering no matter how the concurrent
// recursion interleaved.
type binwLeaf struct {
	path string
	vids []int32
}

// PartitionBINWOpt is PartitionBINW with explicit options.
func PartitionBINWOpt(h *Hypergraph, bound int64, opt BINWOptions) ([]int, int, error) {
	if bound <= 0 {
		return nil, 0, fmt.Errorf("hypergraph: BINW bound must be positive, got %d", bound)
	}
	part := make([]int, h.NumV)
	if h.NumV == 0 {
		return part, 0, nil
	}
	vid := make([]int32, h.NumV)
	for i := range vid {
		vid[i] = int32(i)
	}
	c := &binwCollector{}
	pool := newWorkPool(opt.Workers)
	recurseBINW(h, vid, bound, opt.Eps, opt.Seed, "", pool, c, obs.OrNop(opt.Trace))
	sort.Slice(c.leaves, func(i, j int) bool { return c.leaves[i].path < c.leaves[j].path })
	for id, leaf := range c.leaves {
		for _, v := range leaf.vids {
			part[v] = id
		}
	}
	return part, len(c.leaves), nil
}

// binwCollector accumulates leaves from concurrent recursion branches.
type binwCollector struct {
	mu     sync.Mutex
	leaves []binwLeaf
}

func (c *binwCollector) add(path string, vids []int32) {
	c.mu.Lock()
	c.leaves = append(c.leaves, binwLeaf{path: path, vids: vids})
	c.mu.Unlock()
}

// incidentTotal computes the incident net weight of the whole
// hypergraph treated as one part.
func incidentTotal(h *Hypergraph) int64 {
	var sum int64
	for n := 0; n < h.NumN; n++ {
		sum += h.NWeight[n]
	}
	for v := 0; v < h.NumV; v++ {
		sum += h.ExtraVWeight[v]
	}
	return sum
}

func recurseBINW(h *Hypergraph, vid []int32, bound int64, eps float64, seed int64, path string, pool *workPool, c *binwCollector, tr obs.Tracer) {
	if incidentTotal(h) <= bound || h.NumV == 1 {
		c.add(path, vid)
		return
	}
	rng := rand.New(rand.NewSource(splitSeed(seed, 2)))
	side := multilevelBisect(h, balanceIncident, 0.5, eps, rng, false, tr)
	// Guard against a degenerate bisection leaving one side empty,
	// which would recurse forever: peel off the heaviest vertex.
	n0 := 0
	for _, s := range side {
		if s == 0 {
			n0++
		}
	}
	if n0 == 0 || n0 == h.NumV {
		heaviest := h.sortedByWeightDesc()[0]
		for v := range side {
			side[v] = 1
		}
		side[heaviest] = 0
	}
	h0, vid0 := extractSide(h, vid, side, 0)
	h1, vid1 := extractSide(h, vid, side, 1)
	pool.fork(
		func() { recurseBINW(h0, vid0, bound, eps, splitSeed(seed, 0), path+"0", pool, c, tr) },
		func() { recurseBINW(h1, vid1, bound, eps, splitSeed(seed, 1), path+"1", pool, c, tr) },
	)
}
