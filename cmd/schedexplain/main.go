// Command schedexplain answers provenance queries over a decision
// journal recorded with batchsched -journal (or paperfigs -journal):
// why a task ran on its node, why a file was replicated to or evicted
// from a node, and which dependency chain bound the makespan.
//
// Usage:
//
//	schedexplain -journal run.jsonl                 # summary
//	schedexplain -journal run.jsonl -task 7         # why did task 7 run where it did?
//	schedexplain -journal run.jsonl -file 3         # every decision touching file 3
//	schedexplain -journal run.jsonl -file 3 -node 1 # ... restricted to node 1
//	schedexplain -journal run.jsonl -critical       # what bound the makespan?
//	schedexplain -journal run.jsonl -task 7 -json   # machine-readable output
//
// -journal - reads the journal from stdin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs/explain"
	"repro/internal/obs/journal"
)

func main() {
	journalPath := flag.String("journal", "", "journal file written by batchsched -journal (- for stdin)")
	task := flag.Int("task", -1, "explain this task's placement, staging, execution and faults")
	file := flag.Int("file", -1, "explain every replication/staging/eviction decision for this file")
	node := flag.Int("node", -1, "restrict -file to this destination node")
	critical := flag.Bool("critical", false, "print the dependency chain that bound the makespan")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	flag.Parse()

	if *journalPath == "" {
		fatal("schedexplain: -journal is required (see -h)")
	}
	var in io.Reader = os.Stdin
	if *journalPath != "-" {
		f, err := os.Open(*journalPath)
		if err != nil {
			fatal("schedexplain: %v", err)
		}
		defer f.Close()
		in = f
	}
	j, err := explain.Load(in)
	if err != nil {
		fatal("schedexplain: %v", err)
	}

	switch {
	case *task >= 0:
		p := j.Placement(*task)
		if p == nil {
			fatal("schedexplain: the journal never mentions task %d", *task)
		}
		emit(*asJSON, p, p.Text)
	case *file >= 0:
		h := j.FileHistory(*file, *node)
		if h == nil {
			where := ""
			if *node >= 0 {
				where = fmt.Sprintf(" on node %d", *node)
			}
			fatal("schedexplain: the journal never mentions file %d%s", *file, where)
		}
		emit(*asJSON, h, h.Text)
	case *critical:
		cp := j.CriticalPath()
		if cp == nil {
			fatal("schedexplain: the journal records no executions")
		}
		emit(*asJSON, cp, cp.Text)
	default:
		summary(j, *asJSON)
	}
}

// summary prints what the journal covers, so users know which -task
// and -file queries will answer.
func summary(j *explain.Journal, asJSON bool) {
	kinds := map[string]int{}
	var makespan float64
	sched := ""
	for _, ev := range j.Events {
		kinds[ev.Kind]++
		if ev.Kind == journal.KindRunEnd && ev.Run != nil {
			makespan = ev.Run.Makespan
			sched = ev.Run.Sched
		}
	}
	if asJSON {
		out := struct {
			Events   int            `json:"events"`
			Kinds    map[string]int `json:"kinds"`
			Sched    string         `json:"sched,omitempty"`
			Makespan float64        `json:"makespan,omitempty"`
			Tasks    []int          `json:"tasks"`
			Files    []int          `json:"files"`
		}{len(j.Events), kinds, sched, makespan, j.Tasks(), j.Files()}
		emit(true, out, nil)
		return
	}
	fmt.Printf("%d events", len(j.Events))
	if sched != "" {
		fmt.Printf(", scheduler %s, makespan %.3f", sched, makespan)
	}
	fmt.Println()
	for _, k := range []string{journal.KindRunStart, journal.KindCell, journal.KindPlan,
		journal.KindPlace, journal.KindReplicate, journal.KindStage, journal.KindExec,
		journal.KindEvict, journal.KindFault, journal.KindSpecLaunch,
		journal.KindSpecWin, journal.KindSpecCancel, journal.KindRunEnd} {
		if n := kinds[k]; n > 0 {
			fmt.Printf("  %-10s %d\n", k, n)
		}
	}
	fmt.Printf("tasks: %d (query with -task), files: %d (query with -file)\n",
		len(j.Tasks()), len(j.Files()))
}

// emit prints v as JSON or via its text renderer.
func emit(asJSON bool, v interface{}, text func() string) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fatal("schedexplain: %v", err)
		}
		return
	}
	fmt.Print(text())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
