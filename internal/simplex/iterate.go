package simplex

import (
	"math"
	"time"
)

// iterate runs simplex pivots under the current cost vector until an
// optimum, unboundedness, the iteration cap, or a singular
// refactorization is hit.
func (s *solver) iterate() Status {
	sinceRefactor := 0
	for {
		if s.iters >= s.opt.MaxIters {
			return IterLimit
		}
		//schedlint:allow nowallclock,tracepurity deadline abort only; callers treat a budget hit as IterLimit, and the MIP layer keeps its incumbent deterministic — the justification covers transitive callers too
		if !s.opt.Deadline.IsZero() && s.iters%32 == 0 && time.Now().After(s.opt.Deadline) {
			return IterLimit
		}
		if sinceRefactor >= s.opt.RefactorEvery {
			if !s.refactor() {
				return Singular
			}
			sinceRefactor = 0
		}
		// BTRAN: y = c_B B^{-T}.
		s.computeDuals()
		// Pricing.
		j, dir := s.price()
		if j < 0 {
			return Optimal
		}
		// FTRAN: w = B^{-1} a_j.
		s.ftranColumn(j)
		leave, t, flip := s.ratioTest(j, dir)
		if s.opt.Trace != nil {
			s.opt.Trace("it=%d phase=%d enter=%d dir=%v leave-row=%d t=%v flip=%v obj=%v", s.iters, s.phase, j, dir, leave, t, flip, s.objective())
		}
		if math.IsInf(t, 1) {
			if s.phase == 1 {
				// Phase-1 objective is bounded below by 0; an
				// unbounded ray means numerical trouble. Refactor and
				// retry once; if it persists, give up as singular.
				if !s.refactor() {
					return Singular
				}
				sinceRefactor = 0
				s.iters++
				continue
			}
			return Unbounded
		}
		s.pivot(j, dir, leave, t, flip)
		s.iters++
		sinceRefactor++
	}
}

// computeDuals fills s.y with c_B B^{-T} by BTRAN through the eta file
// in reverse order.
func (s *solver) computeDuals() {
	y := s.y
	for r := 0; r < s.m; r++ {
		y[r] = s.cost[s.basic[r]]
	}
	for k := len(s.etas) - 1; k >= 0; k-- {
		e := &s.etas[k]
		p := e.pivot
		yp := y[p]
		var pivotVal float64
		for _, en := range e.col {
			if en.Row == p {
				pivotVal = en.Val
			}
		}
		acc := yp
		for _, en := range e.col {
			if en.Row != p {
				acc -= en.Val * y[en.Row]
			}
		}
		y[p] = acc / pivotVal
	}
}

// reducedCost computes d_j = c_j − yᵀa_j.
func (s *solver) reducedCost(j int) float64 {
	d := s.cost[j]
	for _, e := range s.cols[j] {
		d -= s.y[e.Row] * e.Val
	}
	return d
}

// price selects the entering column and its direction (+1 when
// increasing from lower bound, −1 when decreasing from upper).
// Dantzig rule normally; Bland's rule when the objective has stalled,
// to break cycles. Returns j = −1 at optimality.
func (s *solver) price() (int, float64) {
	tol := s.opt.Tol
	useBland := s.stallCount > 60
	bestJ, bestD, bestDir := -1, tol, 0.0
	// Partial (cyclic candidate-list) pricing: scan from where the last
	// pricing stopped and return the best of the first few dozen
	// eligible columns. Optimality is still exact — the scan only stops
	// early when an eligible column was found; otherwise it covers
	// every column. Bland's anti-cycling rule always uses the full
	// lowest-index scan.
	const candidates = 48
	found := 0
	for scanned := 0; scanned < s.n; scanned++ {
		j := s.priceStart + scanned
		if useBland {
			j = scanned
		} else if j >= s.n {
			j -= s.n
		}
		switch s.state[j] {
		case inBasis:
			continue
		case atLower:
			d := s.reducedCost(j)
			if d < -tol {
				if useBland {
					return j, +1
				}
				if -d > bestD {
					bestJ, bestD, bestDir = j, -d, +1
				}
				found++
			}
		case atUpper:
			d := s.reducedCost(j)
			if d > tol {
				if useBland {
					return j, -1
				}
				if d > bestD {
					bestJ, bestD, bestDir = j, d, -1
				}
				found++
			}
		}
		if found >= candidates {
			s.priceStart = j + 1
			if s.priceStart >= s.n {
				s.priceStart = 0
			}
			return bestJ, bestDir
		}
	}
	s.priceStart = 0
	return bestJ, bestDir
}

// ftranColumn computes w = B^{-1} a_j into s.w (dense).
func (s *solver) ftranColumn(j int) {
	w := s.w
	for r := range w {
		w[r] = 0
	}
	for _, e := range s.cols[j] {
		w[e.Row] = e.Val
	}
	s.ftran(w)
}

// ftran applies the eta file in order to a dense vector.
func (s *solver) ftran(w []float64) {
	for k := range s.etas {
		e := &s.etas[k]
		p := e.pivot
		wp := w[p]
		if wp == 0 {
			continue
		}
		var pivotVal float64
		for _, en := range e.col {
			if en.Row == p {
				pivotVal = en.Val
			}
		}
		wp /= pivotVal
		w[p] = wp
		for _, en := range e.col {
			if en.Row != p {
				w[en.Row] -= en.Val * wp
			}
		}
	}
}

// ratioTest finds how far the entering column j can move in direction
// dir before a basic column hits a bound (returns its row) or the
// entering column hits its own opposite bound (flip=true). t is the
// step length; +Inf signals an unbounded ray.
func (s *solver) ratioTest(j int, dir float64) (leaveRow int, t float64, flip bool) {
	tol := s.opt.Tol
	t = math.Inf(1)
	leaveRow = -1
	// Entering variable's own range.
	if range_ := s.upper[j] - s.lower[j]; !math.IsInf(range_, 1) {
		t = range_
		flip = true
	}
	bestPivot := 0.0
	for r := 0; r < s.m; r++ {
		w := s.w[r]
		if math.Abs(w) <= 1e-10 {
			continue
		}
		bi := s.basic[r]
		// x_B[r] moves by -dir·w·t.
		delta := -dir * w
		var room float64
		if delta > 0 {
			if math.IsInf(s.upper[bi], 1) {
				continue
			}
			room = (s.upper[bi] - s.xB[r]) / delta
		} else {
			if math.IsInf(s.lower[bi], -1) {
				continue
			}
			room = (s.lower[bi] - s.xB[r]) / delta
		}
		if room < -tol {
			room = 0
		}
		if room < t-1e-12 || (room < t+1e-12 && math.Abs(w) > bestPivot) {
			t = room
			leaveRow = r
			bestPivot = math.Abs(w)
			flip = false
		}
	}
	if t < 0 {
		t = 0
	}
	return leaveRow, t, flip
}

// pivot applies the chosen step: updates basic values, flips bounds,
// or swaps the entering and leaving columns and appends an eta.
func (s *solver) pivot(j int, dir float64, leaveRow int, t float64, flip bool) {
	if t > s.opt.Tol {
		s.stallCount = 0
	} else {
		s.stallCount++
	}
	// Move basic values.
	if t > 0 {
		for r := 0; r < s.m; r++ {
			if s.w[r] != 0 {
				s.xB[r] -= dir * s.w[r] * t
			}
		}
	}
	if flip {
		// Entering variable runs to its opposite bound; basis is
		// unchanged.
		if dir > 0 {
			s.state[j] = atUpper
		} else {
			s.state[j] = atLower
		}
		return
	}
	// Entering becomes basic in leaveRow at value bound + dir·t.
	enterVal := s.valueAtBound(j) + dir*t
	leaving := s.basic[leaveRow]
	// Classify where the leaving column lands.
	if -dir*s.w[leaveRow] > 0 {
		s.state[leaving] = atUpper
	} else {
		s.state[leaving] = atLower
	}
	// Guard against -Inf/+Inf landings: a column leaving at an
	// infinite bound can only happen within tolerance of its finite
	// one; clamp to the finite side.
	if s.state[leaving] == atUpper && math.IsInf(s.upper[leaving], 1) {
		s.state[leaving] = atLower
	} else if s.state[leaving] == atLower && math.IsInf(s.lower[leaving], -1) {
		s.state[leaving] = atUpper
	}
	s.inRow[leaving] = -1
	s.state[j] = inBasis
	s.basic[leaveRow] = int32(j)
	s.inRow[j] = int32(leaveRow)
	s.xB[leaveRow] = enterVal

	// Record the eta for this pivot: the FTRANed entering column.
	col := make([]Entry, 0, 8)
	for r := 0; r < s.m; r++ {
		if v := s.w[r]; math.Abs(v) > 1e-12 || r == leaveRow {
			col = append(col, Entry{Row: int32(r), Val: v})
		}
	}
	s.etas = append(s.etas, eta{pivot: int32(leaveRow), col: col})
}

// refactor rebuilds the eta file from scratch for the current basis by
// product-form Gaussian elimination, keeping the file short. Returns
// false if the basis is numerically singular.
func (s *solver) refactor() bool {
	s.etas = s.etas[:0]
	m := s.m
	pivotedRow := make([]bool, m)
	type cand struct {
		col int32
		nnz int
	}
	// Greedy sparse ordering: repeatedly factor the remaining basic
	// column with the fewest nonzeros in unpivoted rows.
	remaining := make([]cand, 0, m)
	for r := 0; r < m; r++ {
		remaining = append(remaining, cand{col: s.basic[r]})
	}
	w := make([]float64, m)
	newBasic := make([]int32, 0, m)
	for len(remaining) > 0 {
		// Recount nnz in unpivoted rows (cheap: original column nnz).
		best := -1
		bestNNZ := 1 << 30
		for i := range remaining {
			nnz := 0
			for _, e := range s.cols[remaining[i].col] {
				if !pivotedRow[e.Row] {
					nnz++
				}
			}
			if nnz < bestNNZ {
				bestNNZ = nnz
				best = i
			}
		}
		j := remaining[best].col
		remaining = append(remaining[:best], remaining[best+1:]...)
		for r := range w {
			w[r] = 0
		}
		for _, e := range s.cols[j] {
			w[e.Row] = e.Val
		}
		s.ftran(w)
		// Pivot on the largest-magnitude unpivoted row.
		p, pv := -1, 0.0
		for r := 0; r < m; r++ {
			if pivotedRow[r] {
				continue
			}
			if a := math.Abs(w[r]); a > pv {
				pv = a
				p = r
			}
		}
		if p < 0 || pv < 1e-10 {
			return false
		}
		col := make([]Entry, 0, 8)
		for r := 0; r < m; r++ {
			if v := w[r]; math.Abs(v) > 1e-12 || r == p {
				col = append(col, Entry{Row: int32(r), Val: v})
			}
		}
		s.etas = append(s.etas, eta{pivot: int32(p), col: col})
		pivotedRow[p] = true
		newBasic = append(newBasic, j)
		s.basic[p] = j
		s.inRow[j] = int32(p)
	}
	// Recompute basic values: solve B x_B = b − N x_N.
	resid := make([]float64, m)
	copy(resid, s.lp.B)
	for j := 0; j < s.n; j++ {
		if s.state[j] == inBasis {
			continue
		}
		v := s.valueAtBound(j)
		if v == 0 {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.Row] -= e.Val * v
		}
	}
	s.ftran(resid)
	copy(s.xB, resid)
	return true
}
