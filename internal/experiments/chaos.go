package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/workload"
)

// chaosRows is the fault × speculation matrix swept by Chaos: the
// fault-free control plus the built-in mild and harsh presets, each
// fault scenario with and without speculative task replication. Every
// cell of one row shares the identical FaultPlan seed, so the four
// schedulers face the same failure sequence and the comparison
// isolates how each scheme's placement, replication and speculation
// absorb it. The none+spec row doubles as a control: without an
// injector the policy is inert and must reproduce the fault-free row
// exactly.
var chaosRows = []struct {
	name     string
	scenario string
	spec     bool
}{
	{"none", "none", false},
	{"none+spec", "none", true},
	{"mild", "mild", false},
	{"mild+spec", "mild", true},
	{"harsh", "harsh", false},
	{"harsh+spec", "harsh", true},
}

// chaosSpecPolicy is the speculation arm's policy:
// single-fork-at-t* with the fork quantile just past the harsh
// preset's non-straggler mass (1−p = 0.85). That is the earliest
// point at which a silent task is distinguishable from an on-time
// one, and under fault injection earlier is strictly better: a
// crash-killed primary is rescued sooner, and a drain-phase twin
// forked earlier wins against more of the slowdown tail.
func chaosSpecPolicy() *spec.Policy { return &spec.Policy{Kind: spec.SingleFork, Quantile: 0.855} }

// Chaos runs the fault-tolerance matrix (scenario × speculation ×
// scheduler) on a high-overlap IMAGE batch and reports three tables:
// absolute batch execution time, makespan degradation relative to the
// fault-free control with the wasted compute each cell burnt, and the
// recovery/speculation activity behind the harsh rows. Like every
// figure, cells are independent and merged in fixed order, so Workers
// never changes the rows.
func Chaos(o Options) ([]*report.Table, error) {
	o = o.withDefaults()
	n := o.tasks(100)
	ss := schedulerSet(o)
	results := make([][]*core.Result, len(chaosRows))
	for r := range results {
		results[r] = make([]*core.Result, len(ss))
	}
	err := forEachCellObserved(o.Workers, len(chaosRows)*len(ss), o.Obs, func(i int, ob core.Observer) error {
		r, c := i/len(ss), i%len(ss)
		row := chaosRows[r]
		fp, err := faults.Parse(row.scenario)
		if err != nil {
			return err
		}
		if fp != nil {
			fp.Seed = o.Seed + 1000 // identical failure sequence for every scheduler and spec arm
		}
		var sp *spec.Policy
		if row.spec {
			sp = chaosSpecPolicy()
		}
		// Chaos uses a compute-heavy IMAGE variant (4000× the paper's
		// 0.001 s/MB): with paper-scale tasks the whole batch finishes
		// in seconds, inside which the harsh preset's 4000 s MTTF never
		// fires — the matrix would only ever exercise link faults and
		// stragglers. Stretching compute pushes the makespan into the
		// crash regime so the recovery paths (requeue, replica
		// recovery, speculative rescue) all carry weight in the rows.
		b, err := workload.Image(workload.ImageConfig{
			NumTasks: n, Overlap: workload.HighOverlap, NumStorage: 4,
			Seed:          o.Seed + int64(workload.HighOverlap)*7,
			ComputeFactor: 4000 * platform.PaperComputeFactor,
		})
		if err != nil {
			return err
		}
		res, err := run(&core.Problem{Batch: b, Platform: platform.XIO(12, 4, 0)}, ss[c].make(), ob, fp, sp)
		if err != nil {
			return fmt.Errorf("chaos %s/%s: %w", row.name, ss[c].name, err)
		}
		results[r][c] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	mk := &report.Table{
		Title:   "Chaos: batch execution time (s) under fault × speculation scenarios (IMAGE high overlap)",
		XLabel:  "scenario",
		YLabel:  "batch execution time (s)",
		Columns: columnNames(ss),
	}
	for r, row := range chaosRows {
		vals := make([]float64, len(ss))
		for c := range ss {
			vals[c] = results[r][c].Makespan
		}
		mk.AddRow(row.name, vals...)
	}

	deg := &report.Table{
		Title:   "Chaos: makespan degradation vs fault-free (%) and wasted compute (s)",
		XLabel:  "scenario",
		YLabel:  "degradation (%) / wasted (s)",
		Columns: columnNames(ss),
	}
	for r, row := range chaosRows {
		if row.scenario == "none" {
			continue
		}
		vals := make([]float64, len(ss))
		for c := range ss {
			base := results[0][c].Makespan
			if base > 0 {
				vals[c] = 100 * (results[r][c].Makespan/base - 1)
			}
		}
		deg.AddRow(row.name, vals...)
	}
	// Wasted compute lives in the same table so the degradation win of
	// a speculation arm is read against the port time it burnt: failed
	// and cancelled primary attempts plus cancelled twins.
	for r, row := range chaosRows {
		if row.scenario == "none" {
			continue
		}
		vals := make([]float64, len(ss))
		for c := range ss {
			vals[c] = results[r][c].WastedSeconds + results[r][c].SpecWastedSeconds
		}
		deg.AddRow(row.name+" wasted_s", vals...)
	}

	rec := &report.Table{
		Title:   "Chaos: recovery and speculation activity (harsh rows)",
		XLabel:  "scheduler",
		YLabel:  "count / seconds",
		Columns: []string{"XferFail", "Retries", "ReplicaRecov", "Crashes", "Stragglers", "Requeued", "Degraded", "Wasted_s", "SpecLaunch", "SpecWin", "SpecCancel", "SpecSaved", "SpecWasted_s"},
	}
	degradedCells := 0
	for r, row := range chaosRows {
		if row.scenario != "harsh" {
			continue
		}
		for c, sc := range ss {
			res := results[r][c]
			rec.AddRow(sc.name+specSuffix(row.spec),
				float64(res.TransferFailures), float64(res.TransferRetries),
				float64(res.ReplicaRecoveries), float64(res.Crashes),
				float64(res.Stragglers), float64(res.RequeuedTasks),
				float64(res.DegradedTasks), res.WastedSeconds,
				float64(res.SpecLaunches), float64(res.SpecWins),
				float64(res.SpecCancels), float64(res.SpecSaved), res.SpecWastedSeconds)
		}
	}
	for r := range chaosRows {
		for c := range ss {
			if results[r][c].Status == core.StatusDegraded {
				degradedCells++
			}
		}
	}
	seedNote := fmt.Sprintf("identical fault seed %d per scenario across all schedulers; presets: mild (%s), harsh (%s); spec arm policy %s",
		o.Seed+1000, mustSpec("mild"), mustSpec("harsh"), chaosSpecPolicy())
	mk.Notes = append(mk.Notes, seedNote)
	if degradedCells > 0 {
		deg.Notes = append(deg.Notes, fmt.Sprintf("%d cell(s) ended Degraded (retry budgets exhausted); their makespans cover only the tasks that ran", degradedCells))
	}
	return []*report.Table{mk, deg, rec}, nil
}

// specSuffix tags speculation-arm rows of the activity table.
func specSuffix(on bool) string {
	if on {
		return "+spec"
	}
	return ""
}

// mustSpec renders a built-in preset's canonical spec string.
func mustSpec(name string) string {
	fp, err := faults.Parse(name)
	if err != nil || fp == nil {
		return name
	}
	return fp.String()
}
