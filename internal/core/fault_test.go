package core_test

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/workload"
)

// sameFaultResult compares every deterministic Result field (all but
// the wall-clock SchedulingTime).
func sameFaultResult(t *testing.T, a, b *core.Result) {
	t.Helper()
	ca, cb := *a, *b
	ca.SchedulingTime, cb.SchedulingTime = 0, 0
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("results differ:\n  a: %+v\n  b: %+v", ca, cb)
	}
}

// TestChaosDeterministicAcrossRuns is the acceptance property: the
// same FaultPlan seed produces an identical recovery outcome — every
// counter, the makespan, and the Complete/Degraded status — on every
// run, for every scheduler, with the schedule validator on.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	p := smallProblem(t, 0)
	plan := &faults.FaultPlan{Seed: 17, NodeMTTF: 30_000, LinkFailProb: 0.25, StragglerProb: 0.2, StragglerFactor: 3}
	for _, s := range schedulers() {
		a, err := core.RunWith(p, s, core.RunOptions{Checked: true, Faults: plan})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		b, err := core.RunWith(p, s, core.RunOptions{Checked: true, Faults: plan})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		sameFaultResult(t, a, b)
		if a.TransferFailures == 0 {
			t.Errorf("%s: chaos run injected no transfer failures", s.Name())
		}
	}
}

// TestChaosRecoversThroughReplicas drives a flaky-link scenario and
// checks the recovery machinery engaged: failures happened, retries
// were scheduled, wasted port time was accounted, and the run still
// completed every task with a valid schedule.
func TestChaosRecoversThroughRetries(t *testing.T) {
	p := smallProblem(t, 0)
	plan := &faults.FaultPlan{Seed: 5, LinkFailProb: 0.35}
	for _, s := range schedulers() {
		res, err := core.RunWith(p, s, core.RunOptions{Checked: true, Faults: plan})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Status != core.StatusComplete {
			t.Fatalf("%s: status %s (degraded %d tasks) under recoverable faults", s.Name(), res.Status, res.DegradedTasks)
		}
		if res.TransferFailures == 0 || res.TransferRetries == 0 {
			t.Errorf("%s: failures=%d retries=%d, want both > 0", s.Name(), res.TransferFailures, res.TransferRetries)
		}
		if res.WastedSeconds <= 0 {
			t.Errorf("%s: no wasted seconds recorded despite %d failures", s.Name(), res.TransferFailures)
		}
		// Fault-free control under the same options machinery.
		clean, err := core.RunWith(p, s, core.RunOptions{Checked: true})
		if err != nil {
			t.Fatalf("%s clean: %v", s.Name(), err)
		}
		if res.Makespan <= clean.Makespan {
			t.Errorf("%s: chaos makespan %g not above fault-free %g", s.Name(), res.Makespan, clean.Makespan)
		}
		if clean.TransferFailures != 0 || clean.Crashes != 0 || clean.WastedSeconds != 0 {
			t.Errorf("%s: fault-free run reported fault activity: %+v", s.Name(), clean)
		}
	}
}

// TestChaosCrashRecovery forces node crashes within the batch and
// checks tasks are re-queued through the resume path and still all
// complete (losing a node mid-batch costs time, not tasks).
func TestChaosCrashRecovery(t *testing.T) {
	p := smallProblem(t, 0)
	s := schedulers()[0]
	base, err := core.Run(p, s)
	if err != nil {
		t.Fatal(err)
	}
	// MTTF well inside the fault-free makespan so at least one of the
	// three nodes crashes mid-batch.
	plan := &faults.FaultPlan{Seed: 2, NodeMTTF: base.Makespan / 2, TaskRetryBudget: 50}
	res, err := core.RunWith(p, s, core.RunOptions{Checked: true, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatalf("no crash observed with MTTF %g against makespan %g", plan.NodeMTTF, res.Makespan)
	}
	if res.Status != core.StatusComplete {
		t.Fatalf("status %s with a generous retry budget", res.Status)
	}
	if res.RequeuedTasks == 0 {
		t.Error("crashes observed but no task was re-queued")
	}
	if res.SubBatches < 2 {
		t.Errorf("re-queued tasks must add sub-batches, got %d", res.SubBatches)
	}
}

// TestChaosDegradesWhenUnrecoverable: with every transfer attempt
// failing, no task can ever stage its inputs; the run must terminate
// (bounded by the per-task budget) with every task abandoned.
func TestChaosDegradesWhenUnrecoverable(t *testing.T) {
	p := smallProblem(t, 0)
	s := schedulers()[0]
	plan := &faults.FaultPlan{Seed: 1, LinkFailProb: 1, TaskRetryBudget: 2}
	res, err := core.RunWith(p, s, core.RunOptions{Checked: true, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.StatusDegraded {
		t.Fatalf("status %s, want Degraded", res.Status)
	}
	if res.DegradedTasks != res.TaskCount {
		t.Fatalf("degraded %d of %d tasks; with LinkFailProb 1 none can run", res.DegradedTasks, res.TaskCount)
	}
	if res.RemoteTransfers != 0 || res.ReplicaTransfers != 0 {
		t.Fatalf("transfers succeeded under LinkFailProb 1: %+v", res)
	}
	// Budget 2 ⇒ initial round + 2 retries per task.
	if res.SubBatches != 3 {
		t.Errorf("sub-batches %d, want 3 (1 + budget 2)", res.SubBatches)
	}
}

// TestRunFromSkipsDoneAndDuplicates covers the resume-path contract
// recovery depends on: a pending list containing duplicates and
// already-completed task IDs must execute each remaining task exactly
// once.
func TestRunFromSkipsDoneAndDuplicates(t *testing.T) {
	p := smallProblem(t, 0)
	s := schedulers()[0]
	all := p.Batch.AllTasks()

	stClean, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	stDirty, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	// Pretend the first three tasks already ran.
	done := all[:3]
	rest := all[3:]
	for _, st := range []*core.State{stClean, stDirty} {
		for _, d := range done {
			st.Done[d] = true
		}
	}
	dirty := make([]batch.TaskID, 0, 2*len(all))
	dirty = append(dirty, all...)  // includes the 3 done tasks
	dirty = append(dirty, rest...) // and every remaining task twice
	got, err := core.RunFrom(stDirty, s, dirty)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RunFrom(stClean, s, rest)
	if err != nil {
		t.Fatal(err)
	}
	if got.TaskCount != len(rest) {
		t.Fatalf("TaskCount %d, want %d (done and duplicate IDs skipped)", got.TaskCount, len(rest))
	}
	sameFaultResult(t, got, want)
}

// TestResultJSONRoundTrip pins that every Result field — including
// the fault/recovery counters and the status — survives JSON
// marshalling, so persisted chaos reports are lossless.
func TestResultJSONRoundTrip(t *testing.T) {
	in := &core.Result{
		Scheduler:        "test",
		Status:           core.StatusDegraded,
		Makespan:         123.5,
		SchedulingTime:   1500 * time.Microsecond,
		SubBatches:       3,
		TaskCount:        24,
		RemoteTransfers:  7,
		RemoteBytes:      1 << 30,
		ReplicaTransfers: 5,
		ReplicaBytes:     1 << 20,
		Evictions:        2,
		StorageBusy:      55.25,
		ComputeBusy:      99.75,
		TransferFailures: 4, TransferRetries: 3, ReplicaRecoveries: 2,
		Crashes: 1, Stragglers: 6, RequeuedTasks: 2, DegradedTasks: 1,
		WastedSeconds: 12.125,
		SpecLaunches:  5, SpecWins: 3, SpecCancels: 5, SpecSaved: 1,
		SpecWastedSeconds: 7.25,
	}
	// Every field set: catch future additions that forget this test.
	v := reflect.ValueOf(*in)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Fatalf("field %s left at zero value; set it so the round trip is meaningful", v.Type().Field(i).Name)
		}
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out := &core.Result{}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lost data:\n in: %+v\nout: %+v", in, out)
	}
}

// TestExecStatsAddCommutative: chaos-matrix cells are aggregated in
// whatever order workers finish, so the merge must commute.
func TestExecStatsAddCommutative(t *testing.T) {
	a := core.ExecStats{Makespan: 1, TasksRun: 2, RemoteTransfers: 3, RemoteBytes: 4,
		ReplicaTransfers: 5, ReplicaBytes: 6, StorageBusy: 7, ComputeBusy: 8,
		TransferFailures: 9, TransferRetries: 10, ReplicaRecoveries: 11,
		Crashes: 12, Stragglers: 13, RequeuedTasks: 14, WastedSeconds: 15,
		SpecLaunches: 16, SpecWins: 17, SpecCancels: 18, SpecSaved: 19,
		SpecWastedSeconds: 20}
	b := core.ExecStats{Makespan: 100, TasksRun: 200, RemoteTransfers: 300, RemoteBytes: 400,
		ReplicaTransfers: 500, ReplicaBytes: 600, StorageBusy: 700, ComputeBusy: 800,
		TransferFailures: 900, TransferRetries: 1000, ReplicaRecoveries: 1100,
		Crashes: 1200, Stragglers: 1300, RequeuedTasks: 1400, WastedSeconds: 1500,
		SpecLaunches: 1600, SpecWins: 1700, SpecCancels: 1800, SpecSaved: 1900,
		SpecWastedSeconds: 2000}
	ab, ba := a, b
	ab.Add(&b)
	ba.Add(&a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("Add not commutative:\na+b: %+v\nb+a: %+v", ab, ba)
	}
	// No field may be forgotten by Add: summing a with itself must
	// double every non-zero field.
	aa := a
	aa.Add(&a)
	va, vaa := reflect.ValueOf(a), reflect.ValueOf(aa)
	for i := 0; i < va.NumField(); i++ {
		got := vaa.Field(i).Convert(reflect.TypeOf(float64(0))).Float()
		want := 2 * va.Field(i).Convert(reflect.TypeOf(float64(0))).Float()
		if got != want {
			t.Errorf("Add drops field %s: got %g want %g", va.Type().Field(i).Name, got, want)
		}
	}
}

// FuzzFaultPlan: any valid scenario, however hostile, must terminate,
// never violate the gantt schedule invariants, and reproduce the
// identical result when run twice.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), 1000.0, 0.1, 0.1, 2.0, 3, 2)
	f.Add(int64(7), 0.0, 1.0, 0.0, 1.0, 1, 0)
	f.Add(int64(42), 50.0, 0.5, 0.9, 8.0, 2, 1)
	b, err := workload.Sat(workload.SatConfig{NumTasks: 8, Overlap: workload.HighOverlap, NumStorage: 2, Seed: 9})
	if err != nil {
		f.Fatal(err)
	}
	p := &core.Problem{Batch: b, Platform: platform.XIO(2, 2, 0)}
	if err := p.Validate(); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64, mttf, linkp, stragp, stragf float64, retries, budget int) {
		// Fold arbitrary floats into the model's sensible ranges; NaN
		// and Inf stay non-finite and are rejected by Validate below.
		mttf = math.Mod(math.Abs(mttf), 1e6)
		linkp = math.Mod(math.Abs(linkp), 0.96) // a sliver of progress stays possible
		stragp = math.Mod(math.Abs(stragp), 1)
		stragf = 1 + math.Mod(math.Abs(stragf), 8)
		plan := &faults.FaultPlan{Seed: seed, NodeMTTF: mttf, LinkFailProb: linkp,
			StragglerProb: stragp, StragglerFactor: stragf,
			MaxTransferRetries: retries%8 + 1, TaskRetryBudget: budget % 16}
		if plan.Validate() != nil {
			t.Skip()
		}
		// The canonical spec string must reproduce the plan: Parse ∘
		// Spec is the identity for enabled plans and nil (same
		// behavior) for disabled ones.
		rt, err := faults.Parse(plan.Spec())
		if err != nil {
			t.Fatalf("Parse rejected Spec() output %q: %v", plan.Spec(), err)
		}
		if plan.Enabled() {
			if !reflect.DeepEqual(plan, rt) {
				t.Fatalf("Spec round-trip changed the plan:\n  in  %#v\n  out %#v", plan, rt)
			}
		} else if rt != nil {
			t.Fatalf("disabled plan round-tripped to non-nil %#v", rt)
		}
		s := schedulers()[0]
		a, err := core.RunWith(p, s, core.RunOptions{Checked: true, Faults: plan})
		if err != nil {
			t.Fatalf("chaos run failed: %v (plan %s)", err, plan)
		}
		b, err := core.RunWith(p, s, core.RunOptions{Checked: true, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		sameFaultResult(t, a, b)
	})
}
