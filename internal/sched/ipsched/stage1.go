package ipsched

import (
	"fmt"
	"math"

	"repro/internal/mip"
)

// buildSelectionModel encodes the stage-1 sub-batch-selection IP
// (Eq. 14–20): maximize the number of allocated tasks such that every
// allocated task's files fit its node (15), per-node disk capacity
// holds (16), no task is allocated twice (17), and per-node
// computation stays within (1+Thresh) of the average (18–20).
func (ins *instance) buildSelectionModel(thresh float64, strong bool) (*mip.Model, *varIndex) {
	m := mip.NewModel()
	m.SetMaximize()
	C := ins.C
	vi := &varIndex{z: -1}

	vi.t = make([][]int, len(ins.tasks))
	for k := range ins.tasks {
		vi.t[k] = make([]int, C)
		for i := 0; i < C; i++ {
			vi.t[k][i] = m.AddBinary(fmt.Sprintf("T_%d_%d", k, i), 1)
		}
		// (17): at most one node (allocation is optional here).
		terms := make([]mip.Term, C)
		for i := 0; i < C; i++ {
			terms[i] = mip.Term{Var: vi.t[k][i], Coef: 1}
		}
		m.AddRow(fmt.Sprintf("atmost_%d", k), terms, mip.LE, 1)
	}
	vi.x = make([][]int, len(ins.classes))
	for l := range ins.classes {
		cl := &ins.classes[l]
		vi.x[l] = make([]int, C)
		for i := 0; i < C; i++ {
			if cl.present[i] {
				vi.x[l][i] = m.AddVar(fmt.Sprintf("X_%d_%d", l, i), 1, 1, 0, true)
			} else {
				vi.x[l][i] = m.AddBinary(fmt.Sprintf("X_%d_%d", l, i), 0)
			}
		}
	}
	// (15): allocation implies storage.
	for k := range ins.tasks {
		for i := 0; i < C; i++ {
			for _, l := range ins.access[k] {
				if ins.classes[l].present[i] {
					continue
				}
				m.AddRow("need", []mip.Term{{Var: vi.t[k][i], Coef: 1}, {Var: vi.x[l][i], Coef: -1}}, mip.LE, 0)
			}
		}
	}
	// (16): disk capacity per node.
	for i := 0; i < C; i++ {
		free := ins.st.Free(i)
		if free >= 1<<61 {
			continue
		}
		var terms []mip.Term
		for l := range ins.classes {
			if !ins.classes[l].present[i] {
				terms = append(terms, mip.Term{Var: vi.x[l][i], Coef: float64(ins.classes[l].size)})
			}
		}
		if len(terms) > 0 {
			m.AddRow(fmt.Sprintf("disk_%d", i), terms, mip.LE, float64(free))
		}
	}
	// (18)–(20): per-node computation within (1+Thresh) of the mean.
	// C·Comp_i ≤ (1+Thresh)·Σ_j Comp_j, linearized per node.
	for i := 0; i < C; i++ {
		var terms []mip.Term
		for k := range ins.tasks {
			comp := ins.st.P.Batch.Tasks[ins.tasks[k]].Compute
			for j := 0; j < C; j++ {
				coef := -(1 + thresh) * comp
				if j == i {
					coef += float64(C) * comp
				}
				if math.Abs(coef) > 0 {
					terms = append(terms, mip.Term{Var: vi.t[k][j], Coef: coef})
				}
			}
		}
		if len(terms) > 0 {
			m.AddRow(fmt.Sprintf("balance_%d", i), terms, mip.LE, 0)
		}
	}
	return m, vi
}

// selectionWarmStart returns the trivial feasible point of the
// selection model — nothing allocated, only the fixed placements set —
// guaranteeing branch and bound always holds an incumbent.
func (ins *instance) selectionWarmStart(m *mip.Model, vi *varIndex) []float64 {
	x := make([]float64, m.NumVars())
	for l := range ins.classes {
		for i := 0; i < ins.C; i++ {
			if ins.classes[l].present[i] {
				x[vi.x[l][i]] = 1
			}
		}
	}
	return x
}
