package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildSample constructs the paper's Figure 2 example: 8 tasks, files
// A..H shared as drawn (approximation of the figure: a few files
// shared by neighbouring tasks).
func buildSample(t *testing.T) *Hypergraph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 8; i++ {
		b.AddVertex(1)
	}
	b.AddNet(1, []int{0, 1})    // A
	b.AddNet(1, []int{1, 2})    // B
	b.AddNet(1, []int{2, 3})    // C
	b.AddNet(1, []int{3, 4})    // D
	b.AddNet(1, []int{4, 5})    // E
	b.AddNet(1, []int{5, 6})    // F
	b.AddNet(1, []int{6, 7})    // G
	b.AddNet(1, []int{0, 7})    // H (ring closure)
	b.AddNet(2, []int{0, 1, 2}) // heavier shared file
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func randomHypergraph(rng *rand.Rand, nv, nn int) *Hypergraph {
	b := NewBuilder()
	for i := 0; i < nv; i++ {
		b.AddVertex(1 + int64(rng.Intn(20)))
	}
	for j := 0; j < nn; j++ {
		size := 2 + rng.Intn(5)
		if size > nv {
			size = nv
		}
		perm := rng.Perm(nv)[:size]
		b.AddNet(1+int64(rng.Intn(50)), perm)
	}
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	b.AddVertex(1)
	b.AddNet(1, []int{0, 3}) // unknown vertex
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for unknown pin")
	}
	b2 := NewBuilder()
	b2.AddVertex(1)
	b2.AddVertex(1)
	b2.AddNet(1, []int{0, 0})
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected error for duplicate pin")
	}
}

func TestVNetsConsistency(t *testing.T) {
	h := buildSample(t)
	// Every pin relation must appear in both directions.
	for n := 0; n < h.NumN; n++ {
		for _, v := range h.NetPins(n) {
			found := false
			for _, nn := range h.VertexNets(int(v)) {
				if int(nn) == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("net %d pins vertex %d but reverse edge missing", n, v)
			}
		}
	}
}

func TestConnectivityCostManual(t *testing.T) {
	h := buildSample(t)
	part := []int{0, 0, 0, 1, 1, 1, 1, 0}
	// Cut nets: C(2,3), F? no (5,6 both 1), G(6,7) cut, H(0,7) not cut
	// (0 and 7 both part 0), E no, A no, B no, heavy{0,1,2} no.
	// So cost = w(C)·1 + w(G)·1 = 2.
	if got := h.ConnectivityCost(part); got != 2 {
		t.Fatalf("connectivity cost = %d, want 2", got)
	}
}

func TestPartitionKWayIsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		h := randomHypergraph(rng, 50+rng.Intn(100), 80+rng.Intn(150))
		k := 2 + rng.Intn(6)
		part, err := PartitionKWay(h, k, 0.1, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if len(part) != h.NumV {
			t.Fatalf("partition length %d != %d vertices", len(part), h.NumV)
		}
		for v, p := range part {
			if p < 0 || p >= k {
				t.Fatalf("vertex %d in invalid part %d (k=%d)", v, p, k)
			}
		}
	}
}

func TestPartitionKWayBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := randomHypergraph(rng, 200, 300)
	k := 4
	part, err := PartitionKWay(h, k, 0.10, 7)
	if err != nil {
		t.Fatal(err)
	}
	w := PartWeights(h, part, k)
	total := h.TotalVWeight()
	avg := float64(total) / float64(k)
	for p, pw := range w {
		if float64(pw) > avg*1.35 {
			t.Fatalf("part %d weight %d exceeds 1.35×avg (%f); weights=%v", p, pw, avg, w)
		}
	}
}

func TestPartitionKWayBeatsRandomCut(t *testing.T) {
	// The partitioner must do clearly better than a random assignment
	// on a structured (clustered) hypergraph.
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder()
	const clusters, per = 4, 30
	for i := 0; i < clusters*per; i++ {
		b.AddVertex(1)
	}
	// Dense intra-cluster nets, few inter-cluster nets.
	for c := 0; c < clusters; c++ {
		for j := 0; j < 60; j++ {
			v1 := c*per + rng.Intn(per)
			v2 := c*per + rng.Intn(per)
			if v1 != v2 {
				b.AddNet(10, []int{v1, v2})
			}
		}
	}
	for j := 0; j < 10; j++ {
		b.AddNet(1, []int{rng.Intn(per), clusters*per - 1 - rng.Intn(per)})
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionKWay(h, clusters, 0.15, 11)
	if err != nil {
		t.Fatal(err)
	}
	cost := h.ConnectivityCost(part)
	randPart := make([]int, h.NumV)
	for v := range randPart {
		randPart[v] = rng.Intn(clusters)
	}
	randCost := h.ConnectivityCost(randPart)
	if cost*2 > randCost {
		t.Fatalf("partitioner cost %d not clearly better than random %d", cost, randCost)
	}
}

func TestBINWBoundRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		h := randomHypergraph(rng, 60+rng.Intn(60), 100+rng.Intn(100))
		total := incidentTotal(h)
		bound := total / int64(3+rng.Intn(3))
		part, np, err := PartitionBINW(h, bound, 0.2, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if np < 1 {
			t.Fatalf("no parts")
		}
		inw := h.IncidentNetWeight(part, np)
		for p, w := range inw {
			if w > bound {
				// Acceptable only for singleton parts that alone
				// exceed the bound.
				count := 0
				for _, pp := range part {
					if pp == p {
						count++
					}
				}
				if count > 1 {
					t.Fatalf("trial %d: part %d (size %d) incident weight %d > bound %d", trial, p, count, w, bound)
				}
			}
		}
	}
}

func TestBINWSinglePartWhenFits(t *testing.T) {
	h := buildSample(t)
	bound := incidentTotal(h) + 1
	part, np, err := PartitionBINW(h, bound, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if np != 1 {
		t.Fatalf("numParts = %d, want 1", np)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatalf("part ids not dense: %v", part)
		}
	}
}

func TestCoarseningPreservesTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomHypergraph(rng, 120, 200)
	ch, m := coarsenOnce(h, rng)
	if ch.NumV >= h.NumV {
		t.Fatalf("coarsening did not shrink: %d -> %d", h.NumV, ch.NumV)
	}
	if ch.TotalVWeight() != h.TotalVWeight() {
		t.Fatalf("vertex weight changed: %d -> %d", h.TotalVWeight(), ch.TotalVWeight())
	}
	// Incident totals (net weights + extras) must be conserved.
	if got, want := incidentTotal(ch), incidentTotal(h); got != want {
		t.Fatalf("incident total changed: %d -> %d", want, got)
	}
	for v := 0; v < h.NumV; v++ {
		if int(m[v]) < 0 || int(m[v]) >= ch.NumV {
			t.Fatalf("map out of range")
		}
	}
}

func TestIncidentNetWeightMatchesDefinition(t *testing.T) {
	h := buildSample(t)
	part := []int{0, 0, 1, 1, 0, 0, 1, 1}
	inw := h.IncidentNetWeight(part, 2)
	// Manual: part 0 vertices {0,1,4,5}; nets touching them:
	// A{0,1} w1, B{1,2} w1, D{3,4} w1, E{4,5} w1, F{5,6} w1, H{0,7} w1,
	// heavy{0,1,2} w2 → 1+1+1+1+1+1+2 = 8.
	if inw[0] != 8 {
		t.Fatalf("incident weight part 0 = %d, want 8", inw[0])
	}
	// part 1 {2,3,6,7}: B, C, D, F, G, H, heavy → 1+1+1+1+1+1+2 = 8.
	if inw[1] != 8 {
		t.Fatalf("incident weight part 1 = %d, want 8", inw[1])
	}
}

// TestQuickPartitionValid property-tests K-way partitioning on random
// hypergraphs: output is always a valid partition and the
// connectivity cost never exceeds the all-nets-fully-cut upper bound.
func TestQuickPartitionValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHypergraph(rng, 20+rng.Intn(40), 30+rng.Intn(60))
		k := 2 + rng.Intn(4)
		part, err := PartitionKWay(h, k, 0.2, seed)
		if err != nil {
			return false
		}
		var ub int64
		for n := 0; n < h.NumN; n++ {
			sz := len(h.NetPins(n))
			lam := sz
			if k < lam {
				lam = k
			}
			ub += h.NWeight[n] * int64(lam-1)
		}
		cost := h.ConnectivityCost(part)
		if cost < 0 || cost > ub {
			return false
		}
		for _, p := range part {
			if p < 0 || p >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
