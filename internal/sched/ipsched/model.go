// Package ipsched implements the paper's 0-1 Integer Programming
// scheduler (§4): a coupled formulation of task allocation and file
// placement (remote transfers R, compute-to-compute replications Y,
// placements X, assignments T) minimizing the batch execution time,
// solved with the internal/mip branch-and-bound solver (the lp_solve
// substitute).
//
// Unlimited disk (§4.1) solves the one-shot allocation IP; limited
// disk (§4.2) runs the two-stage loop — a sub-batch-selection IP
// picking a maximal, load-balanced, disk-feasible task subset, then
// the allocation IP on that subset with per-node disk rows — with the
// §4.3 popularity eviction between sub-batches.
//
// Two value-preserving reductions keep the models tractable for a
// pure-Go solver: files required by exactly the same task set (and
// with the same current placement) collapse into super-files, and the
// per-(i,j,ℓ) linking constraints can be aggregated per (i,ℓ)/(j,ℓ)
// (weaker LP bound, identical integer feasible set). Both are
// switchable for the ablation benches.
package ipsched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/mip"
)

// fileClass is a super-file: original files with identical requiring
// task sets (within the sub-batch) and identical current placements.
type fileClass struct {
	members []batch.FileID
	size    int64
	req     []int  // indices into the sub-batch task slice
	present []bool // per compute node
}

// instance is a prepared allocation-IP instance.
type instance struct {
	st      *core.State
	tasks   []batch.TaskID
	classes []fileClass
	access  [][]int // per task: class indices

	C     int       // compute nodes
	tRem  float64   // seconds per byte, remote
	tRep  float64   // seconds per byte, replica
	execT []float64 // per task: compute + local read seconds (node 0 basis)
}

// buildInstance groups the sub-batch's files into classes and
// precomputes cost coefficients.
func buildInstance(st *core.State, tasks []batch.TaskID) *instance {
	b := st.P.Batch
	C := st.P.Platform.NumCompute()
	idx := make(map[batch.TaskID]int, len(tasks))
	for i, t := range tasks {
		idx[t] = i
	}
	type key struct {
		req     string
		present string
	}
	classOf := make(map[key]int)
	ins := &instance{st: st, tasks: tasks, C: C}
	ins.access = make([][]int, len(tasks))

	// Collect files used by the sub-batch with their local require
	// sets.
	reqOf := make(map[batch.FileID][]int)
	for i, t := range tasks {
		for _, f := range b.Tasks[t].Files {
			reqOf[f] = append(reqOf[f], i)
		}
	}
	files := make([]batch.FileID, 0, len(reqOf))
	for f := range reqOf {
		files = append(files, f)
	}
	sort.Slice(files, func(a, z int) bool { return files[a] < files[z] })
	for _, f := range files {
		req := reqOf[f]
		rk := make([]byte, 0, len(req)*4)
		for _, r := range req {
			rk = append(rk, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
		}
		pres := make([]bool, C)
		pk := make([]byte, C)
		for i := 0; i < C; i++ {
			if st.Holds(i, f) {
				pres[i] = true
				pk[i] = 1
			}
		}
		k := key{req: string(rk), present: string(pk)}
		ci, ok := classOf[k]
		if !ok {
			ci = len(ins.classes)
			classOf[k] = ci
			ins.classes = append(ins.classes, fileClass{req: req, present: pres})
		}
		c := &ins.classes[ci]
		c.members = append(c.members, f)
		c.size += b.FileSize(f)
	}
	for ci := range ins.classes {
		for _, k := range ins.classes[ci].req {
			ins.access[k] = append(ins.access[k], ci)
		}
	}
	ins.tRem = 1 / st.P.Platform.MinRemoteBW()
	ins.tRep = 1 / st.P.Platform.MinReplicaBW()
	ins.execT = make([]float64, len(tasks))
	for i, t := range tasks {
		ins.execT[i] = b.Tasks[t].Compute + float64(b.TaskBytes(t))/st.P.Platform.Compute[0].LocalReadBW
	}
	return ins
}

// varIndex tracks the model's variable layout for extraction.
type varIndex struct {
	z int
	t [][]int   // [task][node]
	x [][]int   // [class][node]; -1 when fixed-present
	r [][]int   // [class][node]; -1 when disallowed
	y [][][]int // [class][src][dst]; -1 when disallowed
}

// buildAllocationModel encodes §4.1's IP (with the §4.2 disk rows) for
// the instance. strong selects the per-(i,j,ℓ) linking rows.
func (ins *instance) buildAllocationModel(strong bool) (*mip.Model, *varIndex) {
	m := mip.NewModel()
	C := ins.C
	noRep := ins.st.P.DisableReplication
	vi := &varIndex{}
	vi.z = m.AddVar("z", 0, math.Inf(1), 1, false)

	vi.t = make([][]int, len(ins.tasks))
	for k := range ins.tasks {
		vi.t[k] = make([]int, C)
		for i := 0; i < C; i++ {
			vi.t[k][i] = m.AddBinary(fmt.Sprintf("T_%d_%d", k, i), 0)
		}
		// (6) each task on exactly one node.
		terms := make([]mip.Term, C)
		for i := 0; i < C; i++ {
			terms[i] = mip.Term{Var: vi.t[k][i], Coef: 1}
		}
		m.AddRow(fmt.Sprintf("assign_%d", k), terms, mip.EQ, 1)
	}

	vi.x = make([][]int, len(ins.classes))
	vi.r = make([][]int, len(ins.classes))
	vi.y = make([][][]int, len(ins.classes))
	for l := range ins.classes {
		cl := &ins.classes[l]
		vi.x[l] = make([]int, C)
		vi.r[l] = make([]int, C)
		vi.y[l] = make([][]int, C)
		for i := 0; i < C; i++ {
			vi.y[l][i] = make([]int, C)
			for j := range vi.y[l][i] {
				vi.y[l][i][j] = -1
			}
		}
		for i := 0; i < C; i++ {
			if cl.present[i] {
				vi.x[l][i] = m.AddVar(fmt.Sprintf("X_%d_%d", l, i), 1, 1, 0, true)
				vi.r[l][i] = -1
			} else {
				vi.x[l][i] = m.AddBinary(fmt.Sprintf("X_%d_%d", l, i), 0)
				vi.r[l][i] = m.AddBinary(fmt.Sprintf("R_%d_%d", l, i), 0)
			}
		}
		if !noRep {
			for i := 0; i < C; i++ {
				for j := 0; j < C; j++ {
					if i == j || cl.present[j] {
						continue // no replica into a node already holding it
					}
					vi.y[l][i][j] = m.AddBinary(fmt.Sprintf("Y_%d_%d_%d", l, i, j), 0)
				}
			}
		}

		for i := 0; i < C; i++ {
			// (1): replicate out of i only if i stores the class.
			if !noRep {
				if strong {
					for j := 0; j < C; j++ {
						if vi.y[l][i][j] < 0 {
							continue
						}
						m.AddRow("link1", []mip.Term{{Var: vi.y[l][i][j], Coef: 1}, {Var: vi.x[l][i], Coef: -1}}, mip.LE, 0)
					}
				} else {
					var terms []mip.Term
					for j := 0; j < C; j++ {
						if vi.y[l][i][j] >= 0 {
							terms = append(terms, mip.Term{Var: vi.y[l][i][j], Coef: 1})
						}
					}
					if len(terms) > 0 {
						terms = append(terms, mip.Term{Var: vi.x[l][i], Coef: -float64(C - 1)})
						m.AddRow("link1a", terms, mip.LE, 0)
					}
				}
				// (2): replicate into j only if a task needing the class
				// runs there.
				if strong {
					for j := 0; j < C; j++ {
						if vi.y[l][i][j] < 0 {
							continue
						}
						terms := []mip.Term{{Var: vi.y[l][i][j], Coef: 1}}
						for _, k := range cl.req {
							terms = append(terms, mip.Term{Var: vi.t[k][j], Coef: -1})
						}
						m.AddRow("link2", terms, mip.LE, 0)
					}
				}
			}
			// (4): storage on a non-present node comes from exactly its
			// transfers (equality also enforces (3) and (5) given X ≤ 1).
			if !cl.present[i] {
				terms := []mip.Term{{Var: vi.x[l][i], Coef: 1}, {Var: vi.r[l][i], Coef: -1}}
				for j := 0; j < C; j++ {
					if vi.y[l][j][i] >= 0 {
						terms = append(terms, mip.Term{Var: vi.y[l][j][i], Coef: -1})
					}
				}
				m.AddRow("storage", terms, mip.EQ, 0)
			}
		}
		if !noRep && !strong {
			// (2) aggregated per destination j.
			for j := 0; j < C; j++ {
				var terms []mip.Term
				for i := 0; i < C; i++ {
					if vi.y[l][i][j] >= 0 {
						terms = append(terms, mip.Term{Var: vi.y[l][i][j], Coef: 1})
					}
				}
				if len(terms) == 0 {
					continue
				}
				for _, k := range cl.req {
					terms = append(terms, mip.Term{Var: vi.t[k][j], Coef: -1})
				}
				m.AddRow("link2a", terms, mip.LE, 0)
			}
		}
		// (8): classes with no copy anywhere need ≥1 remote transfer.
		anyPresent := false
		for i := 0; i < C; i++ {
			if cl.present[i] {
				anyPresent = true
			}
		}
		if !anyPresent {
			var terms []mip.Term
			for i := 0; i < C; i++ {
				if vi.r[l][i] >= 0 {
					terms = append(terms, mip.Term{Var: vi.r[l][i], Coef: 1})
				}
			}
			m.AddRow("retrieve", terms, mip.GE, 1)
		}
	}

	// (7): a task's node stores all its classes.
	for k := range ins.tasks {
		for i := 0; i < C; i++ {
			if strongRows7 || len(ins.access[k]) <= 1 {
				for _, l := range ins.access[k] {
					if ins.classes[l].present[i] {
						continue
					}
					m.AddRow("need", []mip.Term{{Var: vi.t[k][i], Coef: 1}, {Var: vi.x[l][i], Coef: -1}}, mip.LE, 0)
				}
			} else {
				var terms []mip.Term
				cnt := 0.0
				for _, l := range ins.access[k] {
					if ins.classes[l].present[i] {
						continue
					}
					terms = append(terms, mip.Term{Var: vi.x[l][i], Coef: 1})
					cnt++
				}
				if cnt == 0 {
					continue
				}
				terms = append(terms, mip.Term{Var: vi.t[k][i], Coef: -cnt})
				m.AddRow("need_a", terms, mip.GE, 0)
			}
		}
	}

	// Disk capacity (Eq. 21): newly staged classes fit the free space.
	for i := 0; i < C; i++ {
		free := ins.st.Free(i)
		if free >= 1<<61 {
			continue
		}
		var terms []mip.Term
		for l := range ins.classes {
			if !ins.classes[l].present[i] {
				terms = append(terms, mip.Term{Var: vi.x[l][i], Coef: float64(ins.classes[l].size)})
			}
		}
		if len(terms) > 0 {
			m.AddRow(fmt.Sprintf("disk_%d", i), terms, mip.LE, float64(free))
		}
	}

	// Makespan rows (Eq. 9–12): z ≥ replication + remote + computation.
	for i := 0; i < C; i++ {
		terms := []mip.Term{{Var: vi.z, Coef: -1}}
		for l := range ins.classes {
			sz := float64(ins.classes[l].size)
			if vi.r[l][i] >= 0 {
				terms = append(terms, mip.Term{Var: vi.r[l][i], Coef: ins.tRem * sz})
			}
			for j := 0; j < C; j++ {
				if vi.y[l][j][i] >= 0 { // incoming
					terms = append(terms, mip.Term{Var: vi.y[l][j][i], Coef: ins.tRep * sz})
				}
				if vi.y[l][i][j] >= 0 { // outgoing
					terms = append(terms, mip.Term{Var: vi.y[l][i][j], Coef: ins.tRep * sz})
				}
			}
		}
		for k := range ins.tasks {
			terms = append(terms, mip.Term{Var: vi.t[k][i], Coef: ins.execT[k]})
		}
		m.AddRow(fmt.Sprintf("makespan_%d", i), terms, mip.LE, 0)
	}
	return m, vi
}

// strongRows7 keeps constraint (7) in its strong per-(k,i,ℓ) form even
// in aggregated mode: these rows carry most of the LP bound and stay
// linear in the pin count.
const strongRows7 = true

// warmStart converts a feasible assignment (task index → node) into a
// full variable vector for the allocation model: the first needing
// node of an absent class performs the remote transfer; other needing
// nodes replicate from it (or from a node already holding the class);
// with replication disabled every needing node pulls remotely.
func (ins *instance) warmStart(m *mip.Model, vi *varIndex, nodeOf []int) []float64 {
	x := make([]float64, m.NumVars())
	C := ins.C
	noRep := ins.st.P.DisableReplication
	for k := range ins.tasks {
		x[vi.t[k][nodeOf[k]]] = 1
	}
	load := make([]float64, C)
	for k := range ins.tasks {
		load[nodeOf[k]] += ins.execT[k]
	}
	for l := range ins.classes {
		cl := &ins.classes[l]
		needed := map[int]bool{}
		for _, k := range cl.req {
			if !cl.present[nodeOf[k]] {
				needed[nodeOf[k]] = true
			}
		}
		for i := 0; i < C; i++ {
			if cl.present[i] {
				x[vi.x[l][i]] = 1
			}
		}
		if len(needed) == 0 {
			continue
		}
		srcPresent := -1
		for i := 0; i < C; i++ {
			if cl.present[i] {
				srcPresent = i
				break
			}
		}
		dests := make([]int, 0, len(needed))
		for i := range needed {
			dests = append(dests, i)
		}
		sort.Ints(dests)
		sz := float64(cl.size)
		if noRep {
			for _, i := range dests {
				x[vi.x[l][i]] = 1
				x[vi.r[l][i]] = 1
				load[i] += ins.tRem * sz
			}
			continue
		}
		origin := srcPresent
		rest := dests
		if origin < 0 {
			origin = dests[0]
			x[vi.x[l][origin]] = 1
			x[vi.r[l][origin]] = 1
			load[origin] += ins.tRem * sz
			rest = dests[1:]
		}
		for _, i := range rest {
			x[vi.x[l][i]] = 1
			x[vi.y[l][origin][i]] = 1
			load[origin] += ins.tRep * sz
			load[i] += ins.tRep * sz
		}
	}
	z := 0.0
	for i := 0; i < C; i++ {
		if load[i] > z {
			z = load[i]
		}
	}
	x[vi.z] = z
	return x
}

// extractPlan converts an allocation-model solution into a pinned
// SubPlan, expanding file classes back to their member files.
func (ins *instance) extractPlan(vi *varIndex, x []float64) *core.SubPlan {
	plan := &core.SubPlan{Node: make(map[batch.TaskID]int), Pinned: true}
	on := func(v int) bool { return v >= 0 && x[v] > 0.5 }
	for k, t := range ins.tasks {
		for i := 0; i < ins.C; i++ {
			if on(vi.t[k][i]) {
				plan.Tasks = append(plan.Tasks, t)
				plan.Node[t] = i
				break
			}
		}
	}
	for l := range ins.classes {
		cl := &ins.classes[l]
		for i := 0; i < ins.C; i++ {
			if on := vi.r[l][i] >= 0 && x[vi.r[l][i]] > 0.5; on {
				for _, f := range cl.members {
					plan.Staging = append(plan.Staging, core.Staging{File: f, Dest: i, Kind: core.Remote})
				}
			}
			for j := 0; j < ins.C; j++ {
				if vi.y[l][i][j] >= 0 && x[vi.y[l][i][j]] > 0.5 {
					for _, f := range cl.members {
						plan.Staging = append(plan.Staging, core.Staging{File: f, Dest: j, Kind: core.Replica, Src: i})
					}
				}
			}
		}
	}
	return plan
}
