package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.Count("a", 1)
	m.SetGauge("b", 2)
	m.Observe("c", 3)
	m.Merge(NewMetrics())
	s := m.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil Metrics snapshot not empty")
	}
}

func TestMetricsBasic(t *testing.T) {
	m := NewMetrics()
	m.Count("evictions", 2)
	m.Count("evictions", 3)
	m.SetGauge("makespan_s", 123.5)
	m.Observe("plan_ms", 0.5)
	m.Observe("plan_ms", 3)
	m.Observe("plan_ms", 4)
	s := m.Snapshot()
	if s.Counters["evictions"] != 5 {
		t.Fatalf("counter = %d, want 5", s.Counters["evictions"])
	}
	if s.Gauges["makespan_s"] != 123.5 {
		t.Fatalf("gauge = %g", s.Gauges["makespan_s"])
	}
	h := s.Histograms["plan_ms"]
	if h.Count != 3 || h.Sum != 7.5 || h.Min != 0.5 || h.Max != 4 {
		t.Fatalf("hist = %+v", h)
	}
	if math.Abs(h.Mean-2.5) > 1e-12 {
		t.Fatalf("mean = %g, want 2.5", h.Mean)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {0.5, 0}, {1, 0},
		{1.5, 1}, {2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{1000, 10}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestMergeCommutative(t *testing.T) {
	mk := func() (*Metrics, *Metrics) {
		a, b := NewMetrics(), NewMetrics()
		a.Count("n", 1)
		a.Observe("h", 2)
		a.Observe("h", 100)
		b.Count("n", 10)
		b.Count("only_b", 7)
		b.Observe("h", 0.25)
		return a, b
	}
	a1, b1 := mk()
	a1.Merge(b1)
	a2, b2 := mk()
	b2.Merge(a2)
	s1, s2 := a1.Snapshot(), b2.Snapshot()
	j1, _ := json.Marshal(s1)
	j2, _ := json.Marshal(s2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("merge not commutative:\n%s\nvs\n%s", j1, j2)
	}
}

func TestMergeConcurrent(t *testing.T) {
	root := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := NewMetrics()
			for i := 0; i < 100; i++ {
				local.Count("ops", 1)
				local.Observe("lat", float64(i))
			}
			root.Merge(local)
		}()
	}
	wg.Wait()
	s := root.Snapshot()
	if s.Counters["ops"] != 800 {
		t.Fatalf("ops = %d, want 800", s.Counters["ops"])
	}
	if s.Histograms["lat"].Count != 800 {
		t.Fatalf("lat count = %d, want 800", s.Histograms["lat"].Count)
	}
}

func TestSnapshotWriters(t *testing.T) {
	m := NewMetrics()
	m.Count("remote_bytes", 1<<20)
	m.SetGauge("makespan_s", 42)
	m.Observe("plan_ms", 1.5)
	s := m.Snapshot()

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(js.Bytes()) {
		t.Fatal("metrics JSON invalid")
	}
	var js2 bytes.Buffer
	if err := s.WriteJSON(&js2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js.Bytes(), js2.Bytes()) {
		t.Fatal("metrics JSON not deterministic")
	}

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.HasPrefix(out, "kind,name,field,value\n") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	for _, want := range []string{"counter,remote_bytes,value,1048576", "gauge,makespan_s,value,42", "histogram,plan_ms,count,1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}
