package obs

import (
	"strings"
	"testing"
)

// ganttRows renders tr at width and returns the output split into
// lines (footer included as the last line).
func ganttRows(t *testing.T, tr *Trace, width int) []string {
	t.Helper()
	var sb strings.Builder
	if err := tr.WriteASCIIGantt(&sb, width); err != nil {
		t.Fatalf("WriteASCIIGantt: %v", err)
	}
	return strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
}

// rowFor returns the bar contents (between the '|' delimiters) of the
// track whose label contains name.
func rowFor(t *testing.T, lines []string, name string) string {
	t.Helper()
	for _, ln := range lines {
		if strings.Contains(ln, name) && strings.Contains(ln, "|") {
			open := strings.Index(ln, "|")
			close := strings.LastIndex(ln, "|")
			if close > open {
				return ln[open+1 : close]
			}
		}
	}
	t.Fatalf("no gantt row for track %q in:\n%s", name, strings.Join(lines, "\n"))
	return ""
}

func TestGanttEmptySchedule(t *testing.T) {
	var sb strings.Builder
	if err := New().WriteASCIIGantt(&sb, 80); err != nil {
		t.Fatalf("WriteASCIIGantt: %v", err)
	}
	if got := sb.String(); got != "(no simulated-time events recorded)\n" {
		t.Fatalf("empty trace rendered %q", got)
	}
}

// TestGanttRealTimeEventsInvisible: wall-clock spans and sim instants
// live on other clocks/phases and must not produce rows.
func TestGanttRealTimeEventsInvisible(t *testing.T) {
	tr := New()
	tr.Span(tr.AllocTrack(DomainReal, "planner"), "plan", "solve")()
	tr.SimInstant(tr.AllocTrack(DomainSim, "compute 0"), "fault", "node crash", 3)
	var sb strings.Builder
	if err := tr.WriteASCIIGantt(&sb, 80); err != nil {
		t.Fatalf("WriteASCIIGantt: %v", err)
	}
	if got := sb.String(); got != "(no simulated-time events recorded)\n" {
		t.Fatalf("non-span events rendered %q", got)
	}
}

func TestGanttSingleTask(t *testing.T) {
	tr := New()
	tid := tr.AllocTrack(DomainSim, "compute 0")
	tr.SimSpan(tid, "exec", "task 0", 0, 2)

	lines := ganttRows(t, tr, 40)
	if len(lines) != 2 {
		t.Fatalf("want 1 row + footer, got %d lines:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	row := rowFor(t, lines, "compute 0")
	if len(row) != 40 {
		t.Fatalf("row width = %d, want 40", len(row))
	}
	// The single span covers the whole horizon: every cell is '#'.
	if row != strings.Repeat("#", 40) {
		t.Fatalf("single full-horizon task rendered %q", row)
	}
	footer := lines[len(lines)-1]
	if !strings.Contains(footer, "0s") || !strings.Contains(footer, "2.0s") {
		t.Fatalf("footer missing time axis: %q", footer)
	}
	if !strings.Contains(footer, "# exec") || !strings.Contains(footer, "x fault") {
		t.Fatalf("footer missing glyph legend: %q", footer)
	}
}

// TestGanttFaultReservations mirrors the simulator's fault-path
// emissions (internal/core/exec.go): a partially completed transfer
// preempted by a link failure and an exec reservation burned by a
// node crash both carry cat "fault" and must render with their own
// glyph, distinct from healthy work.
func TestGanttFaultReservations(t *testing.T) {
	tr := New()
	c0 := tr.AllocTrack(DomainSim, "compute 0")
	c1 := tr.AllocTrack(DomainSim, "compute 1")
	// Node 0: a failed staging attempt burns 0..2, the retry succeeds
	// 2..4, then the task runs 4..8.
	tr.SimSpan(c0, "fault", "failed stage file 7", 0, 2)
	tr.SimSpan(c0, "remote", "stage file 7 (retry)", 2, 4)
	tr.SimSpan(c0, "exec", "task 3", 4, 8)
	// Node 1: a crash kills the task half-way through its slot.
	tr.SimSpan(c1, "fault", "killed task 5", 0, 4)

	lines := ganttRows(t, tr, 40)
	r0 := rowFor(t, lines, "compute 0")
	if want := strings.Repeat("x", 10) + strings.Repeat("=", 10) + strings.Repeat("#", 20); r0 != want {
		t.Fatalf("compute 0 row = %q, want %q", r0, want)
	}
	r1 := rowFor(t, lines, "compute 1")
	if want := strings.Repeat("x", 20) + strings.Repeat(".", 20); r1 != want {
		t.Fatalf("compute 1 row = %q, want %q", r1, want)
	}
}

// TestGanttInstantShortReservation: a reservation too short for one
// column at the chosen scale still occupies a single cell, so
// preempted slivers never vanish from the picture.
func TestGanttInstantShortReservation(t *testing.T) {
	tr := New()
	tid := tr.AllocTrack(DomainSim, "compute 0")
	tr.SimSpan(tid, "exec", "long task", 0, 100)
	// 0.1s of burned time at t=50 is well under one column at width 40.
	tr.SimSpan(tid, "fault", "failed stage", 50, 50.1)

	row := rowFor(t, ganttRows(t, tr, 40), "compute 0")
	if n := strings.Count(row, "x"); n != 1 {
		t.Fatalf("sub-cell fault span drew %d cells, want exactly 1 (row %q)", n, row)
	}
	if strings.Contains(row, ".") {
		t.Fatalf("fault cell should overlay the exec span, not blank it: %q", row)
	}
}

func TestGanttUnknownCategoryAndLabelFallback(t *testing.T) {
	tr := New()
	// NameTrack never called for tid 9: label falls back to "track 9".
	tr.SimSpan(9, "mystery", "??", 0, 1)
	lines := ganttRows(t, tr, 40)
	row := rowFor(t, lines, "track 9")
	if row != strings.Repeat("*", 40) {
		t.Fatalf("unknown category rendered %q, want '*' fill", row)
	}
}
