package faults

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestParsePresetsAndOverrides(t *testing.T) {
	if p, err := Parse(""); err != nil || p != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil plan", p, err)
	}
	if p, err := Parse("none"); err != nil || p != nil {
		t.Fatalf("Parse(none) = %v, %v; want nil plan", p, err)
	}
	p, err := Parse("harsh,seed=42,linkp=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.LinkFailProb != 0.2 || p.NodeMTTF != presets["harsh"].NodeMTTF {
		t.Fatalf("override parse wrong: %+v", p)
	}
	p, err = Parse("seed=7,mttf=1000,linkp=0.05,stragp=0.1,stragf=3,retries=5,budget=2,backoff=1,cap=10")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{Seed: 7, NodeMTTF: 1000, LinkFailProb: 0.05, StragglerProb: 0.1,
		StragglerFactor: 3, MaxTransferRetries: 5, TaskRetryBudget: 2, BackoffBase: 1, BackoffCap: 10}
	if !reflect.DeepEqual(*p, want) {
		t.Fatalf("key=value parse: got %+v want %+v", *p, want)
	}
	for _, bad := range []string{"nonsense", "mttf=x", "harsh,frobnicate=1", "linkp=2", "mttf=-5"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestParseRoundTripsString(t *testing.T) {
	p, err := Parse("seed=3,mttf=500,linkp=0.1,stragp=0.2,stragf=2,retries=3,budget=4")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if !reflect.DeepEqual(*q, *p) {
		t.Fatalf("round trip: %+v vs %+v", *q, *p)
	}
}

func TestEnabledAndNilInjector(t *testing.T) {
	var nilPlan *FaultPlan
	if nilPlan.Enabled() {
		t.Fatal("nil plan reports enabled")
	}
	if (&FaultPlan{Seed: 9}).Enabled() {
		t.Fatal("seed-only plan reports enabled")
	}
	if in := NewInjector(&FaultPlan{}, 4); in != nil {
		t.Fatal("disabled plan compiled to a non-nil injector")
	}
	// Nil injector: every query is the no-fault answer.
	var in *Injector
	if !math.IsInf(in.CrashTime(0), 1) {
		t.Fatal("nil injector crash time not +Inf")
	}
	if _, failed := in.TransferFail(0, 0, -1, 0, 1); failed {
		t.Fatal("nil injector failed a transfer")
	}
	if in.Straggler(0, 0) != 1 {
		t.Fatal("nil injector slowed a task")
	}
	if in.Backoff(3) != 0 {
		t.Fatal("nil injector returned backoff")
	}
	in.ConsumeCrash(0) // must not panic
}

// TestInjectorOrderIndependence is the core determinism property: the
// same query answered at any point, in any interleaving, gives the
// same result, because decisions hash stable identities instead of
// consuming a shared stream.
func TestInjectorOrderIndependence(t *testing.T) {
	plan := &FaultPlan{Seed: 11, NodeMTTF: 1000, LinkFailProb: 0.3, StragglerProb: 0.5, StragglerFactor: 4}
	a := NewInjector(plan, 4)
	b := NewInjector(plan, 4)

	// Query b in a scrambled order first.
	b.Straggler(7, 2)
	b.TransferFail(9, 3, 1, 5, 2)
	b.CrashTime(3)

	for node := 0; node < 4; node++ {
		if a.CrashTime(node) != b.CrashTime(node) {
			t.Fatalf("crash time differs on node %d", node)
		}
	}
	for f := 0; f < 10; f++ {
		for attempt := 1; attempt <= 3; attempt++ {
			af, aok := a.TransferFail(f, 1, -1, 0, attempt)
			bf, bok := b.TransferFail(f, 1, -1, 0, attempt)
			if af != bf || aok != bok {
				t.Fatalf("transfer decision differs for file %d attempt %d", f, attempt)
			}
		}
	}
	for task := 0; task < 20; task++ {
		if a.Straggler(task, 1) != b.Straggler(task, 1) {
			t.Fatalf("straggler factor differs for task %d", task)
		}
	}
}

func TestCrashSequenceMonotoneAndConsumable(t *testing.T) {
	plan := &FaultPlan{Seed: 5, NodeMTTF: 100}
	in := NewInjector(plan, 2)
	prev := 0.0
	for i := 0; i < 50; i++ {
		c := in.CrashTime(0)
		if !(c > prev) {
			t.Fatalf("crash %d at %g not after previous %g", i, c, prev)
		}
		prev = c
		in.ConsumeCrash(0)
	}
	// Per-node MTTF override: node 1 crashes far less often on average.
	over := &FaultPlan{Seed: 5, NodeMTTF: 100, PerNodeMTTF: []float64{0, 1e9}}
	oin := NewInjector(over, 2)
	if oin.CrashTime(1) < 1e6 {
		t.Fatalf("per-node MTTF override ignored: first crash at %g", oin.CrashTime(1))
	}
}

func TestTransferFailRespectsProbabilityEdges(t *testing.T) {
	never := NewInjector(&FaultPlan{Seed: 1, NodeMTTF: 10}, 2) // linkp 0
	for f := 0; f < 100; f++ {
		if _, failed := never.TransferFail(f, 0, -1, 0, 1); failed {
			t.Fatal("transfer failed with LinkFailProb 0")
		}
	}
	always := NewInjector(&FaultPlan{Seed: 1, LinkFailProb: 1}, 2)
	for f := 0; f < 100; f++ {
		frac, failed := always.TransferFail(f, 0, -1, 0, 1)
		if !failed {
			t.Fatal("transfer survived with LinkFailProb 1")
		}
		if frac <= 0 || frac >= 1 {
			t.Fatalf("failure fraction %g outside (0,1)", frac)
		}
	}
}

func TestBackoffCappedExponential(t *testing.T) {
	in := NewInjector(&FaultPlan{Seed: 1, LinkFailProb: 0.5, BackoffBase: 1, BackoffCap: 5}, 1)
	wants := []float64{0, 0, 1, 2, 4, 5, 5}
	for attempt, want := range wants {
		if got := in.Backoff(attempt); got != want {
			t.Fatalf("Backoff(%d) = %g, want %g", attempt, got, want)
		}
	}
}

func TestStragglerBounds(t *testing.T) {
	in := NewInjector(&FaultPlan{Seed: 3, StragglerProb: 1, StragglerFactor: 4}, 1)
	for task := 0; task < 200; task++ {
		f := in.Straggler(task, 0)
		if f < 1 || f > 4 {
			t.Fatalf("straggler factor %g outside [1,4]", f)
		}
	}
	off := NewInjector(&FaultPlan{Seed: 3, LinkFailProb: 0.1}, 1)
	if off.Straggler(0, 0) != 1 {
		t.Fatal("straggler fired with StragglerProb 0")
	}
}

// TestSpecRoundTrip: Parse ∘ Spec must be the identity for every
// enabled plan — including partially-set straggler fields and backoff
// shapes, which the pre-fix renderer silently dropped — and "none"
// (parsing to nil) for disabled ones.
func TestSpecRoundTrip(t *testing.T) {
	plans := []FaultPlan{
		{Seed: 9, NodeMTTF: 4000, LinkFailProb: 0.1, StragglerProb: 0.15, StragglerFactor: 4},
		// Factor without probability: disabled (no straggler ever
		// fires), must render as none.
		{Seed: 1, StragglerFactor: 4},
		// Probability without factor: enabled, and the zero factor
		// must survive the round trip rather than vanish.
		{Seed: 2, StragglerProb: 0.5},
		// Backoff shape without any failure rate is disabled.
		{Seed: 3, BackoffBase: 0.25, BackoffCap: 10},
		// Backoff shape with a failure rate must survive.
		{Seed: 4, LinkFailProb: 0.3, BackoffBase: 0.25, BackoffCap: 10},
		{Seed: 5, PerNodeMTTF: []float64{0, 800, 0, 120.5}},
		{Seed: 6, NodeMTTF: 1e5, MaxTransferRetries: 7, TaskRetryBudget: 2},
	}
	var names []string
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		plans = append(plans, presets[name])
	}
	for _, p := range plans {
		p := p
		spec := p.Spec()
		rt, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse rejected Spec() output %q for %+v: %v", spec, p, err)
			continue
		}
		switch {
		case !p.Enabled():
			if spec != "none" || rt != nil {
				t.Errorf("disabled plan %+v rendered %q, parsed %+v; want none/nil", p, spec, rt)
			}
		case rt == nil || !reflect.DeepEqual(p, *rt):
			t.Errorf("round trip changed plan:\n  in   %+v\n  spec %q\n  out  %+v", p, spec, rt)
		}
	}
}

// TestStragglerDistQuantile pins the slowdown CDF inversion the
// speculation policies build their thresholds from.
func TestStragglerDistQuantile(t *testing.T) {
	harsh := StragglerDist{Prob: 0.15, Factor: 4}
	cases := []struct {
		d    StragglerDist
		q    float64
		want float64
	}{
		{harsh, -1, 1},             // clamped below
		{harsh, 0, 1},              // all of the non-straggler mass
		{harsh, 0.85, 1},           // exactly the non-straggler mass
		{harsh, 0.925, 2.5},        // halfway up the uniform tail
		{harsh, 1, 4},              // the full factor
		{harsh, 2, 4},              // clamped above
		{StragglerDist{}, 0.99, 1}, // no stragglers
		{StragglerDist{Prob: 0.5, Factor: 1}, 0.99, 1}, // degenerate factor
		{StragglerDist{Prob: 1, Factor: 3}, 0.5, 2},    // pure uniform
	}
	for _, c := range cases {
		if got := c.d.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) of %+v = %g, want %g", c.q, c.d, got, c.want)
		}
	}
}

// TestSpecStragglerIndependentOfPrimary: the twin's slowdown draw is
// bounded like the primary's, deterministic, and hashed through a
// disjoint domain — so consulting it never replays the primary's luck.
func TestSpecStragglerIndependentOfPrimary(t *testing.T) {
	in := NewInjector(&FaultPlan{Seed: 3, StragglerProb: 1, StragglerFactor: 4}, 1)
	differs := false
	for task := 0; task < 200; task++ {
		f := in.SpecStraggler(task, 0)
		if f < 1 || f > 4 {
			t.Fatalf("spec straggler factor %g outside [1,4]", f)
		}
		if f != in.SpecStraggler(task, 0) {
			t.Fatalf("SpecStraggler(task=%d) not deterministic", task)
		}
		if f != in.Straggler(task, 0) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("SpecStraggler mirrors Straggler on every identity; domains are not disjoint")
	}
	if off := NewInjector(&FaultPlan{Seed: 3, LinkFailProb: 0.1}, 1); off.SpecStraggler(0, 0) != 1 {
		t.Fatal("spec straggler fired with StragglerProb 0")
	}
}
