package bipart

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

func state(t *testing.T, b *batch.Batch, compute int, disk int64) *core.State {
	t.Helper()
	p := &core.Problem{Batch: b, Platform: platform.XIO(compute, 2, disk)}
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSingleSubBatchWhenFits(t *testing.T) {
	b, err := workload.Sat(workload.SatConfig{NumTasks: 30, Overlap: workload.HighOverlap, NumStorage: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := state(t, b, 4, 0)
	plan, err := New(1).PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) != 30 {
		t.Fatalf("planned %d of 30", len(plan.Tasks))
	}
	if plan.Pinned {
		t.Fatal("BiPartition plans are not pinned")
	}
}

func TestSubBatchRespectsAggregateDisk(t *testing.T) {
	b, err := workload.Sat(workload.SatConfig{NumTasks: 40, Overlap: workload.LowOverlap, NumStorage: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := b.TotalUniqueBytes(nil)
	per := total / 8 // 4 nodes → aggregate = half the batch
	st := state(t, b, 4, per)
	plan, err := New(2).PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) == 0 || len(plan.Tasks) == 40 {
		t.Fatalf("sub-batch size %d; expected a strict subset", len(plan.Tasks))
	}
	if got := b.TotalUniqueBytes(plan.Tasks); got > 4*per {
		t.Fatalf("sub-batch working set %d exceeds aggregate disk %d", got, 4*per)
	}
}

func TestMappingClustersSharers(t *testing.T) {
	// Two disjoint task families sharing big files internally: the
	// partitioner must not split a family across nodes.
	b := batch.New()
	fA := b.AddFile("A", 500*platform.MB, 0)
	fB := b.AddFile("B", 500*platform.MB, 1)
	for i := 0; i < 4; i++ {
		b.AddTask("a", 1, []batch.FileID{fA})
		b.AddTask("b", 1, []batch.FileID{fB})
	}
	st := state(t, b, 2, 0)
	plan, err := New(3).PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	nodeOfA := map[int]bool{}
	nodeOfB := map[int]bool{}
	for _, k := range plan.Tasks {
		if b.Tasks[k].Files[0] == fA {
			nodeOfA[plan.Node[k]] = true
		} else {
			nodeOfB[plan.Node[k]] = true
		}
	}
	if len(nodeOfA) != 1 || len(nodeOfB) != 1 {
		t.Fatalf("families split: A on %v, B on %v", nodeOfA, nodeOfB)
	}
}

func TestRepairDropsTasksOverPerNodeDisk(t *testing.T) {
	// Aggregate fits but any single node can hold at most 2 of the 4
	// private files, so at most 2 tasks can map to one node.
	b := batch.New()
	var tasks []batch.TaskID
	for i := 0; i < 6; i++ {
		f := b.AddFile("", 40*platform.MB, 0)
		tasks = append(tasks, b.AddTask("", 1, []batch.FileID{f}))
	}
	st := state(t, b, 2, 90*platform.MB)
	plan, err := New(4).PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	load := map[int]int64{}
	for _, k := range plan.Tasks {
		load[plan.Node[k]] += b.TaskBytes(k)
	}
	for n, v := range load {
		if v > 90*platform.MB {
			t.Fatalf("node %d staged %d B over its 90 MB disk", n, v)
		}
	}
	_ = tasks
}

func TestVertexWeightAblationChangesNothingStructural(t *testing.T) {
	b, err := workload.Image(workload.ImageConfig{NumTasks: 40, Overlap: workload.MediumOverlap, NumStorage: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, computeOnly := range []bool{false, true} {
		s := New(5)
		s.UseComputeWeightsOnly = computeOnly
		st := state(t, b, 3, 0)
		plan, err := s.PlanSubBatch(st, b.AllTasks())
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Tasks) != 40 {
			t.Fatalf("computeOnly=%v planned %d", computeOnly, len(plan.Tasks))
		}
	}
}

func TestGreedySubBatchAblation(t *testing.T) {
	b, err := workload.Sat(workload.SatConfig{NumTasks: 40, Overlap: workload.LowOverlap, NumStorage: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	per := b.TotalUniqueBytes(nil) / 8
	s := New(6)
	s.GreedySubBatch = true
	st := state(t, b, 4, per)
	plan, err := s.PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) == 0 {
		t.Fatal("greedy selection chose nothing")
	}
	if got := b.TotalUniqueBytes(plan.Tasks); got > 4*per {
		t.Fatalf("greedy sub-batch working set %d exceeds aggregate %d", got, 4*per)
	}
}

func TestFullRunUnderPressure(t *testing.T) {
	b, err := workload.Image(workload.ImageConfig{NumTasks: 120, Overlap: workload.HighOverlap, NumStorage: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	per := b.TotalUniqueBytes(nil) / 6
	p := &core.Problem{Batch: b, Platform: platform.XIO(3, 2, per)}
	res, err := core.RunChecked(p, New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.SubBatches < 2 {
		t.Fatalf("expected multiple sub-batches, got %d", res.SubBatches)
	}
	if res.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
}
