package hypergraph

import (
	"fmt"
	"math/rand"
)

// PartitionBINW computes a Bounded Incident Net Weight partition
// (§5.1): the number of parts is not predetermined; instead every
// part's incident net weight — the summed weights of all nets touching
// any of its vertices, including absorbed size-1 net weights — must
// not exceed bound. Parts are produced by recursive bisection
// (balancing incident weight, minimizing cut) until each side fits;
// minimizing the connectivity-1 cost simultaneously keeps the part
// count low, as the paper notes.
//
// A single vertex whose own incident weight exceeds bound is returned
// as a singleton part (the caller's problem guarantees — one task's
// files fit on the cluster — make this a can't-happen guard rather
// than a supported case).
//
// The result maps each vertex to a part id in 0..numParts−1, ordered
// so that part ids are dense.
func PartitionBINW(h *Hypergraph, bound int64, eps float64, seed int64) ([]int, int, error) {
	if bound <= 0 {
		return nil, 0, fmt.Errorf("hypergraph: BINW bound must be positive, got %d", bound)
	}
	part := make([]int, h.NumV)
	if h.NumV == 0 {
		return part, 0, nil
	}
	rng := rand.New(rand.NewSource(seed))
	vid := make([]int32, h.NumV)
	for i := range vid {
		vid[i] = int32(i)
	}
	next := 0
	recurseBINW(h, vid, bound, eps, rng, part, &next)
	return part, next, nil
}

// incidentTotal computes the incident net weight of the whole
// hypergraph treated as one part.
func incidentTotal(h *Hypergraph) int64 {
	var sum int64
	for n := 0; n < h.NumN; n++ {
		sum += h.NWeight[n]
	}
	for v := 0; v < h.NumV; v++ {
		sum += h.ExtraVWeight[v]
	}
	return sum
}

func recurseBINW(h *Hypergraph, vid []int32, bound int64, eps float64, rng *rand.Rand, out []int, next *int) {
	if incidentTotal(h) <= bound || h.NumV == 1 {
		id := *next
		*next++
		for _, v := range vid {
			out[v] = id
		}
		return
	}
	side := multilevelBisect(h, balanceIncident, 0.5, eps, rng, false)
	// Guard against a degenerate bisection leaving one side empty,
	// which would recurse forever: peel off the heaviest vertex.
	n0 := 0
	for _, s := range side {
		if s == 0 {
			n0++
		}
	}
	if n0 == 0 || n0 == h.NumV {
		heaviest := h.sortedByWeightDesc()[0]
		for v := range side {
			side[v] = 1
		}
		side[heaviest] = 0
	}
	h0, vid0 := extractSide(h, vid, side, 0)
	h1, vid1 := extractSide(h, vid, side, 1)
	recurseBINW(h0, vid0, bound, eps, rng, out, next)
	recurseBINW(h1, vid1, bound, eps, rng, out, next)
}
