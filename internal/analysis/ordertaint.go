package analysis

// runOrderTaint is the interprocedural successor to detrange's local
// pattern match: it follows order-tainted values — map iteration,
// channel-receive completion, select, unseeded RNG — through
// assignments, composite literals, returns, and calls (per-function
// summaries over the module call graph), and reports when one reaches
// committed schedule state in a deterministic package: a store through
// a parameter, the receiver, or package-level state, a call into a
// module function that performs such a store, or encoded output.
//
// Sanitizers clear taint: passing a slice through a canonical sort
// (sort.*, slices.Sort*) restores a deterministic order. Suppression
// is source-anchored: //schedlint:allow ordertaint on the source (the
// range statement, receive, …) kills everything derived from it, so a
// justified total-order tie-break needs one annotation next to its
// justification rather than one per downstream sink.
//
// The canonical catch is the cross-function growInitial variant: a
// helper returning the first key of a map iteration has no outer write
// for detrange to see, but its caller committing the returned vertex
// into the partition array is exactly the nondeterminism the contract
// bans.
func runOrderTaint(p *pass) {
	p.eng.taintSummaries()
	for _, n := range p.eng.nodesOf(p.pkg) {
		st := newTaintState(p.eng, n)
		st.pass = p
		st.run()
	}
}
