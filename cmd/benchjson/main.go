// Command benchjson converts `go test -bench` output on stdin into a
// JSON document, so CI can archive benchmark trajectories (per-scheme
// ns/op, allocs/op, simulated makespan) as machine-readable artifacts.
//
// Usage:
//
//	go test -bench=BenchmarkSchedulers -benchmem -benchtime=1x | benchjson -o BENCH_schedulers.json
//
// Non-benchmark lines (goos/goarch headers, PASS, ok) pass through
// untouched to stdout so the human-readable output survives the pipe;
// the goos/goarch/pkg/cpu headers are additionally captured into the
// document's "env" object. Each benchmark line becomes one entry, and
// key=value path segments of sub-benchmark names (plus the trailing
// -GOMAXPROCS suffix) are parsed into "params" so consumers can slice
// the trajectory per scheduler per task count without re-parsing
// names:
//
//	{"name": "BenchmarkSchedulers/IP/tasks=100-8", "iterations": 1,
//	 "params": {"gomaxprocs": "8", "tasks": "100"},
//	 "metrics": {"ns/op": 1.2e8, "B/op": 3.4e6, "allocs/op": 5678, "makespan_s": 2.95}}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one parsed benchmark result line.
type entry struct {
	Name       string             `json:"name"`
	Params     map[string]string  `json:"params,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write the JSON document to this file (default stdout only)")
	flag.Parse()

	entries, env, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	body := map[string]any{"benchmarks": entries}
	if len(env) > 0 {
		body["env"] = env
	}
	doc, err := json.MarshalIndent(body, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// envKeys are the `go test -bench` header lines worth archiving with
// the numbers they contextualize.
var envKeys = map[string]bool{"goos": true, "goarch": true, "pkg": true, "cpu": true}

// parse reads benchmark output from r, echoing every line to echo and
// collecting the parsed results plus the environment headers. A
// benchmark line has the shape
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   10 allocs/op   1.5 makespan_s
//
// i.e. a name starting with "Benchmark", an iteration count, then
// value-unit pairs. Lines that do not parse are passed through only.
func parse(r interface{ Read([]byte) (int, error) }, echo interface {
	Write([]byte) (int, error)
}) ([]entry, map[string]string, error) {
	entries := []entry{}
	env := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if key, val, ok := strings.Cut(line, ": "); ok && envKeys[key] {
			env[key] = val
			continue
		}
		if e, ok := parseLine(line); ok {
			entries = append(entries, e)
		}
	}
	return entries, env, sc.Err()
}

// parseLine parses one benchmark result line; ok=false for any other
// line.
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{Name: fields[0], Params: nameParams(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return entry{}, false
	}
	return e, true
}

// nameParams extracts key=value path segments from a sub-benchmark
// name, plus the trailing -N GOMAXPROCS suffix as "gomaxprocs". Nil
// when the name carries neither.
func nameParams(name string) map[string]string {
	var params map[string]string
	set := func(k, v string) {
		if params == nil {
			params = map[string]string{}
		}
		params[k] = v
	}
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			set("gomaxprocs", name[i+1:])
			name = name[:i]
		}
	}
	for _, seg := range strings.Split(name, "/")[1:] {
		if k, v, ok := strings.Cut(seg, "="); ok && k != "" {
			set(k, v)
		}
	}
	return params
}
