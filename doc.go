// Package repro reproduces "Task Scheduling and File Replication for
// Data-Intensive Jobs with Batch-shared I/O" (Khanna et al., HPDC
// 2006) as a Go library: the 0-1 integer-programming and BiPartition
// (bi-level hypergraph partitioning) batch schedulers, the MinMin and
// JobDataPresent baselines, the coupled storage/compute cluster
// simulator they run on, the SAT and IMAGE workload emulators, and —
// because the original tools are unavailable here — a pure-Go MILP
// solver (lp_solve substitute) and multilevel hypergraph partitioner
// with BINW support (PaToH substitute).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the figure-by-figure reproduction record. The
// benchmark suite in bench_test.go regenerates every figure of the
// paper's evaluation.
package repro
