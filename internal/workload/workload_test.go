package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/batch"
	"repro/internal/platform"
)

func TestSatDefaults(t *testing.T) {
	b, err := Sat(SatConfig{NumTasks: 100, Overlap: HighOverlap, NumStorage: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := b.ComputeStats()
	if st.NumTasks != 100 {
		t.Fatalf("tasks = %d", st.NumTasks)
	}
	if st.MeanFilesPerTask < 7.5 || st.MeanFilesPerTask > 8.5 {
		t.Errorf("high-overlap SAT files/task = %.1f, want ≈8", st.MeanFilesPerTask)
	}
	// Every file is a 50 MB chunk.
	for i := range b.Files {
		if b.Files[i].Size != 50*platform.MB {
			t.Fatalf("file %d size %d", i, b.Files[i].Size)
		}
	}
}

func TestSatOverlapClasses(t *testing.T) {
	get := func(ov Overlap) batch.Stats {
		b, err := Sat(SatConfig{NumTasks: 100, Overlap: ov, NumStorage: 4, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return b.ComputeStats()
	}
	hi, med, lo := get(HighOverlap), get(MediumOverlap), get(LowOverlap)
	if !(hi.Overlap > med.Overlap && med.Overlap > lo.Overlap) {
		t.Fatalf("overlap not ordered: %.2f %.2f %.2f", hi.Overlap, med.Overlap, lo.Overlap)
	}
	if hi.Overlap < 0.70 {
		t.Errorf("high overlap = %.2f, want ≥0.70 (target 0.85)", hi.Overlap)
	}
	if med.Overlap < 0.25 || med.Overlap > 0.55 {
		t.Errorf("medium overlap = %.2f, want ≈0.40", med.Overlap)
	}
	// The paper's "10%" is a pairwise-overlap figure; on the fixed
	// 20-day/1000-file dataset the access-level minimum for 100×14
	// accesses is 1−1000/1400 ≈ 0.29 (see EXPERIMENTS.md).
	if lo.Overlap > 0.35 {
		t.Errorf("low overlap = %.2f, want ≈0.29 (dataset floor)", lo.Overlap)
	}
	// Medium/low-overlap tasks request ~14 files as in the paper.
	if med.MeanFilesPerTask < 13.5 || med.MeanFilesPerTask > 14.5 {
		t.Errorf("medium files/task = %.1f, want ≈14", med.MeanFilesPerTask)
	}
}

func TestImageOverlapClasses(t *testing.T) {
	get := func(ov Overlap) batch.Stats {
		b, err := Image(ImageConfig{NumTasks: 100, Overlap: ov, NumStorage: 4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return b.ComputeStats()
	}
	hi, med, lo := get(HighOverlap), get(MediumOverlap), get(LowOverlap)
	if hi.Overlap < 0.70 {
		t.Errorf("high overlap = %.2f, want ≥0.70", hi.Overlap)
	}
	if med.Overlap < 0.25 || med.Overlap > 0.55 {
		t.Errorf("medium overlap = %.2f", med.Overlap)
	}
	// Paper: 0% overlap for the IMAGE low class. Distinct patients per
	// task ⇒ no sharing at all.
	if lo.Overlap != 0 {
		t.Errorf("low overlap = %.2f, want 0", lo.Overlap)
	}
	if hi.MeanFilesPerTask != 8 {
		t.Errorf("files/task = %.1f, want 8", hi.MeanFilesPerTask)
	}
}

func TestImageFileSizes(t *testing.T) {
	b, err := Image(ImageConfig{NumTasks: 50, Overlap: MediumOverlap, NumStorage: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mri, ct := 0, 0
	for i := range b.Files {
		switch b.Files[i].Size {
		case 4 * platform.MB:
			mri++
		case 64 * platform.MB:
			ct++
		default:
			t.Fatalf("unexpected image size %d", b.Files[i].Size)
		}
	}
	if mri == 0 || ct == 0 {
		t.Errorf("expected both modalities, got %d MRI / %d CT files", mri, ct)
	}
}

func TestHomesWithinStorageCluster(t *testing.T) {
	for _, ns := range []int{1, 3, 4, 8} {
		b, err := Sat(SatConfig{NumTasks: 20, Overlap: HighOverlap, NumStorage: ns, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for i := range b.Files {
			if h := b.Files[i].Home; h < 0 || h >= ns {
				t.Fatalf("file home %d outside %d storage nodes", h, ns)
			}
		}
		b2, err := Image(ImageConfig{NumTasks: 20, Overlap: HighOverlap, NumStorage: ns, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for i := range b2.Files {
			if h := b2.Files[i].Home; h < 0 || h >= ns {
				t.Fatalf("image file home %d outside %d storage nodes", h, ns)
			}
		}
	}
}

func TestSatHilbertSpreadsHomes(t *testing.T) {
	// Declustering must spread a hot-spot query's files over several
	// storage nodes (that is its purpose).
	b, err := Sat(SatConfig{NumTasks: 8, Overlap: HighOverlap, NumStorage: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range b.Tasks {
		homes := map[int]bool{}
		for _, f := range b.Tasks[ti].Files {
			homes[b.Files[f].Home] = true
		}
		if len(homes) < 2 {
			t.Fatalf("task %d: all %d files on one storage node", ti, len(b.Tasks[ti].Files))
		}
	}
}

func TestCompactDropsUnaccessed(t *testing.T) {
	b, err := Sat(SatConfig{NumTasks: 5, Overlap: LowOverlap, NumStorage: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < b.NumFiles(); f++ {
		if len(b.Require(batch.FileID(f))) == 0 {
			t.Fatalf("file %d accessed by no task survived compaction", f)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Image(ImageConfig{NumTasks: 40, Overlap: HighOverlap, NumStorage: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Image(ImageConfig{NumTasks: 40, Overlap: HighOverlap, NumStorage: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFiles() != b.NumFiles() || a.NumTasks() != b.NumTasks() {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Tasks {
		if len(a.Tasks[i].Files) != len(b.Tasks[i].Files) {
			t.Fatal("same seed produced different tasks")
		}
		for j := range a.Tasks[i].Files {
			if a.Tasks[i].Files[j] != b.Tasks[i].Files[j] {
				t.Fatal("same seed produced different file sets")
			}
		}
	}
}

func TestRandomGenerator(t *testing.T) {
	b := Random(1, 30, 50, 5, 3, 10*platform.MB, platform.PaperComputeFactor)
	if b.NumTasks() != 30 || b.NumFiles() != 50 {
		t.Fatalf("shape %d/%d", b.NumTasks(), b.NumFiles())
	}
	for ti := range b.Tasks {
		if len(b.Tasks[ti].Files) != 5 {
			t.Fatalf("task %d has %d files", ti, len(b.Tasks[ti].Files))
		}
	}
}

// TestQuickBatchesValid property-tests both emulators: every batch
// finalizes, every task has ≥1 file, and no task repeats a file.
func TestQuickBatchesValid(t *testing.T) {
	f := func(seed int64, ovRaw uint8) bool {
		ov := Overlap(int(ovRaw) % 3)
		b, err := Sat(SatConfig{NumTasks: 10 + int(seed%40+40)%40, Overlap: ov, NumStorage: 1 + int(seed%4+4)%4, Seed: seed})
		if err != nil {
			return false
		}
		img, err := Image(ImageConfig{NumTasks: 10, Overlap: ov, NumStorage: 2, Seed: seed})
		if err != nil {
			return false
		}
		for _, bb := range []*batch.Batch{b, img} {
			for ti := range bb.Tasks {
				if len(bb.Tasks[ti].Files) == 0 {
					return false
				}
				seen := map[batch.FileID]bool{}
				for _, fid := range bb.Tasks[ti].Files {
					if seen[fid] {
						return false
					}
					seen[fid] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
