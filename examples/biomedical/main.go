// Biomedical image analysis under disk pressure: the paper's IMAGE
// scenario with limited compute-node disks. The batch's working set
// exceeds the aggregate disk cache, so the three-stage pipeline
// splits it into sub-batches, and the §4.3 popularity eviction
// reclaims space between them. The example contrasts BiPartition
// (BINW sub-batch selection) with the MinMin baseline and shows the
// eviction/sub-batch trade-off.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/workload"
)

func main() {
	b, err := workload.Image(workload.ImageConfig{
		NumTasks:   400,
		Overlap:    workload.HighOverlap,
		NumStorage: 4,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := b.ComputeStats()
	working := float64(stats.TotalBytes) / float64(platform.GB)

	// Compute disks sized to hold only ~40% of the working set in
	// aggregate, forcing sub-batching and eviction.
	perNode := int64(working * 0.4 / 4 * float64(platform.GB))
	fmt.Printf("IMAGE batch: %d studies, %.1f GB working set, 4 nodes × %.1f GB disk (%.0f%% of need)\n\n",
		stats.NumTasks, working, float64(perNode)/float64(platform.GB),
		float64(4*perNode)/float64(stats.TotalBytes)*100)

	for _, s := range []core.Scheduler{bipart.New(5), minmin.New(), jdp.New()} {
		p := &core.Problem{Batch: b, Platform: platform.XIO(4, 4, perNode)}
		res, err := core.Run(p, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s batch time %7.1f s   sub-batches %3d   evictions %5d   re-staged %.1f GB\n",
			res.Scheduler, res.Makespan, res.SubBatches, res.Evictions,
			float64(res.RemoteBytes)/float64(platform.GB)-working)
	}
	fmt.Println("\nBiPartition's first-level BINW partition packs tasks that share images into")
	fmt.Println("the same sub-batch, so far fewer cached images are evicted and re-staged.")
}
