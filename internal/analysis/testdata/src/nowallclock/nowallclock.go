// Package nowallclock is a schedlint golden-test fixture for the
// nowallclock check: wall-clock reads and global-rand draws trigger,
// seeded constructors and method calls do not.
package nowallclock

import (
	"math/rand"
	"time"
)

// badWallClock reads the wall clock twice. Two findings.
func badWallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// badGlobalRand draws from the process-global stream. One finding.
func badGlobalRand() int {
	return rand.Intn(10)
}

// goodSeededRand constructs a private seeded stream — the New and
// NewSource constructors are allowed, and Intn here is a method on the
// local *rand.Rand, not the global function.
func goodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// goodTimeArithmetic uses only time values passed in — no clock reads.
func goodTimeArithmetic(deadline time.Time, now time.Time) bool {
	return now.After(deadline)
}

// suppressedClock measures an overhead metric — annotated, no finding.
func suppressedClock() time.Time {
	//schedlint:allow nowallclock fixture: overhead metric only
	return time.Now()
}
