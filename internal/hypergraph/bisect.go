package hypergraph

import (
	"container/heap"
	"math/rand"

	"repro/internal/obs"
)

// balanceMode selects the quantity the bisection balances.
type balanceMode int

const (
	// balanceVertex balances the sum of vertex weights (standard K-way
	// partitioning: computational load balance).
	balanceVertex balanceMode = iota
	// balanceIncident balances the per-vertex incident net weight plus
	// absorbed size-1 weight (the BINW proxy: storage requirement).
	balanceIncident
)

// balanceWeights derives the per-vertex balance weights for a mode.
func balanceWeights(h *Hypergraph, mode balanceMode) []int64 {
	w := make([]int64, h.NumV)
	switch mode {
	case balanceVertex:
		copy(w, h.VWeight)
	case balanceIncident:
		for v := 0; v < h.NumV; v++ {
			s := h.ExtraVWeight[v]
			for _, n := range h.VertexNets(v) {
				s += h.NWeight[n]
			}
			w[v] = s
		}
	}
	return w
}

// bisection holds working state for a 2-way partition of one level.
type bisection struct {
	h      *Hypergraph
	part   []int   // 0 or 1 per vertex
	bw     []int64 // balance weight per vertex
	pw     [2]int64
	cnt    [][2]int32 // per net: pins in part 0 / part 1
	cut    int64
	target [2]int64 // desired part weights
	maxW   [2]int64 // hard caps (target·(1+ε))
}

func newBisection(h *Hypergraph, bw []int64, targetFrac, eps float64) *bisection {
	b := &bisection{h: h, bw: bw}
	var total int64
	for _, w := range bw {
		total += w
	}
	b.target[0] = int64(float64(total) * targetFrac)
	b.target[1] = total - b.target[0]
	b.maxW[0] = int64(float64(b.target[0]) * (1 + eps))
	b.maxW[1] = int64(float64(b.target[1]) * (1 + eps))
	b.part = make([]int, h.NumV)
	b.cnt = make([][2]int32, h.NumN)
	return b
}

// setAll initializes counts and cut from the current b.part.
func (b *bisection) setAll() {
	b.pw = [2]int64{}
	for v := 0; v < b.h.NumV; v++ {
		b.pw[b.part[v]] += b.bw[v]
	}
	b.cut = 0
	for n := 0; n < b.h.NumN; n++ {
		c := [2]int32{}
		for _, v := range b.h.NetPins(n) {
			c[b.part[v]]++
		}
		b.cnt[n] = c
		if c[0] > 0 && c[1] > 0 {
			b.cut += b.h.NWeight[n]
		}
	}
}

// gain returns the cut reduction of moving v to the other side.
func (b *bisection) gain(v int) int64 {
	p := b.part[v]
	var g int64
	for _, n := range b.h.VertexNets(v) {
		c := b.cnt[n]
		if c[p] == 1 && c[1-p] > 0 {
			g += b.h.NWeight[n]
		} else if c[1-p] == 0 {
			g -= b.h.NWeight[n]
		}
	}
	return g
}

// move flips v to the other side, updating counts, weights and cut.
func (b *bisection) move(v int) {
	p := b.part[v]
	q := 1 - p
	for _, n := range b.h.VertexNets(v) {
		c := &b.cnt[n]
		wasCut := c[0] > 0 && c[1] > 0
		c[p]--
		c[q]++
		isCut := c[0] > 0 && c[1] > 0
		if wasCut && !isCut {
			b.cut -= b.h.NWeight[n]
		} else if !wasCut && isCut {
			b.cut += b.h.NWeight[n]
		}
	}
	b.pw[p] -= b.bw[v]
	b.pw[q] += b.bw[v]
	b.part[v] = q
}

// feasibleMove reports whether moving v keeps the destination under
// its cap.
func (b *bisection) feasibleMove(v int) bool {
	q := 1 - b.part[v]
	return b.pw[q]+b.bw[v] <= b.maxW[q]
}

// growInitial produces an initial bisection by greedy hypergraph
// growing from a random seed: part 0 grows by strongest connectivity
// until it reaches its target weight.
func (b *bisection) growInitial(rng *rand.Rand) {
	h := b.h
	for v := range b.part {
		b.part[v] = 1
	}
	inZero := make([]bool, h.NumV)
	var w0 int64
	gain := make([]float64, h.NumV)
	seedOrder := h.shuffledVertices(rng)
	si := 0
	// Priority growth: repeatedly add the frontier vertex with the
	// highest connectivity to part 0, seeding with random vertices
	// when the frontier dries up.
	frontier := map[int32]float64{}
	addNeighbors := func(v int) {
		for _, n := range h.VertexNets(v) {
			pins := h.NetPins(int(n))
			s := float64(h.NWeight[n]) / float64(max(1, len(pins)-1))
			for _, u := range pins {
				if !inZero[u] {
					frontier[u] += s
					gain[u] += s
				}
			}
		}
	}
	for w0 < b.target[0] {
		var pick int32 = -1
		bestG := -1.0
		// Ties broken toward the smaller vertex id: map iteration order
		// is randomized, and gain ties are common (equal-weight nets),
		// so an order-dependent pick would make the whole partition
		// nondeterministic.
		//schedlint:allow detrange,ordertaint argmax with total-order tie-break (u < pick) is iteration-order independent
		for u, g := range frontier {
			if g > bestG || (g == bestG && (pick < 0 || u < pick)) {
				pick, bestG = u, g
			}
		}
		if pick < 0 {
			// Seed from the random order.
			for si < len(seedOrder) && inZero[seedOrder[si]] {
				si++
			}
			if si >= len(seedOrder) {
				break
			}
			pick = seedOrder[si]
		}
		if w0+b.bw[pick] > b.maxW[0] && w0 > 0 {
			delete(frontier, pick)
			if len(frontier) == 0 {
				break
			}
			continue
		}
		inZero[pick] = true
		delete(frontier, pick)
		b.part[pick] = 0
		w0 += b.bw[pick]
		addNeighbors(int(pick))
	}
	b.setAll()
}

// fmEntry is a heap element with a cached gain.
type fmEntry struct {
	v    int32
	gain int64
}

type fmHeap []fmEntry

func (h fmHeap) Len() int            { return len(h) }
func (h fmHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h fmHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fmHeap) Push(x interface{}) { *h = append(*h, x.(fmEntry)) }
func (h *fmHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refineFM runs Fiduccia-Mattheyses passes: each pass tentatively
// moves every vertex at most once in best-gain order (respecting the
// balance caps), tracks the best prefix, and rolls back past it.
// Passes repeat until a pass yields no improvement.
func (b *bisection) refineFM(maxPasses int) {
	n := b.h.NumV
	locked := make([]bool, n)
	moves := make([]int32, 0, n)
	for pass := 0; pass < maxPasses; pass++ {
		for i := range locked {
			locked[i] = false
		}
		moves = moves[:0]
		h := &fmHeap{}
		for v := 0; v < n; v++ {
			heap.Push(h, fmEntry{v: int32(v), gain: b.gain(v)})
		}
		startCut := b.cut
		bestCut := b.cut
		bestLen := 0
		for h.Len() > 0 {
			e := heap.Pop(h).(fmEntry)
			if locked[e.v] {
				continue
			}
			g := b.gain(int(e.v))
			if g != e.gain {
				heap.Push(h, fmEntry{v: e.v, gain: g})
				continue
			}
			if !b.feasibleMove(int(e.v)) {
				// Cannot move now; it may become feasible later in the
				// pass, but for simplicity lock it out of this pass.
				locked[e.v] = true
				continue
			}
			b.move(int(e.v))
			locked[e.v] = true
			moves = append(moves, e.v)
			if b.cut < bestCut {
				bestCut = b.cut
				bestLen = len(moves)
			}
			// Neighbour gains changed; they will lazily re-validate on
			// pop. Push fresh entries for unlocked neighbours.
			for _, net := range b.h.VertexNets(int(e.v)) {
				for _, u := range b.h.NetPins(int(net)) {
					if !locked[u] {
						heap.Push(h, fmEntry{v: u, gain: b.gain(int(u))})
					}
				}
			}
		}
		// Roll back past the best prefix.
		for i := len(moves) - 1; i >= bestLen; i-- {
			b.move(int(moves[i]))
		}
		if bestCut >= startCut {
			break
		}
	}
}

// multilevelBisect partitions h into two sides with part-0 balance
// target targetFrac (of total balance weight) and imbalance tolerance
// eps, minimizing cut net weight. Multiple initial-partition trials
// keep the best result.
func multilevelBisect(h *Hypergraph, mode balanceMode, targetFrac, eps float64, rng *rand.Rand, noRefine bool, tr obs.Tracer) []int {
	// Concurrent recursion branches each allocate their own track so
	// their passes do not interleave on one trace row. Observability
	// only: the partition never depends on the tracer.
	traceOn := tr.Enabled()
	tid := 0
	var endSpan obs.EndFunc = func(...obs.Arg) {}
	if traceOn {
		tid = tr.AllocTrack(obs.DomainReal, "bisect")
		endSpan = tr.Span(tid, "partition", "multilevel bisect",
			obs.A("vertices", h.NumV), obs.A("nets", h.NumN))
	}
	const coarsenTarget = 80
	levels, maps := coarsenTo(h, coarsenTarget, rng)
	coarsest := levels[len(levels)-1]
	if traceOn {
		tr.Instant(tid, "partition", "coarsened",
			obs.A("levels", len(levels)), obs.A("coarse_vertices", coarsest.NumV))
	}

	// Initial partitioning on the coarsest level: several GHG trials,
	// keep the lowest feasible cut.
	bw := balanceWeights(coarsest, mode)
	var best []int
	var bestCut int64 = -1
	trials := 6
	for trial := 0; trial < trials; trial++ {
		b := newBisection(coarsest, bw, targetFrac, eps)
		b.growInitial(rng)
		if !noRefine {
			b.refineFM(4)
		}
		if bestCut < 0 || b.cut < bestCut {
			bestCut = b.cut
			best = append(best[:0:0], b.part...)
		}
	}
	if traceOn {
		tr.Instant(tid, "partition", "initial partition",
			obs.A("trials", trials), obs.A("cut", bestCut))
	}

	// Uncoarsen with FM refinement at each level.
	part := best
	finalCut := bestCut
	for lev := len(levels) - 2; lev >= 0; lev-- {
		fine := levels[lev]
		m := maps[lev]
		finePart := make([]int, fine.NumV)
		for v := 0; v < fine.NumV; v++ {
			finePart[v] = part[m[v]]
		}
		b := newBisection(fine, balanceWeights(fine, mode), targetFrac, eps)
		copy(b.part, finePart)
		b.setAll()
		if !noRefine {
			b.refineFM(3)
		}
		part = b.part
		finalCut = b.cut
		if traceOn {
			tr.Instant(tid, "partition", "refine level",
				obs.A("level", lev), obs.A("vertices", fine.NumV), obs.A("cut", b.cut))
		}
	}
	endSpan(obs.A("cut", finalCut))
	return part
}
