// Package explain answers provenance queries over a decision journal
// (internal/obs/journal): why a task ran where it did, why a file was
// replicated to or evicted from a node, and which chain of events
// bound the makespan. It is the engine behind cmd/schedexplain and the
// introspect server's query endpoints.
package explain

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/obs/journal"
)

// timeEps is the slack used when chaining event boundaries: journal
// times are sums of float64 durations, so "ends when the next starts"
// holds only up to accumulated rounding.
const timeEps = 1e-6

// Journal is an indexed event log ready for queries.
type Journal struct {
	Events []journal.Event

	placeByTask map[int][]int // event indices, emission order
	execByTask  map[int][]int
	stageByTask map[int][]int
	faultByTask map[int][]int
	specByTask  map[int][]int
	fileEvents  map[int][]int // replicate/stage/evict/fault touching a file
}

// Load reads a JSONL journal and indexes it.
func Load(r io.Reader) (*Journal, error) {
	evs, err := journal.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	return FromEvents(evs), nil
}

// FromEvents indexes an in-memory event slice (shared, not copied).
func FromEvents(evs []journal.Event) *Journal {
	j := &Journal{
		Events:      evs,
		placeByTask: map[int][]int{},
		execByTask:  map[int][]int{},
		stageByTask: map[int][]int{},
		faultByTask: map[int][]int{},
		specByTask:  map[int][]int{},
		fileEvents:  map[int][]int{},
	}
	for i, ev := range evs {
		switch {
		case ev.Place != nil:
			j.placeByTask[ev.Place.Task] = append(j.placeByTask[ev.Place.Task], i)
		case ev.Exec != nil:
			j.execByTask[ev.Exec.Task] = append(j.execByTask[ev.Exec.Task], i)
		case ev.Stage != nil:
			if ev.Stage.Task >= 0 {
				j.stageByTask[ev.Stage.Task] = append(j.stageByTask[ev.Stage.Task], i)
			}
			j.fileEvents[ev.Stage.File] = append(j.fileEvents[ev.Stage.File], i)
		case ev.Replicate != nil:
			j.fileEvents[ev.Replicate.File] = append(j.fileEvents[ev.Replicate.File], i)
		case ev.Evict != nil:
			j.fileEvents[ev.Evict.File] = append(j.fileEvents[ev.Evict.File], i)
		case ev.Fault != nil:
			if ev.Fault.Task >= 0 {
				j.faultByTask[ev.Fault.Task] = append(j.faultByTask[ev.Fault.Task], i)
			}
			if ev.Fault.File >= 0 {
				j.fileEvents[ev.Fault.File] = append(j.fileEvents[ev.Fault.File], i)
			}
		case ev.Spec != nil:
			j.specByTask[ev.Spec.Task] = append(j.specByTask[ev.Spec.Task], i)
		}
	}
	return j
}

// Tasks returns the sorted ids of every task the journal placed or
// executed.
func (j *Journal) Tasks() []int {
	set := map[int]bool{}
	for t := range j.placeByTask {
		set[t] = true
	}
	for t := range j.execByTask {
		set[t] = true
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Files returns the sorted ids of every file the journal mentions.
func (j *Journal) Files() []int {
	out := make([]int, 0, len(j.fileEvents))
	for f := range j.fileEvents {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// Placement is the full decision record of one task: every placement
// decision (re-queued tasks have several), the input transfers made on
// its behalf, its committed executions, and the faults that hit it.
type Placement struct {
	Task   int             `json:"task"`
	Places []journal.Event `json:"places"`
	Stages []journal.Event `json:"stages,omitempty"`
	Execs  []journal.Event `json:"execs,omitempty"`
	Faults []journal.Event `json:"faults,omitempty"`
	// Specs is the task's speculation record: launch, first-finisher
	// decision and loser cancellation, answering "why was this task
	// speculated (and did the twin pay off)?".
	Specs []journal.Event `json:"specs,omitempty"`
}

// Placement answers "why did task t run where it did?". Returns nil
// when the journal never mentions the task.
func (j *Journal) Placement(t int) *Placement {
	p := &Placement{
		Task:   t,
		Places: j.pick(j.placeByTask[t]),
		Stages: j.pick(j.stageByTask[t]),
		Execs:  j.pick(j.execByTask[t]),
		Faults: j.pick(j.faultByTask[t]),
		Specs:  j.pick(j.specByTask[t]),
	}
	if len(p.Places) == 0 && len(p.Execs) == 0 && len(p.Faults) == 0 && len(p.Specs) == 0 {
		return nil
	}
	return p
}

// FileHistory is every decision that touched one file: planned
// replications, committed transfers, evictions and transfer faults,
// optionally restricted to one destination node.
type FileHistory struct {
	File int `json:"file"`
	// Node restricts the history to one destination (-1 = all nodes).
	Node   int             `json:"node"`
	Events []journal.Event `json:"events"`
}

// FileHistory answers "why was file f replicated to / evicted from
// node n?" (n = -1 for all nodes). Returns nil when the journal never
// mentions the file.
func (j *Journal) FileHistory(f, node int) *FileHistory {
	idx := j.fileEvents[f]
	if len(idx) == 0 {
		return nil
	}
	h := &FileHistory{File: f, Node: node}
	for _, i := range idx {
		ev := j.Events[i]
		if node >= 0 && eventNode(ev) != node {
			continue
		}
		h.Events = append(h.Events, ev)
	}
	if len(h.Events) == 0 {
		return nil
	}
	return h
}

// eventNode is the destination/owner node of a file-touching event.
func eventNode(ev journal.Event) int {
	switch {
	case ev.Stage != nil:
		return ev.Stage.Dest
	case ev.Replicate != nil:
		return ev.Replicate.Dest
	case ev.Evict != nil:
		return ev.Evict.Node
	case ev.Fault != nil:
		return ev.Fault.Node
	}
	return -1
}

// PathStep is one link of the critical path: an event plus why it is
// bound to its predecessor.
type PathStep struct {
	Event journal.Event `json:"event"`
	// Why states the dependency on the previous (earlier) step, empty
	// for the chain's first step.
	Why string `json:"why,omitempty"`
}

// CriticalPath is the back-to-front dependency chain ending at the
// exec that finishes last.
type CriticalPath struct {
	Makespan float64 `json:"makespan"`
	// Steps are in chronological order; the last step ends at Makespan.
	Steps []PathStep `json:"steps"`
}

// CriticalPath answers "what bound this makespan?". Starting from the
// last-finishing execution it walks backwards: each step is bound
// either by an input transfer arriving just before it started or by
// the previous occupation of the same node. Returns nil for a journal
// with no executions.
func (j *Journal) CriticalPath() *CriticalPath {
	type span struct {
		idx        int
		start, end float64
		node       int
	}
	var execs, stages []span
	last := span{idx: -1}
	for i, ev := range j.Events {
		switch {
		case ev.Exec != nil:
			s := span{idx: i, start: ev.Exec.Start, end: ev.Exec.End, node: ev.Exec.Node}
			execs = append(execs, s)
			if s.end > last.end {
				last = s
			}
		case ev.Stage != nil:
			stages = append(stages, span{idx: i, start: ev.Stage.Start, end: ev.Stage.End, node: ev.Stage.Dest})
		}
	}
	if last.idx < 0 {
		return nil
	}
	cp := &CriticalPath{Makespan: last.end}
	cur := last
	why := ""
	for steps := 0; steps < len(execs)+len(stages)+1; steps++ {
		cp.Steps = append(cp.Steps, PathStep{Event: j.Events[cur.idx], Why: why})
		// The binding predecessor ends latest among events that must
		// precede cur: its input transfers (for an exec) and any earlier
		// occupation of the same resource.
		best := span{idx: -1, end: math.Inf(-1)}
		bestWhy := ""
		consider := func(s span, w string) {
			if s.idx == cur.idx || s.end > cur.start+timeEps {
				return
			}
			if s.end > best.end || (s.end == best.end && s.idx < best.idx) {
				best, bestWhy = s, w
			}
		}
		if ev := j.Events[cur.idx]; ev.Exec != nil {
			inputs := map[int]bool{}
			for _, f := range ev.Exec.Inputs {
				inputs[f] = true
			}
			for _, s := range stages {
				st := j.Events[s.idx].Stage
				if s.node == cur.node && inputs[st.File] {
					consider(s, fmt.Sprintf("task %d waited for input file %d", ev.Exec.Task, st.File))
				}
			}
		}
		for _, s := range execs {
			if s.node == cur.node {
				consider(s, fmt.Sprintf("node %d was busy executing task %d", cur.node, j.Events[s.idx].Exec.Task))
			}
		}
		for _, s := range stages {
			if s.node == cur.node {
				consider(s, fmt.Sprintf("node %d's port was busy receiving file %d", cur.node, j.Events[s.idx].Stage.File))
			}
		}
		// Only a predecessor that actually abuts cur binds it; a gap
		// means cur was released by its round's start, not by load.
		if best.idx < 0 || best.end < cur.start-timeEps {
			break
		}
		cur, why = best, bestWhy
	}
	// Walked back-to-front; present chronologically.
	for l, r := 0, len(cp.Steps)-1; l < r; l, r = l+1, r-1 {
		cp.Steps[l], cp.Steps[r] = cp.Steps[r], cp.Steps[l]
	}
	// Why describes the link to the previous step, so shift it forward.
	for i := len(cp.Steps) - 1; i > 0; i-- {
		cp.Steps[i].Why = cp.Steps[i-1].Why
	}
	if len(cp.Steps) > 0 {
		cp.Steps[0].Why = ""
	}
	return cp
}

// pick materializes an index list into events.
func (j *Journal) pick(idx []int) []journal.Event {
	if len(idx) == 0 {
		return nil
	}
	out := make([]journal.Event, len(idx))
	for i, k := range idx {
		out[i] = j.Events[k]
	}
	return out
}

// ---- text rendering ----

// Text renders the placement record for terminals.
func (p *Placement) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "task %d\n", p.Task)
	for _, ev := range p.Places {
		pl := ev.Place
		fmt.Fprintf(&b, "  placed on node %d at t=%.3f (round %d) by %s", pl.Node, ev.T, ev.Round, pl.Policy)
		if pl.Score != 0 {
			fmt.Fprintf(&b, ", score %.4g", pl.Score)
		}
		b.WriteString("\n")
		if pl.Reason != "" {
			fmt.Fprintf(&b, "    because: %s\n", pl.Reason)
		}
		for _, c := range pl.Candidates {
			marker := " "
			if c.Node == pl.Node {
				marker = "*"
			}
			fits := "fits"
			if !c.Fits {
				fits = "no fit"
			}
			fmt.Fprintf(&b, "    %s node %d: score %.4g (%s)\n", marker, c.Node, c.Score, fits)
		}
	}
	for _, ev := range p.Stages {
		st := ev.Stage
		fmt.Fprintf(&b, "  input file %d → node %d via %s from %s [%.3f, %.3f)%s\n",
			st.File, st.Dest, st.Kind, sourceDesc(st.Src, st.Home), st.Start, st.End, causeSuffix(st))
		for _, a := range st.Alternatives {
			marker := " "
			if a.Src == st.Src {
				marker = "*"
			}
			fmt.Fprintf(&b, "    %s source %s: expected completion %.4g\n", marker, sourceDesc(a.Src, st.Home), a.TCT)
		}
	}
	for _, ev := range p.Execs {
		ex := ev.Exec
		fmt.Fprintf(&b, "  executed on node %d [%.3f, %.3f)\n", ex.Node, ex.Start, ex.End)
	}
	for _, ev := range p.Faults {
		fmt.Fprintf(&b, "  fault at t=%.3f: %s\n", ev.T, faultDesc(ev.Fault))
	}
	for _, ev := range p.Specs {
		sp := ev.Spec
		switch ev.Kind {
		case journal.KindSpecLaunch:
			fmt.Fprintf(&b, "  speculated at t=%.3f: twin forked on node %d (primary on node %d, policy %s, threshold %.3fs)\n",
				ev.T, sp.Twin, sp.Node, sp.Policy, sp.Threshold)
			if sp.Reason != "" {
				fmt.Fprintf(&b, "    because: %s\n", sp.Reason)
			}
			for _, c := range sp.Candidates {
				marker := " "
				if c.Node == sp.Twin {
					marker = "*"
				}
				fits := "fits"
				if !c.Fits {
					fits = "no fit"
				}
				fmt.Fprintf(&b, "    %s twin host %d: projected end %.4g (%s)\n", marker, c.Node, c.Score, fits)
			}
		case journal.KindSpecWin:
			fmt.Fprintf(&b, "  spec race decided at t=%.3f: %s wins (primary end %s, twin end %s)\n",
				ev.T, sp.Winner, specEnd(sp.PrimaryEnd), specEnd(sp.TwinEnd))
			if sp.Reason != "" {
				fmt.Fprintf(&b, "    because: %s\n", sp.Reason)
			}
		case journal.KindSpecCancel:
			fmt.Fprintf(&b, "  spec loser cancelled at t=%.3f: %s attempt cancelled, %.3fs of port time burnt\n",
				ev.T, specLoser(sp.Winner), sp.WastedS)
		}
	}
	return b.String()
}

// specEnd renders an attempt's projected finish (−1 = crash-killed).
func specEnd(t float64) string {
	if t < 0 {
		return "never (crashed)"
	}
	return fmt.Sprintf("%.3f", t)
}

// specLoser names the cancelled side given the race winner.
func specLoser(winner string) string {
	switch winner {
	case "primary":
		return "twin"
	case "twin":
		return "primary"
	}
	return "both"
}

// Text renders the file history for terminals.
func (h *FileHistory) Text() string {
	var b strings.Builder
	if h.Node >= 0 {
		fmt.Fprintf(&b, "file %d on node %d\n", h.File, h.Node)
	} else {
		fmt.Fprintf(&b, "file %d\n", h.File)
	}
	for _, ev := range h.Events {
		switch {
		case ev.Replicate != nil:
			r := ev.Replicate
			fmt.Fprintf(&b, "  t=%.3f replication planned → node %d from %s by %s", ev.T, r.Dest, sourceDesc(r.Src, -1), r.Policy)
			if r.Threshold > 0 {
				fmt.Fprintf(&b, " (popularity %d > threshold %d)", r.Popularity, r.Threshold)
			}
			b.WriteString("\n")
			if r.Reason != "" {
				fmt.Fprintf(&b, "    because: %s\n", r.Reason)
			}
		case ev.Stage != nil:
			st := ev.Stage
			fmt.Fprintf(&b, "  t=%.3f staged → node %d via %s from %s [%.3f, %.3f)%s\n",
				ev.T, st.Dest, st.Kind, sourceDesc(st.Src, st.Home), st.Start, st.End, causeSuffix(st))
		case ev.Evict != nil:
			e := ev.Evict
			fmt.Fprintf(&b, "  t=%.3f evicted from node %d by %s (score %.4g, %d bytes)\n",
				ev.T, e.Node, e.Policy, e.Score, e.Bytes)
		case ev.Fault != nil:
			fmt.Fprintf(&b, "  t=%.3f fault: %s\n", ev.T, faultDesc(ev.Fault))
		}
	}
	return b.String()
}

// Text renders the critical path for terminals.
func (cp *CriticalPath) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.3f, critical path of %d step(s):\n", cp.Makespan, len(cp.Steps))
	for _, s := range cp.Steps {
		switch ev := s.Event; {
		case ev.Exec != nil:
			fmt.Fprintf(&b, "  [%.3f, %.3f) exec task %d on node %d\n", ev.Exec.Start, ev.Exec.End, ev.Exec.Task, ev.Exec.Node)
		case ev.Stage != nil:
			fmt.Fprintf(&b, "  [%.3f, %.3f) stage file %d → node %d (%s)\n",
				ev.Stage.Start, ev.Stage.End, ev.Stage.File, ev.Stage.Dest, ev.Stage.Kind)
		}
		if s.Why != "" {
			fmt.Fprintf(&b, "      ← %s\n", s.Why)
		}
	}
	return b.String()
}

func sourceDesc(src, home int) string {
	if src < 0 {
		if home >= 0 {
			return fmt.Sprintf("storage home %d", home)
		}
		return "storage home"
	}
	return fmt.Sprintf("replica on node %d", src)
}

func causeSuffix(st *journal.Stage) string {
	switch st.Cause {
	case "prestage":
		return " (pre-staged)"
	case "retry":
		return fmt.Sprintf(" (retry, attempt %d)", st.Attempt)
	case "spec":
		return " (for speculative twin)"
	}
	return ""
}

func faultDesc(f *journal.Fault) string {
	var parts []string
	parts = append(parts, f.Class)
	if f.Node >= 0 {
		parts = append(parts, fmt.Sprintf("node %d", f.Node))
	}
	if f.Task >= 0 {
		parts = append(parts, fmt.Sprintf("task %d", f.Task))
	}
	if f.File >= 0 {
		parts = append(parts, fmt.Sprintf("file %d", f.File))
	}
	if f.Attempt > 0 {
		parts = append(parts, fmt.Sprintf("attempt %d", f.Attempt))
	}
	if f.Factor > 0 {
		parts = append(parts, fmt.Sprintf("factor %.2f", f.Factor))
	}
	s := strings.Join(parts, ", ")
	if f.Detail != "" {
		s += " — " + f.Detail
	}
	return s
}
