package core

import (
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/gantt"
)

// Result aggregates one full batch run: the three-stage pipeline
// applied repeatedly until every task has executed.
type Result struct {
	Scheduler string
	// Makespan is the total simulated batch execution time in seconds
	// (sum of sub-batch makespans; sub-batches run back to back).
	Makespan float64
	// SchedulingTime is the real wall-clock time the scheduler spent
	// planning (the paper's scheduling overhead; Figure 6(b) reports
	// it per task).
	SchedulingTime time.Duration
	SubBatches     int
	TaskCount      int

	RemoteTransfers  int
	RemoteBytes      int64
	ReplicaTransfers int
	ReplicaBytes     int64
	Evictions        int

	StorageBusy float64
	ComputeBusy float64
}

// SchedulingMSPerTask returns the paper's Figure 6(b) metric.
func (r *Result) SchedulingMSPerTask() float64 {
	if r.TaskCount == 0 {
		return 0
	}
	return float64(r.SchedulingTime.Milliseconds()) / float64(r.TaskCount)
}

// Run executes the complete three-stage pipeline of the paper: the
// scheduler repeatedly selects and maps a sub-batch of the pending
// tasks (stages 1–2), the §6 runtime stage executes it on the
// simulated platform (stage 3), and the scheduler's eviction policy
// frees compute-cluster disk before the next round. Run returns the
// accumulated result once every task has executed.
func Run(p *Problem, s Scheduler) (*Result, error) {
	st, err := NewState(p)
	if err != nil {
		return nil, err
	}
	return RunFrom(st, s, p.Batch.AllTasks())
}

// RunChecked is Run with the gantt schedule validator enabled: every
// sub-batch's committed schedule is re-checked post hoc (no port
// reservation overlap, disk capacity never exceeded, every input file
// staged before its task starts) and any violation aborts the run with
// an error naming it. Tests use this so that scheduler bugs surface as
// invariant violations instead of silently wrong makespans; it costs
// one event record per transfer/task, so production paths stick to
// Run.
func RunChecked(p *Problem, s Scheduler) (*Result, error) {
	st, err := NewState(p)
	if err != nil {
		return nil, err
	}
	return RunFromChecked(st, s, p.Batch.AllTasks())
}

// RunFrom is Run starting from an existing cluster state and an
// explicit pending-task set, allowing callers to chain batches over a
// warm disk cache.
func RunFrom(st *State, s Scheduler, pending []batch.TaskID) (*Result, error) {
	return runFrom(st, s, pending, false)
}

// RunFromChecked is RunFrom with the gantt schedule validator enabled.
func RunFromChecked(st *State, s Scheduler, pending []batch.TaskID) (*Result, error) {
	return runFrom(st, s, pending, true)
}

func runFrom(st *State, s Scheduler, pending []batch.TaskID, checked bool) (*Result, error) {
	res := &Result{Scheduler: s.Name(), TaskCount: len(pending)}
	pendingSet := make(map[batch.TaskID]bool, len(pending))
	for _, t := range pending {
		pendingSet[t] = true
	}
	for len(pending) > 0 {
		//schedlint:allow nowallclock measures real scheduling overhead (Fig 6(b) metric); never feeds placement decisions
		t0 := time.Now()
		plan, err := s.PlanSubBatch(st, pending)
		res.SchedulingTime += time.Since(t0) //schedlint:allow nowallclock overhead metric only
		if err != nil {
			return nil, fmt.Errorf("core: %s failed to plan a sub-batch with %d tasks pending: %w", s.Name(), len(pending), err)
		}
		if plan == nil || len(plan.Tasks) == 0 {
			return nil, fmt.Errorf("core: %s returned an empty sub-batch with %d tasks pending", s.Name(), len(pending))
		}
		for _, t := range plan.Tasks {
			if !pendingSet[t] {
				return nil, fmt.Errorf("core: %s planned task %d which is not pending", s.Name(), t)
			}
		}
		var stats *ExecStats
		if checked {
			var sched *gantt.Schedule
			stats, sched, err = ExecuteTraced(st, plan)
			if err == nil {
				err = sched.Err()
			}
		} else {
			stats, err = Execute(st, plan)
		}
		if err != nil {
			return nil, fmt.Errorf("core: executing %s sub-batch %d: %w", s.Name(), res.SubBatches, err)
		}
		res.SubBatches++
		res.Makespan += stats.Makespan
		res.RemoteTransfers += stats.RemoteTransfers
		res.RemoteBytes += stats.RemoteBytes
		res.ReplicaTransfers += stats.ReplicaTransfers
		res.ReplicaBytes += stats.ReplicaBytes
		res.StorageBusy += stats.StorageBusy
		res.ComputeBusy += stats.ComputeBusy

		for _, t := range plan.Tasks {
			delete(pendingSet, t)
		}
		pending = pending[:0]
		for t := range pendingSet {
			pending = append(pending, t)
		}
		pending = batch.SortedCopy(pending)

		if len(pending) > 0 {
			t0 = time.Now() //schedlint:allow nowallclock overhead metric only
			s.Evict(st, pending)
			res.SchedulingTime += time.Since(t0) //schedlint:allow nowallclock overhead metric only
		}
	}
	res.Evictions = st.Evictions
	return res, nil
}
