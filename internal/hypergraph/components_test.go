package hypergraph

import "testing"

func TestComponents(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 8; i++ {
		b.AddVertex(1)
	}
	// {0,2,4} via two nets, {1,3} via one, {5} and {7} isolated, {6}
	// only in a size-1 net (connects nothing).
	b.AddNet(1, []int{0, 2})
	b.AddNet(1, []int{2, 4})
	b.AddNet(1, []int{1, 3})
	b.AddNet(1, []int{6})
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := h.Components()
	want := [][]int32{{0, 2, 4}, {1, 3}, {5}, {6}, {7}}
	if len(got) != len(want) {
		t.Fatalf("got %d components %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestComponentsSingleBlob(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 100; i++ {
		b.AddVertex(1)
	}
	for i := 0; i < 99; i++ {
		b.AddNet(1, []int{i, i + 1})
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c := h.Components(); len(c) != 1 || len(c[0]) != 100 {
		t.Fatalf("chain should be one 100-vertex component, got %d components", len(c))
	}
}
