package gantt

import (
	"strings"
	"testing"
)

// hasViolation asserts exactly one violation matching each substring.
func assertViolations(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("expected %d violation(s), got %d: %v", len(want), len(got), got)
	}
	for i, w := range want {
		if !strings.Contains(got[i], w) {
			t.Errorf("violation %d = %q, want substring %q", i, got[i], w)
		}
	}
}

func TestValidateCleanSchedule(t *testing.T) {
	storage := NewTimeline()
	compute := NewTimeline()
	storage.Reserve(0, 5, 1)
	compute.Reserve(0, 5, 1)  // transfer of file 7
	compute.Reserve(5, 10, 2) // execution
	s := &Schedule{
		Storage:  []*Timeline{storage},
		Compute:  []*Timeline{compute},
		Stages:   []StageEvent{{File: 7, Node: 0, Avail: 5, Size: 100}},
		Tasks:    []TaskEvent{{Task: 0, Node: 0, Start: 5, End: 15, Inputs: []int{7}}},
		DiskCap:  []int64{1000},
		InitUsed: []int64{0},
		InitHeld: [][]int{nil},
	}
	if v := s.Validate(); len(v) != 0 {
		t.Fatalf("clean schedule reported violations: %v", v)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err() on clean schedule: %v", err)
	}
}

func TestValidateDetectsPortOverlap(t *testing.T) {
	tl := NewTimelineFromIntervals([]Interval{{Start: 0, End: 5}, {Start: 4, End: 8}})
	s := &Schedule{Compute: []*Timeline{tl}}
	assertViolations(t, s.Validate(), "reservations overlap")
	if err := s.Err(); err == nil {
		t.Fatal("Err() returned nil for overlapping schedule")
	}
}

func TestValidateDetectsOutOfOrderAndNegative(t *testing.T) {
	tl := NewTimelineFromIntervals([]Interval{{Start: 6, End: 8}, {Start: 0, End: 5}})
	s := &Schedule{Storage: []*Timeline{tl}}
	got := s.Validate()
	if len(got) == 0 || !strings.Contains(got[0], "out of order") {
		t.Fatalf("expected out-of-order violation, got %v", got)
	}

	tl2 := NewTimelineFromIntervals([]Interval{{Start: 3, End: 1}})
	s2 := &Schedule{Storage: []*Timeline{tl2}}
	assertViolations(t, s2.Validate(), "negative duration")
}

func TestValidateDetectsDiskOverCapacity(t *testing.T) {
	s := &Schedule{
		Compute:  []*Timeline{NewTimeline()},
		Stages:   []StageEvent{{File: 1, Node: 0, Avail: 1, Size: 600}, {File: 2, Node: 0, Avail: 2, Size: 500}},
		DiskCap:  []int64{1000},
		InitUsed: []int64{0},
	}
	assertViolations(t, s.Validate(), "disk over capacity")

	// Unlimited disk (cap <= 0) never violates.
	s.DiskCap[0] = 0
	if v := s.Validate(); len(v) != 0 {
		t.Fatalf("unlimited disk flagged: %v", v)
	}
}

func TestValidateCountsInitialUsage(t *testing.T) {
	s := &Schedule{
		Compute:  []*Timeline{NewTimeline()},
		Stages:   []StageEvent{{File: 1, Node: 0, Avail: 1, Size: 600}},
		DiskCap:  []int64{1000},
		InitUsed: []int64{500},
	}
	assertViolations(t, s.Validate(), "disk over capacity")
}

func TestValidateDetectsMissingAndLateInputs(t *testing.T) {
	s := &Schedule{
		Compute:  []*Timeline{NewTimeline()},
		Stages:   []StageEvent{{File: 2, Node: 0, Avail: 9, Size: 1}},
		Tasks:    []TaskEvent{{Task: 0, Node: 0, Start: 3, End: 4, Inputs: []int{1, 2}}},
		DiskCap:  []int64{0},
		InitUsed: []int64{0},
		InitHeld: [][]int{nil},
	}
	assertViolations(t, s.Validate(),
		"without input file 1 ever staged",
		"input file 2 only arrives at 9")

	// Initially-held files are available from time 0.
	s.InitHeld[0] = []int{1}
	s.Stages[0].Avail = 3
	if v := s.Validate(); len(v) != 0 {
		t.Fatalf("expected clean after fixes, got %v", v)
	}
}

func TestValidateDetectsDoubleStaging(t *testing.T) {
	s := &Schedule{
		Compute:  []*Timeline{NewTimeline()},
		Stages:   []StageEvent{{File: 1, Node: 0, Avail: 1, Size: 10}, {File: 1, Node: 0, Avail: 2, Size: 10}},
		DiskCap:  []int64{0},
		InitUsed: []int64{0},
	}
	assertViolations(t, s.Validate(), "staged twice")
}

// TestExecutedSchedulesValidate ties the two layers together at the
// gantt level: a timeline built only through EarliestSlot+Reserve must
// always validate.
func TestExecutedSchedulesValidate(t *testing.T) {
	tl := NewTimeline()
	durs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	for i, d := range durs {
		s := tl.EarliestSlot(float64(i%3), d)
		tl.Reserve(s, d, int32(i))
	}
	s := &Schedule{Compute: []*Timeline{tl}}
	if v := s.Validate(); len(v) != 0 {
		t.Fatalf("reserve-built timeline invalid: %v", v)
	}
}
