package core

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/batch"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/spec"
)

// RunStatus reports how a batch run ended.
type RunStatus string

const (
	// StatusComplete: every task executed.
	StatusComplete RunStatus = "Complete"
	// StatusDegraded: fault-recovery budgets were exhausted and some
	// tasks were abandoned (DegradedTasks counts them).
	StatusDegraded RunStatus = "Degraded"
)

// Result aggregates one full batch run: the three-stage pipeline
// applied repeatedly until every task has executed.
type Result struct {
	Scheduler string
	// Status is StatusComplete unless fault injection exhausted some
	// task's retry budget (then StatusDegraded).
	Status RunStatus
	// Makespan is the total simulated batch execution time in seconds
	// (sum of sub-batch makespans; sub-batches run back to back).
	Makespan float64
	// SchedulingTime is the real wall-clock time the scheduler spent
	// planning (the paper's scheduling overhead; Figure 6(b) reports
	// it per task).
	SchedulingTime time.Duration
	SubBatches     int
	TaskCount      int

	RemoteTransfers  int
	RemoteBytes      int64
	ReplicaTransfers int
	ReplicaBytes     int64
	Evictions        int

	StorageBusy float64
	ComputeBusy float64

	// Fault/recovery accounting, all zero on fault-free runs.
	TransferFailures  int
	TransferRetries   int
	ReplicaRecoveries int
	Crashes           int
	Stragglers        int
	RequeuedTasks     int
	// DegradedTasks counts tasks abandoned after their retry budget
	// was exhausted; they are not executed and not counted in TasksRun.
	DegradedTasks int
	WastedSeconds float64

	// Speculative-execution accounting, all zero unless RunOptions.Spec
	// forked duplicate attempts.
	SpecLaunches      int
	SpecWins          int
	SpecCancels       int
	SpecSaved         int
	SpecWastedSeconds float64
}

// SchedulingMSPerTask returns the paper's Figure 6(b) metric.
// Computed from fractional milliseconds: Duration.Milliseconds()
// truncates, which would report 0 for any scheduler faster than 1 ms
// per task overall.
func (r *Result) SchedulingMSPerTask() float64 {
	if r.TaskCount == 0 {
		return 0
	}
	return r.SchedulingTime.Seconds() * 1000 / float64(r.TaskCount)
}

// Observer bundles the optional observability sinks for a run. The
// zero value observes nothing at zero cost. Observation is write-only:
// neither sink ever feeds information back into scheduling, so an
// observed run commits exactly the schedule an unobserved one does
// (pinned by TestObservedRunsMatchUnobserved).
type Observer struct {
	// Trace receives spans and instant events from every pipeline
	// phase; nil means no tracing.
	Trace obs.Tracer
	// Metrics receives counters/gauges/histograms; nil means none.
	Metrics *obs.Metrics
	// Journal receives decision-provenance events (placement
	// rationale, staging source choices, eviction victims,
	// fault/recovery activity); nil means none. All journal
	// timestamps are simulated time and all emissions happen in the
	// sequential sections of the pipeline, so for a fixed seed the
	// journal bytes are identical at any worker count.
	Journal *journal.Recorder
}

// RunOptions bundles the optional behaviors of a run: post-hoc
// schedule validation, observability sinks, and fault injection. The
// zero value reproduces plain Run exactly.
type RunOptions struct {
	// Checked enables the gantt schedule validator per sub-batch.
	Checked bool
	// Obs attaches tracing/metrics sinks.
	Obs Observer
	// Faults, when non-nil and enabled, injects the scenario's crash,
	// transfer-failure and straggler events and activates the recovery
	// path (retry/backoff, replica-preferring re-staging, re-queueing
	// with per-task budgets). Nil or disabled plans take the fault-free
	// fast path, byte-identical to a run without this option.
	Faults *faults.FaultPlan
	// Spec, when non-nil and active (and Faults enabled), forks
	// speculative duplicate attempts of straggling executions:
	// first finisher wins, the loser is cancelled deterministically.
	// Nil or spec.Never takes the exact non-speculative code paths.
	Spec *spec.Policy
}

// RunWith is Run with explicit options.
func RunWith(p *Problem, s Scheduler, opt RunOptions) (*Result, error) {
	st, err := NewState(p)
	if err != nil {
		return nil, err
	}
	return runFrom(st, s, p.Batch.AllTasks(), opt)
}

// RunFromWith is RunFrom with explicit options.
func RunFromWith(st *State, s Scheduler, pending []batch.TaskID, opt RunOptions) (*Result, error) {
	return runFrom(st, s, pending, opt)
}

// Run executes the complete three-stage pipeline of the paper: the
// scheduler repeatedly selects and maps a sub-batch of the pending
// tasks (stages 1–2), the §6 runtime stage executes it on the
// simulated platform (stage 3), and the scheduler's eviction policy
// frees compute-cluster disk before the next round. Run returns the
// accumulated result once every task has executed.
func Run(p *Problem, s Scheduler) (*Result, error) {
	st, err := NewState(p)
	if err != nil {
		return nil, err
	}
	return RunFrom(st, s, p.Batch.AllTasks())
}

// RunObserved is Run with an Observer attached: the tracer records
// every pipeline phase (plan, execute, evict, plus the simulated
// transfer/task reservations) and the metrics registry accumulates
// phase latencies and transfer totals. The committed schedule is
// identical to Run's.
func RunObserved(p *Problem, s Scheduler, ob Observer) (*Result, error) {
	st, err := NewState(p)
	if err != nil {
		return nil, err
	}
	return runFrom(st, s, p.Batch.AllTasks(), RunOptions{Obs: ob})
}

// RunChecked is Run with the gantt schedule validator enabled: every
// sub-batch's committed schedule is re-checked post hoc (no port
// reservation overlap, disk capacity never exceeded, every input file
// staged before its task starts) and any violation aborts the run with
// an error naming it. Tests use this so that scheduler bugs surface as
// invariant violations instead of silently wrong makespans; it costs
// one event record per transfer/task, so production paths stick to
// Run.
func RunChecked(p *Problem, s Scheduler) (*Result, error) {
	st, err := NewState(p)
	if err != nil {
		return nil, err
	}
	return RunFromChecked(st, s, p.Batch.AllTasks())
}

// RunFrom is Run starting from an existing cluster state and an
// explicit pending-task set, allowing callers to chain batches over a
// warm disk cache. Task IDs already completed in st, and duplicate
// IDs, are skipped rather than double-executed — recovery re-queueing
// feeds this path and hand-built resume lists may contain both.
func RunFrom(st *State, s Scheduler, pending []batch.TaskID) (*Result, error) {
	return runFrom(st, s, pending, RunOptions{})
}

// RunFromChecked is RunFrom with the gantt schedule validator enabled.
func RunFromChecked(st *State, s Scheduler, pending []batch.TaskID) (*Result, error) {
	return runFrom(st, s, pending, RunOptions{Checked: true})
}

func runFrom(st *State, s Scheduler, pending []batch.TaskID, opt RunOptions) (*Result, error) {
	if err := opt.Faults.Validate(); err != nil {
		return nil, err
	}
	inj := faults.NewInjector(opt.Faults, st.P.Platform.NumCompute())
	ob := opt.Obs
	checked := opt.Checked
	tr := obs.OrNop(ob.Trace)
	if tr.Enabled() {
		tr.NameTrack(obs.DomainReal, obs.TrackSched, "scheduler ("+s.Name()+")")
		tr.NameTrack(obs.DomainSim, obs.TrackBatch, "sub-batches")
	}
	// Dedupe the pending list and skip already-completed task IDs. The
	// cleaned list preserves first-occurrence order, so a clean input
	// behaves exactly as before.
	pendingSet := make(map[batch.TaskID]bool, len(pending))
	clean := make([]batch.TaskID, 0, len(pending))
	for _, t := range pending {
		if pendingSet[t] || (int(t) < len(st.Done) && st.Done[t]) {
			continue
		}
		pendingSet[t] = true
		clean = append(clean, t)
	}
	pending = clean
	res := &Result{Scheduler: s.Name(), Status: StatusComplete, TaskCount: len(pending)}
	// Thread the journal through the state so schedulers and eviction
	// policies can record rationale. Assigned unconditionally: a
	// journal-free run on a reused state must not write into a stale
	// recorder.
	j := ob.Journal
	st.J = j
	st.JRound = res.SubBatches
	j.Emit(journal.Event{T: st.Clock, Kind: journal.KindRunStart,
		Run: &journal.Run{Sched: s.Name(), Tasks: len(pending)}})
	// Per-task re-queue counts against the fault-recovery budget.
	var attempts map[batch.TaskID]int
	budget := 0
	if inj != nil {
		attempts = make(map[batch.TaskID]int)
		budget = inj.TaskRetryBudget()
	}
	var agg ExecStats
	for len(pending) > 0 {
		st.JRound = res.SubBatches
		endPlan := tr.Span(obs.TrackSched, "phase", "plan",
			obs.A("pending", len(pending)), obs.A("sub_batch", res.SubBatches))
		//schedlint:allow nowallclock,tracepurity measures real scheduling overhead (Fig 6(b) metric); never feeds placement decisions
		t0 := time.Now()
		plan, err := s.PlanSubBatch(st, pending)
		elapsed := time.Since(t0) //schedlint:allow nowallclock,tracepurity overhead metric only
		res.SchedulingTime += elapsed
		ob.Metrics.Observe("core.plan_ms", elapsed.Seconds()*1000)
		if err != nil {
			endPlan(obs.A("error", err.Error()))
			return nil, fmt.Errorf("core: %s failed to plan a sub-batch with %d tasks pending: %w", s.Name(), len(pending), err)
		}
		if plan == nil || len(plan.Tasks) == 0 {
			endPlan()
			return nil, fmt.Errorf("core: %s returned an empty sub-batch with %d tasks pending", s.Name(), len(pending))
		}
		endPlan(obs.A("planned_tasks", len(plan.Tasks)))
		for _, t := range plan.Tasks {
			if !pendingSet[t] {
				return nil, fmt.Errorf("core: %s planned task %d which is not pending", s.Name(), t)
			}
		}
		j.Emit(journal.Event{T: st.Clock, Kind: journal.KindPlan, Round: res.SubBatches,
			Plan: &journal.Plan{Sched: s.Name(), Pending: len(pending), Planned: len(plan.Tasks),
				Pinned: plan.Pinned, PreStages: len(plan.PreStage)}})
		clockBefore := st.Clock
		endExec := tr.Span(obs.TrackSched, "phase", "execute",
			obs.A("tasks", len(plan.Tasks)))
		stats, sched, requeued, err := ExecuteSpec(st, plan, checked, tr, inj, res.SubBatches, opt.Spec)
		if err == nil && checked {
			err = sched.Err()
		}
		endExec()
		if err != nil {
			return nil, fmt.Errorf("core: executing %s sub-batch %d: %w", s.Name(), res.SubBatches, err)
		}
		if tr.Enabled() {
			tr.SimSpan(obs.TrackBatch, "batch", "sub-batch "+strconv.Itoa(res.SubBatches),
				clockBefore, st.Clock,
				obs.A("tasks", len(plan.Tasks)),
				obs.A("makespan_s", stats.Makespan),
				obs.A("remote_transfers", stats.RemoteTransfers),
				obs.A("replica_transfers", stats.ReplicaTransfers))
		}
		res.SubBatches++
		agg.Add(stats)

		// Completed tasks leave the pending set; fault-interrupted ones
		// stay pending (they were not marked Done) until their re-queue
		// budget runs out, at which point they are abandoned as
		// degraded.
		for _, t := range plan.Tasks {
			if st.Done[t] {
				delete(pendingSet, t)
			}
		}
		for _, t := range requeued {
			attempts[t]++
			if attempts[t] > budget {
				delete(pendingSet, t)
				res.DegradedTasks++
				res.Status = StatusDegraded
				if tr.Enabled() {
					tr.SimInstant(obs.TrackBatch, "fault",
						"abandon task "+strconv.Itoa(int(t)), st.Clock, obs.A("task", int(t)))
				}
				j.Emit(journal.Event{T: st.Clock, Kind: journal.KindFault, Round: res.SubBatches - 1,
					Fault: &journal.Fault{Class: journal.FaultAbandon, Node: -1, Task: int(t), File: -1,
						Attempt: attempts[t], Detail: "re-queue budget exhausted; task abandoned as degraded"}})
			}
		}
		pending = pending[:0]
		for t := range pendingSet {
			pending = append(pending, t)
		}
		pending = batch.SortedCopy(pending)

		if len(pending) > 0 {
			st.JRound = res.SubBatches
			endEvict := tr.Span(obs.TrackSched, "phase", "evict")
			t0 = time.Now() //schedlint:allow nowallclock,tracepurity overhead metric only
			s.Evict(st, pending)
			elapsed = time.Since(t0) //schedlint:allow nowallclock,tracepurity overhead metric only
			res.SchedulingTime += elapsed
			ob.Metrics.Observe("core.evict_ms", elapsed.Seconds()*1000)
			endEvict()
		}
	}
	res.Makespan = agg.Makespan
	res.RemoteTransfers = agg.RemoteTransfers
	res.RemoteBytes = agg.RemoteBytes
	res.ReplicaTransfers = agg.ReplicaTransfers
	res.ReplicaBytes = agg.ReplicaBytes
	res.StorageBusy = agg.StorageBusy
	res.ComputeBusy = agg.ComputeBusy
	res.TransferFailures = agg.TransferFailures
	res.TransferRetries = agg.TransferRetries
	res.ReplicaRecoveries = agg.ReplicaRecoveries
	res.Crashes = agg.Crashes
	res.Stragglers = agg.Stragglers
	res.RequeuedTasks = agg.RequeuedTasks
	res.WastedSeconds = agg.WastedSeconds
	res.SpecLaunches = agg.SpecLaunches
	res.SpecWins = agg.SpecWins
	res.SpecCancels = agg.SpecCancels
	res.SpecSaved = agg.SpecSaved
	res.SpecWastedSeconds = agg.SpecWastedSeconds
	res.Evictions = st.Evictions
	if inj != nil && opt.Spec.Active() {
		ob.Metrics.Count("core.spec.launches", int64(res.SpecLaunches))
		ob.Metrics.Count("core.spec.wins", int64(res.SpecWins))
		ob.Metrics.Count("core.spec.cancels", int64(res.SpecCancels))
		ob.Metrics.Count("core.spec.saved", int64(res.SpecSaved))
		ob.Metrics.SetGauge("core.spec.wasted_s", res.SpecWastedSeconds)
	}
	if inj != nil {
		ob.Metrics.Count("core.fault.transfer_failures", int64(res.TransferFailures))
		ob.Metrics.Count("core.fault.transfer_retries", int64(res.TransferRetries))
		ob.Metrics.Count("core.fault.replica_recoveries", int64(res.ReplicaRecoveries))
		ob.Metrics.Count("core.fault.crashes", int64(res.Crashes))
		ob.Metrics.Count("core.fault.stragglers", int64(res.Stragglers))
		ob.Metrics.Count("core.fault.requeued_tasks", int64(res.RequeuedTasks))
		ob.Metrics.Count("core.fault.degraded_tasks", int64(res.DegradedTasks))
		ob.Metrics.SetGauge("core.fault.wasted_s", res.WastedSeconds)
	}
	ob.Metrics.Count("core.tasks", int64(res.TaskCount))
	ob.Metrics.Count("core.sub_batches", int64(res.SubBatches))
	ob.Metrics.Count("core.remote_transfers", int64(res.RemoteTransfers))
	ob.Metrics.Count("core.remote_bytes", res.RemoteBytes)
	ob.Metrics.Count("core.replica_transfers", int64(res.ReplicaTransfers))
	ob.Metrics.Count("core.replica_bytes", res.ReplicaBytes)
	ob.Metrics.Count("core.evictions", int64(res.Evictions))
	ob.Metrics.SetGauge("core.makespan_s", res.Makespan)
	j.Emit(journal.Event{T: st.Clock, Kind: journal.KindRunEnd, Round: res.SubBatches,
		Run: &journal.Run{Sched: s.Name(), Tasks: res.TaskCount, Status: string(res.Status),
			Makespan: res.Makespan, SubBatches: res.SubBatches}})
	return res, nil
}
