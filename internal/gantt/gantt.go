// Package gantt provides the timeline-reservation structure the paper's
// runtime stage (§6) maintains for storage and compute nodes: sorted
// lists of busy intervals supporting earliest-free-slot queries,
// committed reservations, and cheap tentative overlays used while
// estimating a task's earliest completion time without committing its
// transfers.
//
// Internally a Timeline is a bucketed gap index: the sorted interval
// list is split into bounded-size chunks, each summarizing the largest
// free gap strictly inside it. EarliestSlot skips whole chunks whose
// summary proves no fit can exist there and falls back to the exact
// linear merge-scan only inside candidate chunks, so queries and
// inserts cost O(√n)-ish instead of O(n) on the simulator's inner
// loop. The observable behaviour (results, panics, float arithmetic of
// the fit tests) is identical to the flat sorted-slice implementation,
// which is kept in this package as `earliestSlot` and pinned against
// the index by property tests and the fuzz corpus.
package gantt

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a half-open busy period [Start, End).
type Interval struct {
	Start, End float64
	// Tag identifies what the reservation is for (caller-defined).
	Tag int32
}

// chunkTarget bounds chunk sizes: a chunk splits in half when it grows
// past 2*chunkTarget intervals, keeping inserts and in-chunk scans
// O(chunkTarget) while chunk-summary skips cover the rest.
const chunkTarget = 16

// chunk is one bucket of the gap index: a short sorted run of the
// timeline's intervals plus the largest free gap strictly inside it
// (between consecutive intervals; the gap before the first interval is
// the previous chunk's trailing gap and is tested separately).
type chunk struct {
	ivs    []Interval
	maxGap float64
}

func (c *chunk) first() Interval { return c.ivs[0] }
func (c *chunk) last() Interval  { return c.ivs[len(c.ivs)-1] }

// recalcGap recomputes the chunk's internal max free gap.
func (c *chunk) recalcGap() {
	g := 0.0
	for i := 1; i < len(c.ivs); i++ {
		if d := c.ivs[i].Start - c.ivs[i-1].End; d > g {
			g = d
		}
	}
	c.maxGap = g
}

// metaFan is the fan-out of the second index level: one metaSum
// summarizes up to metaFan consecutive chunks, so a slot search over a
// dense timeline skips ~metaFan*chunkTarget intervals per step instead
// of one chunk's worth.
const metaFan = 64

// metaSum summarizes a run of consecutive chunks for whole-run skips.
// Every bound is conservative with respect to the chunk-by-chunk skip
// logic in slotSearch: a run is skipped only when each of its chunks
// would have been skipped individually, so the two walks always land
// on the same slot.
type metaSum struct {
	// firstStart is the run's first interval Start (the pre-run gap is
	// tested against the cursor, exactly like a chunk's pre-gap).
	firstStart float64
	// maxEnd is the largest interval End in the run: the cursor after
	// skipping the run, and the extra-interference horizon.
	maxEnd float64
	// maxGap is the largest free gap inside the run: internal chunk
	// gaps and the inter-chunk gaps between consecutive run members.
	maxGap float64
	// maxAbsEnd bounds |last.End| over the run's chunks, so the
	// relative-slack term of the skip test dominates every chunk's.
	maxAbsEnd float64
}

// Timeline is a single-port resource schedule: a sorted,
// non-overlapping list of busy intervals, bucketed into gap-indexed
// chunks, with a second summary level over runs of metaFan chunks.
type Timeline struct {
	chunks []chunk
	metas  []metaSum
	n      int
	// flat caches the Intervals() view; nil after any mutation.
	flat []Interval
}

// recalcMeta recomputes the summary of meta mi from its chunk run.
func (t *Timeline) recalcMeta(mi int) {
	lo, hi := mi*metaFan, (mi+1)*metaFan
	if hi > len(t.chunks) {
		hi = len(t.chunks)
	}
	m := metaSum{firstStart: t.chunks[lo].first().Start}
	for i := lo; i < hi; i++ {
		c := &t.chunks[i]
		end := c.last().End
		if i == lo || end > m.maxEnd {
			m.maxEnd = end
		}
		if a := math.Abs(end); a > m.maxAbsEnd {
			m.maxAbsEnd = a
		}
		if c.maxGap > m.maxGap {
			m.maxGap = c.maxGap
		}
		if i > lo {
			if g := c.first().Start - t.chunks[i-1].last().End; g > m.maxGap {
				m.maxGap = g
			}
		}
	}
	t.metas[mi] = m
}

// recalcMetasFrom resizes the meta level to cover every chunk and
// recomputes the summaries of meta mi and everything after it.
func (t *Timeline) recalcMetasFrom(mi int) {
	nm := (len(t.chunks) + metaFan - 1) / metaFan
	for len(t.metas) < nm {
		t.metas = append(t.metas, metaSum{})
	}
	t.metas = t.metas[:nm]
	for ; mi < nm; mi++ {
		t.recalcMeta(mi)
	}
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Reset clears all reservations.
func (t *Timeline) Reset() {
	t.chunks = t.chunks[:0]
	t.metas = t.metas[:0]
	t.n = 0
	t.flat = nil
}

// Len returns the number of busy intervals.
func (t *Timeline) Len() int { return t.n }

// Intervals returns the busy intervals in order. The slice must not be
// modified, and is valid only until the next Reserve or Reset.
func (t *Timeline) Intervals() []Interval {
	if t.flat == nil {
		flat := make([]Interval, 0, t.n)
		for i := range t.chunks {
			flat = append(flat, t.chunks[i].ivs...)
		}
		t.flat = flat
	}
	return t.flat
}

// EarliestSlot returns the earliest start ≥ after at which a
// reservation of the given duration fits.
func (t *Timeline) EarliestSlot(after, dur float64) float64 {
	return t.slotSearch(nil, after, dur)
}

// Reserve books [start, start+dur) on the timeline. It panics if the
// slot overlaps an existing reservation: callers must only reserve
// slots returned by EarliestSlot (or verified free).
func (t *Timeline) Reserve(start, dur float64, tag int32) {
	if dur < 0 {
		panic("gantt: negative duration")
	}
	end := start + dur
	if len(t.chunks) == 0 {
		t.chunks = append(t.chunks, chunk{ivs: []Interval{{Start: start, End: end, Tag: tag}}})
		t.recalcMetasFrom(0)
		t.n++
		t.flat = nil
		return
	}
	// Locate the global insertion position: first interval with
	// Start >= start, as (chunk ci, offset k).
	ci := sort.Search(len(t.chunks), func(i int) bool { return t.chunks[i].last().Start >= start })
	k := 0
	if ci == len(t.chunks) {
		ci = len(t.chunks) - 1
		k = len(t.chunks[ci].ivs)
	} else {
		c := &t.chunks[ci]
		k = sort.Search(len(c.ivs), func(i int) bool { return c.ivs[i].Start >= start })
	}
	// Check neighbours for overlap (identical to the flat scan).
	var prev, next *Interval
	if k > 0 {
		prev = &t.chunks[ci].ivs[k-1]
	} else if ci > 0 {
		p := &t.chunks[ci-1]
		prev = &p.ivs[len(p.ivs)-1]
	}
	if k < len(t.chunks[ci].ivs) {
		next = &t.chunks[ci].ivs[k]
	} else if ci+1 < len(t.chunks) {
		next = &t.chunks[ci+1].ivs[0]
	}
	if prev != nil && prev.End > start+overlapEps {
		panic(fmt.Sprintf("gantt: reservation [%g,%g) overlaps [%g,%g)", start, end, prev.Start, prev.End))
	}
	if next != nil && next.Start < end-overlapEps {
		panic(fmt.Sprintf("gantt: reservation [%g,%g) overlaps [%g,%g)", start, end, next.Start, next.End))
	}
	c := &t.chunks[ci]
	c.ivs = append(c.ivs, Interval{})
	copy(c.ivs[k+1:], c.ivs[k:])
	c.ivs[k] = Interval{Start: start, End: end, Tag: tag}
	if len(c.ivs) > 2*chunkTarget {
		// Split in half; both halves re-summarize. The split shifts
		// every later chunk one slot right, so the meta level is
		// recomputed from the touched run onward (splits are amortized
		// over chunkTarget inserts, so this stays cheap).
		mid := len(c.ivs) / 2
		right := chunk{ivs: append([]Interval(nil), c.ivs[mid:]...)}
		c.ivs = c.ivs[:mid]
		c.recalcGap()
		right.recalcGap()
		t.chunks = append(t.chunks, chunk{})
		copy(t.chunks[ci+2:], t.chunks[ci+1:])
		t.chunks[ci+1] = right
		t.recalcMetasFrom(ci / metaFan)
	} else {
		c.recalcGap()
		// Only this chunk changed: its internal gaps, its boundary
		// intervals, and the inter-chunk gaps to its run neighbours all
		// live in meta ci/metaFan (gaps between runs are not summarized
		// — the next run's pre-gap check covers them), so one summary
		// refresh suffices.
		t.recalcMeta(ci / metaFan)
	}
	t.n++
	t.flat = nil
}

// FinishTime returns the end of the last reservation (0 when empty).
// Because the timeline is kept sorted by Start with non-overlapping
// (at most eps-abutting) intervals, the last interval is also the one
// ending latest, so this is the port's makespan.
func (t *Timeline) FinishTime() float64 {
	if t.n == 0 {
		return 0
	}
	return t.chunks[len(t.chunks)-1].last().End
}

// BusyTime returns the total reserved duration.
func (t *Timeline) BusyTime() float64 {
	var sum float64
	for i := range t.chunks {
		for _, iv := range t.chunks[i].ivs {
			sum += iv.End - iv.Start
		}
	}
	return sum
}

// overlapEps tolerates floating-point slop when two reservations abut.
const overlapEps = 1e-9

// slotSearch finds the first gap of length dur at or after `after`,
// merge-scanning the timeline's intervals with the (small, sorted)
// extra list. It is the chunk-indexed equivalent of earliestSlot: the
// exact in-chunk scan performs the same float comparisons in the same
// order; chunks are skipped only when the gap summary proves (with a
// conservative slack for summary rounding) that no fit exists inside.
func (t *Timeline) slotSearch(extra []Interval, after, dur float64) float64 {
	if dur < 0 {
		panic("gantt: negative duration")
	}
	cur := after
	j := sort.Search(len(extra), func(j int) bool { return extra[j].End > after })
	ci := sort.Search(len(t.chunks), func(i int) bool { return t.chunks[i].last().End > after })
	k := 0
	if ci < len(t.chunks) {
		c := &t.chunks[ci]
		k = sort.Search(len(c.ivs), func(i int) bool { return c.ivs[i].End > after })
	}
	for {
		var base *Interval
		if ci < len(t.chunks) {
			c := &t.chunks[ci]
			if k >= len(c.ivs) {
				ci++
				k = 0
				continue
			}
			if k == 0 {
				// Meta-skip: at a run boundary, the run summary can prove
				// that every chunk-skip below would fire for all metaFan
				// chunks at once — the run's maxGap dominates each chunk's
				// internal and inter-chunk gaps, maxAbsEnd makes the
				// relative slack at least each chunk's, and the cursor
				// lands on maxEnd exactly as the chunk-by-chunk walk
				// would, so the two walks return identical slots.
				if ci%metaFan == 0 {
					m := &t.metas[ci/metaFan]
					if (j >= len(extra) || extra[j].Start >= m.maxEnd) &&
						cur+dur > m.firstStart+overlapEps &&
						dur > m.maxGap+2*overlapEps+1e-12*(1+m.maxAbsEnd) {
						if m.maxEnd > cur {
							cur = m.maxEnd
						}
						ci += metaFan
						continue
					}
				}
				// Chunk-skip: at a chunk boundary, if no extra interval
				// interferes before the chunk ends, the pre-chunk gap does
				// not fit, and the summary proves no internal gap fits,
				// jump the whole chunk. The slack covers summary rounding
				// plus the ≤eps offset of cur past the chunk start, so a
				// skip never hides a fit the exact scan would find.
				last := c.last()
				if (j >= len(extra) || extra[j].Start >= last.End) &&
					cur+dur > c.first().Start+overlapEps &&
					dur > c.maxGap+2*overlapEps+1e-12*(1+math.Abs(last.End)) {
					if last.End > cur {
						cur = last.End
					}
					ci++
					continue
				}
			}
			base = &c.ivs[k]
		}
		// Next blocking interval: the earlier-starting of base, extra[j].
		var next *Interval
		if base != nil && (j >= len(extra) || base.Start <= extra[j].Start) {
			next = base
		} else if j < len(extra) {
			next = &extra[j]
		}
		if next == nil || cur+dur <= next.Start+overlapEps {
			return cur
		}
		if next.End > cur {
			cur = next.End
		}
		if next == base {
			k++
		} else {
			j++
		}
	}
}

// Overlay augments a base timeline with a small set of tentative
// reservations, so a candidate task's transfers can be slot-searched
// without mutating the committed schedule. Overlays are meant to hold
// only a handful of intervals (one per input file of one task).
type Overlay struct {
	base  *Timeline
	extra []Interval // sorted by Start
}

// NewOverlay wraps base with an empty tentative set.
func NewOverlay(base *Timeline) *Overlay { return &Overlay{base: base} }

// Reset drops the tentative reservations (the base is untouched).
func (o *Overlay) Reset(base *Timeline) {
	o.base = base
	o.extra = o.extra[:0]
}

// Clear drops the tentative reservations, keeping the base — for
// callers that cache overlays keyed by their base timeline.
func (o *Overlay) Clear() { o.extra = o.extra[:0] }

// TentativeLen returns the number of tentative reservations.
func (o *Overlay) TentativeLen() int { return len(o.extra) }

// Add tentatively books [start, start+dur).
func (o *Overlay) Add(start, dur float64) {
	iv := Interval{Start: start, End: start + dur}
	i := sort.Search(len(o.extra), func(i int) bool { return o.extra[i].Start >= iv.Start })
	o.extra = append(o.extra, Interval{})
	copy(o.extra[i+1:], o.extra[i:])
	o.extra[i] = iv
}

// EarliestSlot returns the earliest start ≥ after at which dur fits,
// considering both committed and tentative reservations.
func (o *Overlay) EarliestSlot(after, dur float64) float64 {
	return o.base.slotSearch(o.extra, after, dur)
}

// earliestSlot merge-scans two sorted interval lists for the first gap
// of length dur starting at or after `after`. It is the flat reference
// implementation the bucketed slotSearch must agree with byte-for-byte;
// tests and the bench-scale naive arm exercise it, production paths go
// through the index.
func earliestSlot(a, b []Interval, after, dur float64) float64 {
	if dur < 0 {
		panic("gantt: negative duration")
	}
	t := after
	i := sort.Search(len(a), func(i int) bool { return a[i].End > after })
	j := sort.Search(len(b), func(j int) bool { return b[j].End > after })
	for {
		// next blocking interval: the earlier-starting of a[i], b[j]
		var next *Interval
		if i < len(a) && (j >= len(b) || a[i].Start <= b[j].Start) {
			next = &a[i]
		} else if j < len(b) {
			next = &b[j]
		}
		if next == nil || t+dur <= next.Start+overlapEps {
			return t
		}
		if next.End > t {
			t = next.End
		}
		if i < len(a) && next == &a[i] {
			i++
		} else {
			j++
		}
	}
}

// MultiSlot finds the earliest common start ≥ after at which a
// reservation of duration dur fits simultaneously on every one of the
// given slot-searchers (a transfer occupies its source port,
// destination port and, optionally, a shared link at the same time).
func MultiSlot(after, dur float64, res ...SlotSearcher) float64 {
	t := after
	if len(res) == 0 {
		return t
	}
	// Round-robin until len(res) consecutive searchers accept t
	// unchanged. Each EarliestSlot is monotone (result ≥ after,
	// non-decreasing in after), so this reaches the same least common
	// fixpoint as re-polling every searcher per round, with roughly
	// half the queries on the hot two-resource (src port, dst port)
	// transfer case.
	stable := 0
	for i, iter := 0, 0; ; i, iter = (i+1)%len(res), iter+1 {
		s := res[i].EarliestSlot(t, dur)
		if s > t {
			t = s
			stable = 1
		} else {
			stable++
		}
		if stable >= len(res) {
			return t
		}
		if iter > 1_000_000 {
			panic("gantt: MultiSlot failed to converge")
		}
	}
}

// SlotSearcher is the common query interface of Timeline and Overlay.
type SlotSearcher interface {
	EarliestSlot(after, dur float64) float64
}

// Makespan returns the max finish time across timelines.
func Makespan(ts []*Timeline) float64 {
	m := 0.0
	for _, t := range ts {
		m = math.Max(m, t.FinishTime())
	}
	return m
}
