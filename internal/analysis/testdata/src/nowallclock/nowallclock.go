// Package nowallclock is a schedlint golden-test fixture for the
// nowallclock check: wall-clock reads and global-rand draws trigger,
// seeded constructors and method calls do not.
package nowallclock

import (
	"math/rand"
	"time"
)

// badWallClock reads the wall clock twice. Two findings.
func badWallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// badGlobalRand draws from the process-global stream. One finding.
func badGlobalRand() int {
	return rand.Intn(10)
}

// goodSeededRand constructs a private seeded stream — the New and
// NewSource constructors are allowed, and Intn here is a method on the
// local *rand.Rand, not the global function.
func goodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// goodTimeArithmetic uses only time values passed in — no clock reads.
func goodTimeArithmetic(deadline time.Time, now time.Time) bool {
	return now.After(deadline)
}

// suppressedClock measures an overhead metric — annotated, no finding.
func suppressedClock() time.Time {
	//schedlint:allow nowallclock fixture: overhead metric only
	return time.Now()
}

// badClockSeededFaults seeds a failure stream from the wall clock —
// the fault-injection anti-pattern: the same plan would then produce a
// different failure sequence every run. One finding.
func badClockSeededFaults() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// goodHashDraw derives a pseudo-random draw by hashing a stable event
// identity with the plan seed — the fault-injector idiom: pure
// arithmetic, no clock, no stream, so call order cannot matter.
func goodHashDraw(seed uint64, node, round int) float64 {
	z := seed ^ uint64(node)<<32 ^ uint64(round)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return float64((z^(z>>31))>>11) / (1 << 53)
}
