// Package mergeorder is a schedlint golden-test fixture for the
// mergeorder check: worker results merged in scheduling order trigger,
// index-owned slots and semaphore channels do not.
package mergeorder

import "sync"

// badAppend appends worker results under a mutex: race-free but the
// element order follows goroutine scheduling. One finding.
func badAppend(items []int) []int {
	out := make([]int, 0, len(items))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			out = append(out, it*2)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

// badMapWrite publishes into a shared map from workers. One finding.
func badMapWrite(items []int) map[int]int {
	res := map[int]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			res[it] = it * it
			mu.Unlock()
		}()
	}
	wg.Wait()
	return res
}

// badCounter increments a shared counter from workers. One finding.
func badCounter(items []int, counts *int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			*counts++
		}()
	}
	wg.Wait()
}

// goodIndexedSlots writes each worker's result into the slot owned by
// its loop index — the repo's canonical deterministic merge. Clean.
func goodIndexedSlots(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = it * 2
		}()
	}
	wg.Wait()
	return out
}

// goodSemaphore bounds concurrency with a struct{} channel — carries
// no result data, so send order cannot matter. Clean.
func goodSemaphore(items []int) []int {
	out := make([]int, len(items))
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			out[i] = it * it
			<-sem
		}()
	}
	wg.Wait()
	return out
}

// suppressedAppend carries an allow annotation — no finding.
func suppressedAppend(items []int) []int {
	var out []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			out = append(out, it) //schedlint:allow mergeorder fixture: caller sorts the result
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}
