// Package obs is the repository's observability layer: a tracer
// recording spans and instant events from every pipeline phase
// (exported as Chrome trace-event JSON viewable in Perfetto, or as an
// ASCII Gantt for terminal inspection), a counter/gauge/histogram
// metrics registry with deterministic merging, and the standard Go
// profiling hooks (-cpuprofile, -memprofile, -trace) shared by the
// CLIs. It is built exclusively on the standard library.
//
// Determinism contract: observation is strictly write-only — nothing
// in this package feeds information back into placement decisions, so
// an instrumented run produces the same schedule as an uninstrumented
// one (pinned by TestObservedRunsMatchUnobserved). Two clock domains
// are kept apart: DomainSim events carry simulated timestamps supplied
// by the caller and are a pure function of the schedule, while
// DomainReal spans read the wall clock — but only inside this package,
// which is the one place in the repository (outside the annotated
// overhead-metric sites) where schedlint's tracepurity check permits
// it. Exports sort events into a canonical order, so a simulated-time
// trace for a fixed seed is byte-identical at any worker count.
package obs

// Domain is a clock domain. Each domain becomes one "process" row
// group in the exported Chrome trace.
type Domain uint8

const (
	// DomainReal is real wall-clock time: scheduler phase latencies,
	// solver dives, partitioner passes. Machine-dependent.
	DomainReal Domain = 1
	// DomainSim is simulated batch time: transfer and task
	// reservations on the §6 Gantt charts. Deterministic for a seed.
	DomainSim Domain = 2
)

// Arg is one key/value annotation on an event. Values must be
// JSON-encodable scalars (string, bool, int kinds, float64).
type Arg struct {
	Key string
	Val any
}

// A builds an Arg.
func A(key string, val any) Arg { return Arg{Key: key, Val: val} }

// EndFunc closes a span opened by Tracer.Span; extra args recorded at
// the end are merged into the span's args.
type EndFunc func(args ...Arg)

// Tracer is the recording interface threaded through the pipeline.
// The zero value of every integration point is the no-op tracer, so
// uninstrumented runs pay only a nil-interface check. Implementations
// must be safe for concurrent use: solver portfolio workers and
// experiment cells record from many goroutines.
type Tracer interface {
	// Enabled reports whether events are recorded at all; callers use
	// it to skip argument construction on hot paths.
	Enabled() bool
	// Span opens a wall-clock (DomainReal) span on track tid. End it
	// by calling the returned func.
	Span(tid int, cat, name string, args ...Arg) EndFunc
	// Instant records a zero-duration wall-clock event on track tid.
	Instant(tid int, cat, name string, args ...Arg)
	// SimSpan records a completed simulated-time interval
	// [start, end), in simulated seconds, on track tid.
	SimSpan(tid int, cat, name string, start, end float64, args ...Arg)
	// SimInstant marks a point in simulated time on track tid.
	SimInstant(tid int, cat, name string, ts float64, args ...Arg)
	// NameTrack labels track tid of domain d in exported traces.
	// Renaming an already-named track is a no-op.
	NameTrack(d Domain, tid int, name string)
	// AllocTrack reserves a fresh track id in domain d and names it.
	// Concurrent recursion branches (e.g. the hypergraph bisections)
	// use it so their spans land on separate tracks.
	AllocTrack(d Domain, name string) int
}

// Track-id conventions shared across the pipeline, so every package
// lands its events on the same rows.
const (
	// TrackSched (DomainReal) is the scheduler's planning thread:
	// plan/execute/evict phases, sub-batch selection, IP solves.
	TrackSched = 1
	// TrackBatch (DomainSim) carries one span per executed sub-batch.
	TrackBatch = 1
	// TrackLink (DomainSim) is the shared inter-cluster link port.
	TrackLink = 2
)

// SolverTrack returns the DomainReal track of portfolio worker w.
func SolverTrack(w int) int { return 10 + w }

// ComputeTrack returns the DomainSim track of compute node n's port.
func ComputeTrack(n int) int { return 10 + n }

// StorageTrack returns the DomainSim track of storage node s's port.
func StorageTrack(s int) int { return 1000 + s }

// nopEnd is the shared no-op span closer.
var nopEnd EndFunc = func(...Arg) {}

// nop is the disabled tracer.
type nop struct{}

func (nop) Enabled() bool                                         { return false }
func (nop) Span(int, string, string, ...Arg) EndFunc              { return nopEnd }
func (nop) Instant(int, string, string, ...Arg)                   {}
func (nop) SimSpan(int, string, string, float64, float64, ...Arg) {}
func (nop) SimInstant(int, string, string, float64, ...Arg)       {}
func (nop) NameTrack(Domain, int, string)                         {}
func (nop) AllocTrack(Domain, string) int                         { return 0 }

// Nop is the tracer that records nothing.
var Nop Tracer = nop{}

// OrNop normalizes an optional tracer: nil becomes Nop, so call sites
// never nil-check the interface.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}
