package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkSchedulers/IP-8   1   123456789 ns/op   2048 B/op   17 allocs/op   2.950 makespan_s")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if e.Name != "BenchmarkSchedulers/IP-8" || e.Iterations != 1 {
		t.Fatalf("got %+v", e)
	}
	want := map[string]float64{"ns/op": 123456789, "B/op": 2048, "allocs/op": 17, "makespan_s": 2.95}
	for k, v := range want {
		if e.Metrics[k] != v {
			t.Errorf("metric %s = %g, want %g", k, e.Metrics[k], v)
		}
	}
}

func TestParseSkipsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"PASS",
		"ok  \trepro\t1.234s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}

func TestParseEchoes(t *testing.T) {
	in := "goos: linux\nBenchmarkX-4 2 50 ns/op\nPASS\n"
	var out strings.Builder
	entries, err := parse(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != in {
		t.Errorf("echo mismatch:\n%q\nwant\n%q", out.String(), in)
	}
	if len(entries) != 1 || entries[0].Name != "BenchmarkX-4" || entries[0].Metrics["ns/op"] != 50 {
		t.Fatalf("entries = %+v", entries)
	}
}
