package faults

import (
	"math"
	"reflect"
	"testing"
)

func TestParsePresetsAndOverrides(t *testing.T) {
	if p, err := Parse(""); err != nil || p != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil plan", p, err)
	}
	if p, err := Parse("none"); err != nil || p != nil {
		t.Fatalf("Parse(none) = %v, %v; want nil plan", p, err)
	}
	p, err := Parse("harsh,seed=42,linkp=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.LinkFailProb != 0.2 || p.NodeMTTF != presets["harsh"].NodeMTTF {
		t.Fatalf("override parse wrong: %+v", p)
	}
	p, err = Parse("seed=7,mttf=1000,linkp=0.05,stragp=0.1,stragf=3,retries=5,budget=2,backoff=1,cap=10")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{Seed: 7, NodeMTTF: 1000, LinkFailProb: 0.05, StragglerProb: 0.1,
		StragglerFactor: 3, MaxTransferRetries: 5, TaskRetryBudget: 2, BackoffBase: 1, BackoffCap: 10}
	if !reflect.DeepEqual(*p, want) {
		t.Fatalf("key=value parse: got %+v want %+v", *p, want)
	}
	for _, bad := range []string{"nonsense", "mttf=x", "harsh,frobnicate=1", "linkp=2", "mttf=-5"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestParseRoundTripsString(t *testing.T) {
	p, err := Parse("seed=3,mttf=500,linkp=0.1,stragp=0.2,stragf=2,retries=3,budget=4")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if !reflect.DeepEqual(*q, *p) {
		t.Fatalf("round trip: %+v vs %+v", *q, *p)
	}
}

func TestEnabledAndNilInjector(t *testing.T) {
	var nilPlan *FaultPlan
	if nilPlan.Enabled() {
		t.Fatal("nil plan reports enabled")
	}
	if (&FaultPlan{Seed: 9}).Enabled() {
		t.Fatal("seed-only plan reports enabled")
	}
	if in := NewInjector(&FaultPlan{}, 4); in != nil {
		t.Fatal("disabled plan compiled to a non-nil injector")
	}
	// Nil injector: every query is the no-fault answer.
	var in *Injector
	if !math.IsInf(in.CrashTime(0), 1) {
		t.Fatal("nil injector crash time not +Inf")
	}
	if _, failed := in.TransferFail(0, 0, -1, 0, 1); failed {
		t.Fatal("nil injector failed a transfer")
	}
	if in.Straggler(0, 0) != 1 {
		t.Fatal("nil injector slowed a task")
	}
	if in.Backoff(3) != 0 {
		t.Fatal("nil injector returned backoff")
	}
	in.ConsumeCrash(0) // must not panic
}

// TestInjectorOrderIndependence is the core determinism property: the
// same query answered at any point, in any interleaving, gives the
// same result, because decisions hash stable identities instead of
// consuming a shared stream.
func TestInjectorOrderIndependence(t *testing.T) {
	plan := &FaultPlan{Seed: 11, NodeMTTF: 1000, LinkFailProb: 0.3, StragglerProb: 0.5, StragglerFactor: 4}
	a := NewInjector(plan, 4)
	b := NewInjector(plan, 4)

	// Query b in a scrambled order first.
	b.Straggler(7, 2)
	b.TransferFail(9, 3, 1, 5, 2)
	b.CrashTime(3)

	for node := 0; node < 4; node++ {
		if a.CrashTime(node) != b.CrashTime(node) {
			t.Fatalf("crash time differs on node %d", node)
		}
	}
	for f := 0; f < 10; f++ {
		for attempt := 1; attempt <= 3; attempt++ {
			af, aok := a.TransferFail(f, 1, -1, 0, attempt)
			bf, bok := b.TransferFail(f, 1, -1, 0, attempt)
			if af != bf || aok != bok {
				t.Fatalf("transfer decision differs for file %d attempt %d", f, attempt)
			}
		}
	}
	for task := 0; task < 20; task++ {
		if a.Straggler(task, 1) != b.Straggler(task, 1) {
			t.Fatalf("straggler factor differs for task %d", task)
		}
	}
}

func TestCrashSequenceMonotoneAndConsumable(t *testing.T) {
	plan := &FaultPlan{Seed: 5, NodeMTTF: 100}
	in := NewInjector(plan, 2)
	prev := 0.0
	for i := 0; i < 50; i++ {
		c := in.CrashTime(0)
		if !(c > prev) {
			t.Fatalf("crash %d at %g not after previous %g", i, c, prev)
		}
		prev = c
		in.ConsumeCrash(0)
	}
	// Per-node MTTF override: node 1 crashes far less often on average.
	over := &FaultPlan{Seed: 5, NodeMTTF: 100, PerNodeMTTF: []float64{0, 1e9}}
	oin := NewInjector(over, 2)
	if oin.CrashTime(1) < 1e6 {
		t.Fatalf("per-node MTTF override ignored: first crash at %g", oin.CrashTime(1))
	}
}

func TestTransferFailRespectsProbabilityEdges(t *testing.T) {
	never := NewInjector(&FaultPlan{Seed: 1, NodeMTTF: 10}, 2) // linkp 0
	for f := 0; f < 100; f++ {
		if _, failed := never.TransferFail(f, 0, -1, 0, 1); failed {
			t.Fatal("transfer failed with LinkFailProb 0")
		}
	}
	always := NewInjector(&FaultPlan{Seed: 1, LinkFailProb: 1}, 2)
	for f := 0; f < 100; f++ {
		frac, failed := always.TransferFail(f, 0, -1, 0, 1)
		if !failed {
			t.Fatal("transfer survived with LinkFailProb 1")
		}
		if frac <= 0 || frac >= 1 {
			t.Fatalf("failure fraction %g outside (0,1)", frac)
		}
	}
}

func TestBackoffCappedExponential(t *testing.T) {
	in := NewInjector(&FaultPlan{Seed: 1, LinkFailProb: 0.5, BackoffBase: 1, BackoffCap: 5}, 1)
	wants := []float64{0, 0, 1, 2, 4, 5, 5}
	for attempt, want := range wants {
		if got := in.Backoff(attempt); got != want {
			t.Fatalf("Backoff(%d) = %g, want %g", attempt, got, want)
		}
	}
}

func TestStragglerBounds(t *testing.T) {
	in := NewInjector(&FaultPlan{Seed: 3, StragglerProb: 1, StragglerFactor: 4}, 1)
	for task := 0; task < 200; task++ {
		f := in.Straggler(task, 0)
		if f < 1 || f > 4 {
			t.Fatalf("straggler factor %g outside [1,4]", f)
		}
	}
	off := NewInjector(&FaultPlan{Seed: 3, LinkFailProb: 0.1}, 1)
	if off.Straggler(0, 0) != 1 {
		t.Fatal("straggler fired with StragglerProb 0")
	}
}
