package hypergraph

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
)

// PartitionKWay divides h into k parts minimizing the connectivity-1
// cost while keeping each part's vertex weight within (1+eps) of the
// proportional target, via recursive bisection with net splitting.
// The returned slice maps each vertex to its part (0..k−1).
func PartitionKWay(h *Hypergraph, k int, eps float64, seed int64) ([]int, error) {
	return PartitionKWayOpt(h, k, KWayOptions{Eps: eps, Seed: seed})
}

// KWayOptions tunes PartitionKWayOpt.
type KWayOptions struct {
	// Eps is the balance tolerance.
	Eps float64
	// Seed drives the randomized multilevel pipeline. The result is a
	// pure function of (h, k, options): per-branch RNG streams are
	// split deterministically from this seed, so Workers does not
	// affect the partition.
	Seed int64
	// NoRefine disables FM refinement (coarsen + initial partition
	// only), for the ablation bench.
	NoRefine bool
	// Workers bounds the goroutines used for the independent left and
	// right sub-bisections of the recursion (0 = GOMAXPROCS, 1 =
	// sequential).
	Workers int
	// Trace, when non-nil, receives one span per multilevel bisection
	// (coarsen/initial/refine instants with cut values). Observability
	// only: the partition never depends on it.
	Trace obs.Tracer
}

// PartitionKWayOpt is PartitionKWay with explicit options.
func PartitionKWayOpt(h *Hypergraph, k int, opt KWayOptions) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("hypergraph: k must be positive, got %d", k)
	}
	part := make([]int, h.NumV)
	if k == 1 || h.NumV == 0 {
		return part, nil
	}
	vid := make([]int32, h.NumV)
	for i := range vid {
		vid[i] = int32(i)
	}
	pool := newWorkPool(opt.Workers)
	recurseKWay(h, vid, k, 0, opt.Eps, opt.Seed, pool, part, opt.NoRefine, obs.OrNop(opt.Trace))
	return part, nil
}

// recurseKWay bisects h (whose vertices map to original ids via vid)
// into ⌈k/2⌉ and ⌊k/2⌋ shares and recurses, writing final part labels
// starting at base into out. The two sub-recursions touch disjoint
// vertex sets (hence disjoint out entries) and run concurrently when
// the pool has a free worker.
func recurseKWay(h *Hypergraph, vid []int32, k, base int, eps float64, seed int64, pool *workPool, out []int, noRefine bool, tr obs.Tracer) {
	if k == 1 {
		for _, v := range vid {
			out[v] = base
		}
		return
	}
	if h.NumV <= 1 {
		// Degenerate: too few vertices to split; everything lands in
		// the first child part.
		for _, v := range vid {
			out[v] = base
		}
		return
	}
	k0 := (k + 1) / 2
	k1 := k - k0
	frac := float64(k0) / float64(k)
	// Tighten the tolerance as we descend so the end-to-end imbalance
	// stays near eps.
	levelEps := eps
	if k > 2 {
		levelEps = eps / 1.5
	}
	rng := rand.New(rand.NewSource(splitSeed(seed, 2)))
	side := multilevelBisect(h, balanceVertex, frac, levelEps, rng, noRefine, tr)
	h0, vid0 := extractSide(h, vid, side, 0)
	h1, vid1 := extractSide(h, vid, side, 1)
	pool.fork(
		func() { recurseKWay(h0, vid0, k0, base, eps, splitSeed(seed, 0), pool, out, noRefine, tr) },
		func() { recurseKWay(h1, vid1, k1, base+k0, eps, splitSeed(seed, 1), pool, out, noRefine, tr) },
	)
}

// extractSide builds the sub-hypergraph induced by vertices on the
// given side, splitting nets: each net keeps its weight on any side
// where it has at least two pins; single-pin appearances are absorbed
// into the vertex's ExtraVWeight (preserving the BINW incident-weight
// accounting and the connectivity-1 total across the recursion).
func extractSide(h *Hypergraph, vid []int32, side []int, want int) (*Hypergraph, []int32) {
	newID := make([]int32, h.NumV)
	for i := range newID {
		newID[i] = -1
	}
	b := NewBuilder()
	var subVid []int32
	for v := 0; v < h.NumV; v++ {
		if side[v] != want {
			continue
		}
		id := b.AddVertex(h.VWeight[v])
		b.extra[id] = h.ExtraVWeight[v]
		newID[v] = int32(id)
		subVid = append(subVid, vid[v])
	}
	for n := 0; n < h.NumN; n++ {
		var pins []int
		for _, v := range h.NetPins(n) {
			if newID[v] >= 0 {
				pins = append(pins, int(newID[v]))
			}
		}
		switch {
		case len(pins) >= 2:
			b.AddNet(h.NWeight[n], pins)
		case len(pins) == 1:
			b.extra[pins[0]] += h.NWeight[n]
		}
	}
	sub, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sub, subVid
}
