package experiments

import (
	"testing"
	"time"
)

// quick returns the smallest-possible options for smoke tests.
func quick() Options {
	return Options{Quick: true, Seed: 3, IPBudget: time.Second, SkipIP: true}
}

func TestFig5aQuick(t *testing.T) {
	tables, err := Fig5a(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("unexpected table shape: %+v", tables)
	}
	// Replication must not be slower than no-replication on the
	// shared-link platform.
	for _, row := range tables[0].Rows {
		with, without := row.Values[0], row.Values[1]
		if with > without*1.02 {
			t.Errorf("%s: replication (%v) slower than none (%v)", row.Label, with, without)
		}
	}
}

func TestFig5bQuick(t *testing.T) {
	tables, err := Fig5b(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Batch time must grow with batch size for every scheduler.
	for c := range tables[0].Columns {
		for i := 1; i < len(rows); i++ {
			if rows[i].Values[c] <= rows[i-1].Values[c] {
				t.Errorf("column %s not increasing at row %s", tables[0].Columns[c], rows[i].Label)
			}
		}
	}
}

func TestFig3QuickShape(t *testing.T) {
	tables, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("panels = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 3 {
			t.Fatalf("%s rows = %d", tb.Title, len(tb.Rows))
		}
		// Low overlap must not be cheaper than high overlap (more data
		// to move) for the BiPartition column.
		if tb.Rows[2].Values[0] < tb.Rows[0].Values[0] {
			t.Errorf("%s: low overlap cheaper than high", tb.Title)
		}
	}
}

func TestFig6QuickIncludesOverheadPanel(t *testing.T) {
	tables, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("panels = %d", len(tables))
	}
	if len(tables[1].Rows) != 5 {
		t.Fatalf("node sweep rows = %d", len(tables[1].Rows))
	}
}
