// Package core implements the paper's primary contribution as a
// reusable library: the problem definition (a batch of data-intensive
// tasks with batch-shared I/O to be run on a coupled storage/compute
// cluster), the three-stage scheduling pipeline (sub-batch selection →
// task allocation → runtime ordering of tasks and file transfers), the
// cluster disk-cache state threaded between sub-batches, and the
// Gantt-chart runtime executor of §6.
//
// Concrete scheduling policies (the paper's 0-1 IP and BiPartition
// schemes plus the MinMin and JobDataPresent baselines) live in
// internal/sched/* and plug in through the Scheduler interface.
package core

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/platform"
)

// Problem is a complete scheduling-problem instance.
type Problem struct {
	Batch    *batch.Batch
	Platform *platform.Platform
	// DisableReplication forbids compute-to-compute file copies; every
	// stage-in must come from the storage cluster. Used for the
	// paper's Figure 5(a) "No Replication" comparison.
	DisableReplication bool
}

// Validate checks the instance against the paper's standing
// assumptions: a valid platform, a valid batch, and — in the limited
// disk case — "enough space on each compute node to store all the
// files required for any single task".
func (p *Problem) Validate() error {
	if p.Batch == nil || p.Platform == nil {
		return fmt.Errorf("core: problem needs both a batch and a platform")
	}
	if err := p.Platform.Validate(); err != nil {
		return err
	}
	if err := p.Batch.Finalize(); err != nil {
		return err
	}
	for fi := range p.Batch.Files {
		h := p.Batch.Files[fi].Home
		if h < 0 || h >= p.Platform.NumStorage() {
			return fmt.Errorf("core: file %d homed on unknown storage node %d", fi, h)
		}
	}
	var maxTask int64
	for ti := range p.Batch.Tasks {
		if n := p.Batch.TaskBytes(batch.TaskID(ti)); n > maxTask {
			maxTask = n
		}
	}
	for ci, c := range p.Platform.Compute {
		if c.DiskSpace > 0 && c.DiskSpace < maxTask {
			return fmt.Errorf("core: compute node %d disk (%d B) cannot hold the largest task's files (%d B); the paper assumes it can", ci, c.DiskSpace, maxTask)
		}
	}
	return nil
}

// Unlimited reports whether every compute node has unlimited disk, or
// the aggregate disk can hold one copy of every file in the batch — in
// either case the sub-batch selection stage degenerates to "the whole
// batch" (the paper's §4.1 unlimited disk cache space case).
func (p *Problem) Unlimited() bool {
	agg := p.Platform.AggregateDiskSpace()
	if agg < 0 {
		return true
	}
	return p.Batch.TotalUniqueBytes(nil) <= agg
}

// SourceKind distinguishes the two ways a file reaches a compute node.
type SourceKind int8

const (
	// Remote stages the file from its home storage node (the paper's
	// R variables).
	Remote SourceKind = iota
	// Replica copies the file from another compute node that already
	// holds it (the paper's Y variables).
	Replica
)

// Staging is one planned file movement: stage File onto compute node
// Dest. For Replica, Src is the source compute node; for Remote the
// source is the file's storage home and Src is ignored.
type Staging struct {
	File batch.FileID
	Dest int
	Kind SourceKind
	Src  int
}

// SubPlan is a scheduler's answer for one sub-batch: which pending
// tasks to run now, where each runs, and (optionally) a full staging
// plan. A nil/empty Staging leaves source selection to the runtime
// stage, which picks sources dynamically by earliest transfer
// completion time (the BiPartition/MinMin/JDP mode); a populated
// Staging pins every movement (the IP mode).
type SubPlan struct {
	Tasks   []batch.TaskID
	Node    map[batch.TaskID]int
	Staging []Staging
	// Pinned reports whether Staging is authoritative. When false the
	// executor ignores Staging entirely.
	Pinned bool
	// PreStage lists file movements to perform before task-driven
	// staging begins, independent of task needs. The DataLeastLoaded
	// replication daemon of the JDP baseline expresses its
	// popularity-triggered replicas this way. Destination disk space
	// must be respected by the planner.
	PreStage []Staging
}

// Scheduler is a batch scheduling policy. PlanSubBatch must return a
// plan containing at least one task whose file working set fits the
// current free disk (progress guarantee); Evict runs between
// sub-batches and must free enough compute-cluster disk that the next
// PlanSubBatch can make progress.
type Scheduler interface {
	Name() string
	PlanSubBatch(st *State, pending []batch.TaskID) (*SubPlan, error)
	Evict(st *State, pending []batch.TaskID)
}
