// Package platform models the coupled storage + compute cluster system
// of the paper: a storage cluster that initially holds all files, a
// compute cluster whose nodes have local disk caches of limited size,
// the network paths between them, and (for the OSUMED configuration) a
// shared inter-cluster link that all remote transfers contend on.
//
// Bandwidths follow the paper's §7 test-bed description; the few values
// the paper does not publish (compute-node local-disk bandwidth) are
// stated constants documented in DESIGN.md.
package platform

import (
	"fmt"
	"math"
)

// MB is one megabyte in bytes. The paper quotes all sizes and
// bandwidths in MB, so helpers below use it.
const MB = 1 << 20

// GB is one gigabyte in bytes.
const GB = 1 << 30

// StorageNode is one node of the storage cluster. Files live on
// storage nodes; tasks never execute there.
type StorageNode struct {
	Name string
	// DiskBW is the node's disk read bandwidth in bytes/second.
	DiskBW float64
	// NetBW is the node's network interface bandwidth in bytes/second.
	NetBW float64
}

// ComputeNode is one node of the compute cluster.
type ComputeNode struct {
	Name string
	// DiskSpace is the local disk cache capacity in bytes. Zero or
	// negative means unlimited.
	DiskSpace int64
	// LocalReadBW is the local-disk read bandwidth in bytes/second,
	// used when a task reads its (already staged) input files.
	LocalReadBW float64
	// NetBW is the node's network interface bandwidth in bytes/second.
	NetBW float64
	// ComputeFactor converts input bytes to seconds of computation for
	// the emulated applications (the paper: 0.001 s per MB). Individual
	// tasks carry their own compute seconds; the factor is used by the
	// workload generators.
	ComputeFactor float64
}

// Platform is a full system description.
type Platform struct {
	Name    string
	Compute []ComputeNode
	Storage []StorageNode
	// InterBW is the bandwidth of the network path between a storage
	// node and a compute node, in bytes/second (per-path; the switch is
	// assumed non-blocking unless SharedLinkBW is set).
	InterBW float64
	// IntraBW is the network bandwidth between two compute nodes.
	IntraBW float64
	// SharedLinkBW, when positive, models a single shared link between
	// the storage and compute clusters (the paper's OSUMED↔OSC 100 Mbps
	// link): every remote transfer also serializes on this link.
	SharedLinkBW float64
}

// Validate checks internal consistency.
func (p *Platform) Validate() error {
	if len(p.Compute) == 0 {
		return fmt.Errorf("platform %q: no compute nodes", p.Name)
	}
	if len(p.Storage) == 0 {
		return fmt.Errorf("platform %q: no storage nodes", p.Name)
	}
	if p.InterBW <= 0 || p.IntraBW <= 0 {
		return fmt.Errorf("platform %q: bandwidths must be positive", p.Name)
	}
	for i, c := range p.Compute {
		if c.LocalReadBW <= 0 || c.NetBW <= 0 {
			return fmt.Errorf("platform %q: compute node %d has non-positive bandwidth", p.Name, i)
		}
	}
	for i, s := range p.Storage {
		if s.DiskBW <= 0 || s.NetBW <= 0 {
			return fmt.Errorf("platform %q: storage node %d has non-positive bandwidth", p.Name, i)
		}
	}
	return nil
}

// RemoteBW returns the effective bandwidth of a remote transfer from
// storage node s to compute node c: the minimum of the storage disk
// bandwidth, both NICs, the inter-cluster path, and the shared link if
// present (the paper's "minimum of I/O and network bandwidth between
// any storage and compute node pair").
func (p *Platform) RemoteBW(s, c int) float64 {
	bw := math.Min(p.Storage[s].DiskBW, p.Storage[s].NetBW)
	bw = math.Min(bw, p.Compute[c].NetBW)
	bw = math.Min(bw, p.InterBW)
	if p.SharedLinkBW > 0 {
		bw = math.Min(bw, p.SharedLinkBW)
	}
	return bw
}

// ReplicaBW returns the effective bandwidth of a compute-to-compute
// replication from node i to node j.
func (p *Platform) ReplicaBW(i, j int) float64 {
	bw := math.Min(p.Compute[i].NetBW, p.Compute[j].NetBW)
	return math.Min(bw, p.IntraBW)
}

// MinRemoteBW returns the paper's BW_s: the minimum remote-transfer
// bandwidth over all storage/compute node pairs.
func (p *Platform) MinRemoteBW() float64 {
	bw := math.Inf(1)
	for s := range p.Storage {
		for c := range p.Compute {
			bw = math.Min(bw, p.RemoteBW(s, c))
		}
	}
	return bw
}

// MinReplicaBW returns the paper's BW_c: the minimum compute-to-compute
// bandwidth over distinct node pairs.
func (p *Platform) MinReplicaBW() float64 {
	if len(p.Compute) < 2 {
		return p.IntraBW
	}
	bw := math.Inf(1)
	for i := range p.Compute {
		for j := range p.Compute {
			if i != j {
				bw = math.Min(bw, p.ReplicaBW(i, j))
			}
		}
	}
	return bw
}

// AggregateDiskSpace returns the total compute-cluster disk space, or
// a negative value when any node is unlimited.
func (p *Platform) AggregateDiskSpace() int64 {
	var sum int64
	for _, c := range p.Compute {
		if c.DiskSpace <= 0 {
			return -1
		}
		sum += c.DiskSpace
	}
	return sum
}

// NumCompute returns the number of compute nodes.
func (p *Platform) NumCompute() int { return len(p.Compute) }

// NumStorage returns the number of storage nodes.
func (p *Platform) NumStorage() int { return len(p.Storage) }

// Paper test-bed constants (§7). The compute-node local disk bandwidth
// is not published; 100 MB/s read is a representative 2006-era local
// RAID figure and is held constant across all experiments so that it
// affects every scheduler identically.
const (
	// XIODiskBW is the per-node disk bandwidth of the XIO storage
	// system ("around 210 MB/sec").
	XIODiskBW = 210 * MB
	// OSUMEDDiskBW is the midpoint of the published 18-25 MB/s range.
	OSUMEDDiskBW = 21 * MB
	// OSUMEDLinkBW is the 100 Mbps shared link between the OSUMED and
	// OSC clusters (~12.5 MB/s).
	OSUMEDLinkBW = 12.5 * MB
	// InfinibandBW approximates the 8 Gbps Infiniband fabric of the
	// OSC compute cluster (~1 GB/s).
	InfinibandBW = 1000 * MB
	// FastEthernetBW is 100 Mbps switched Ethernet (~12.5 MB/s).
	FastEthernetBW = 12.5 * MB
	// ComputeLocalReadBW is the assumed compute-node local disk read
	// bandwidth (not published; see DESIGN.md).
	ComputeLocalReadBW = 100 * MB
	// PaperComputeFactor is the published application compute cost:
	// ~0.001 seconds per MB of input data.
	PaperComputeFactor = 0.001 / MB
)

// XIO builds the paper's first system: OSC compute cluster coupled to
// the XIO storage cluster over Infiniband. diskSpace bounds each
// compute node's cache (<=0 for unlimited).
func XIO(computeNodes, storageNodes int, diskSpace int64) *Platform {
	p := &Platform{
		Name:    "OSC+XIO",
		InterBW: InfinibandBW,
		IntraBW: InfinibandBW,
	}
	for i := 0; i < computeNodes; i++ {
		p.Compute = append(p.Compute, ComputeNode{
			Name:          fmt.Sprintf("osc%02d", i),
			DiskSpace:     diskSpace,
			LocalReadBW:   ComputeLocalReadBW,
			NetBW:         InfinibandBW,
			ComputeFactor: PaperComputeFactor,
		})
	}
	for i := 0; i < storageNodes; i++ {
		p.Storage = append(p.Storage, StorageNode{
			Name:   fmt.Sprintf("xio%02d", i),
			DiskBW: XIODiskBW,
			NetBW:  InfinibandBW,
		})
	}
	return p
}

// OSUMED builds the paper's second system: the OSC compute cluster with
// the OSUMED Pentium-III storage cluster reached over a shared 100 Mbps
// link.
func OSUMED(computeNodes, storageNodes int, diskSpace int64) *Platform {
	p := &Platform{
		Name:         "OSC+OSUMED",
		InterBW:      FastEthernetBW,
		IntraBW:      InfinibandBW,
		SharedLinkBW: OSUMEDLinkBW,
	}
	for i := 0; i < computeNodes; i++ {
		p.Compute = append(p.Compute, ComputeNode{
			Name:          fmt.Sprintf("osc%02d", i),
			DiskSpace:     diskSpace,
			LocalReadBW:   ComputeLocalReadBW,
			NetBW:         InfinibandBW,
			ComputeFactor: PaperComputeFactor,
		})
	}
	for i := 0; i < storageNodes; i++ {
		p.Storage = append(p.Storage, StorageNode{
			Name:   fmt.Sprintf("osumed%02d", i),
			DiskBW: OSUMEDDiskBW,
			NetBW:  FastEthernetBW,
		})
	}
	return p
}

// Uniform builds a simple homogeneous platform for tests and examples.
func Uniform(computeNodes, storageNodes int, diskSpace int64, remoteBW, intraBW float64) *Platform {
	p := &Platform{Name: "uniform", InterBW: remoteBW, IntraBW: intraBW}
	for i := 0; i < computeNodes; i++ {
		p.Compute = append(p.Compute, ComputeNode{
			Name:          fmt.Sprintf("c%02d", i),
			DiskSpace:     diskSpace,
			LocalReadBW:   remoteBW * 4,
			NetBW:         intraBW,
			ComputeFactor: PaperComputeFactor,
		})
	}
	for i := 0; i < storageNodes; i++ {
		p.Storage = append(p.Storage, StorageNode{
			Name:   fmt.Sprintf("s%02d", i),
			DiskBW: remoteBW,
			NetBW:  remoteBW,
		})
	}
	return p
}
