package hypergraph

import "runtime"

// This file holds the concurrency substrate of the recursive
// partitioners. The two sub-problems of every bisection step are
// independent — they touch disjoint vertex sets and write disjoint
// entries of the output slice — so they can run on separate goroutines.
//
// Determinism contract: randomness is never drawn from a stream shared
// across branches. Each recursion node derives its own seed from the
// parent's via splitSeed, so the partition depends only on (hypergraph,
// options, seed) — never on how many workers ran or how the goroutines
// interleaved. This is what lets Workers=1 and Workers=N return
// byte-identical partitions.

// workPool bounds the number of extra goroutines a recursive
// partitioner may spawn. The calling goroutine always counts as one
// worker, so a pool for W workers holds W−1 tokens; with W=1 every
// fork degenerates to plain sequential recursion.
type workPool struct {
	sem chan struct{}
}

// newWorkPool returns a pool for the given worker count
// (0 ⇒ runtime.GOMAXPROCS(0)).
func newWorkPool(workers int) *workPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &workPool{sem: make(chan struct{}, workers-1)}
}

// fork runs left and right to completion, running right on a fresh
// goroutine when a worker token is free and inline otherwise. The
// token is held for right's whole subtree, which keeps the live
// goroutine count at the configured bound even though the recursion
// forks again inside both callbacks.
func (p *workPool) fork(left, right func()) {
	select {
	case p.sem <- struct{}{}:
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() { <-p.sem }()
			right()
		}()
		left()
		<-done
	default:
		left()
		right()
	}
}

// splitSeed derives a child RNG seed from a parent seed and a branch
// index (splitmix64 finalizer). Branches 0 and 1 seed the two
// sub-recursions; branch 2 seeds the current node's own RNG, so the
// local bisection's random stream is independent of both subtrees.
func splitSeed(seed int64, branch uint64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + (branch+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
