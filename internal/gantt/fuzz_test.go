package gantt

import "testing"

// FuzzTimelineReserve decodes the input as a sequence of (after, dur)
// slot requests, plays them through EarliestSlot+Reserve, and checks
// the reservation invariants: the returned slot never starts before
// the requested time, Reserve never panics on a slot EarliestSlot
// chose, and the finished timeline passes the Schedule validator
// (sorted, overlap-free, non-negative durations).
func FuzzTimelineReserve(f *testing.F) {
	f.Add([]byte{0, 4, 0, 4, 2, 8})
	f.Add([]byte{10, 1, 0, 1, 5, 3, 5, 3, 0, 16})
	f.Add([]byte{255, 255, 0, 0, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		tl := NewTimeline()
		for i := 0; i+1 < len(data); i += 2 {
			after := float64(data[i]) * 0.5
			dur := float64(data[i+1]%32) * 0.25
			if dur == 0 {
				continue
			}
			s := tl.EarliestSlot(after, dur)
			if s < after-overlapEps {
				t.Fatalf("EarliestSlot(%g, %g) returned %g before the requested time", after, dur, s)
			}
			tl.Reserve(s, dur, int32(i)) // panics on overlap — the fuzzer would catch it
		}
		sched := &Schedule{Compute: []*Timeline{tl}}
		if v := sched.Validate(); len(v) != 0 {
			t.Fatalf("timeline built via EarliestSlot+Reserve fails validation: %v", v)
		}
	})
}
