package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Output formats for cmd/schedlint. Text is the historical format and
// stays byte-identical; JSON and SARIF carry the same findings, in the
// same order, with a stable field order, so CI diffs and PR
// annotations are reproducible artifacts.

// Formats lists the supported -format values.
var Formats = []string{"text", "json", "sarif"}

// relativize rewrites a finding's filename relative to root when it
// lies inside it (matching the CLI's historical text output).
func relativize(root, filename string) string {
	if root == "" {
		return filename
	}
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}

// WriteText writes the classic line-oriented format:
// file:line:col: check: message.
func WriteText(w io.Writer, findings []Finding, root string) error {
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n",
			relativize(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Msg); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is one finding in -format json output. Field order is
// part of the format.
type jsonFinding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

type jsonReport struct {
	Version  string        `json:"version"`
	Checks   []string      `json:"checks"`
	Findings []jsonFinding `json:"findings"`
	Count    int           `json:"count"`
}

// WriteJSON writes the findings as one indented JSON document.
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	rep := jsonReport{
		Version:  "schedlint/1",
		Checks:   CheckNames(),
		Findings: make([]jsonFinding, 0, len(findings)),
		Count:    len(findings),
	}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			Check: f.Check, File: relativize(root, f.Pos.Filename),
			Line: f.Pos.Line, Column: f.Pos.Column, Message: f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// SARIF 2.1.0 subset — enough for GitHub code scanning and other CI
// annotators: one run, one driver, one rule per check, one result per
// finding with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// ruleDescriptions gives every rule id (runnable checks plus the
// strict-mode hygiene categories) its one-line SARIF description.
var ruleDescriptions = map[string]string{
	"detrange":     "map iteration feeding order-dependent state in a deterministic package",
	"nowallclock":  "wall-clock time or the global math/rand stream in a deterministic package",
	"mergeorder":   "worker results merged in goroutine-scheduling order",
	"floataccum":   "float accumulation in randomized map-iteration order",
	"tracepurity":  "wall-clock read outside internal/obs, the designated clock boundary",
	"ordertaint":   "order-tainted value committed to schedule state (interprocedural dataflow)",
	"lockorder":    "lock-acquisition cycle: a deadlock the race detector cannot see",
	"allowstale":   "schedlint:allow annotation that suppresses no finding",
	"allowunknown": "schedlint:allow annotation naming an unregistered check",
}

// WriteSARIF writes the findings as a SARIF 2.1.0 document. URIs are
// slash-separated and root-relative, rules cover every registered
// check plus the hygiene categories, and both rules and results keep
// the findings' deterministic order.
func WriteSARIF(w io.Writer, findings []Finding, root string) error {
	var rules []sarifRule
	for _, name := range append(CheckNames(), hygieneChecks...) {
		rules = append(rules, sarifRule{ID: name,
			ShortDescription: sarifMessage{Text: ruleDescriptions[name]}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relativize(root, f.Pos.Filename))},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "schedlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
