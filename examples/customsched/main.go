// Custom scheduler: the core.Scheduler interface accepts any policy.
// This example implements a deliberately naive round-robin scheduler
// — tasks dealt to nodes in arrival order, popularity eviction — and
// measures how much the paper's affinity-aware BiPartition scheduler
// gains over it on a batch-shared workload.
package main

import (
	"fmt"
	"log"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/eviction"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
	"repro/internal/workload"
)

// roundRobin deals pending tasks to compute nodes in order, packing
// each sub-batch until disks fill.
type roundRobin struct{}

func (roundRobin) Name() string { return "RoundRobin" }

func (roundRobin) Evict(st *core.State, pending []batch.TaskID) {
	eviction.Popularity(st, pending)
}

func (roundRobin) PlanSubBatch(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	plan := &core.SubPlan{Node: make(map[batch.TaskID]int)}
	C := st.P.Platform.NumCompute()
	free := make([]int64, C)
	holds := st.PresentMatrix()
	for i := range free {
		free[i] = st.Free(i)
	}
	next := 0
	for _, t := range pending {
		placed := false
		for try := 0; try < C; try++ {
			n := (next + try) % C
			var need int64
			for _, f := range st.P.Batch.Tasks[t].Files {
				if !holds[n][f] {
					need += st.P.Batch.FileSize(f)
				}
			}
			if need > free[n] {
				continue
			}
			plan.Tasks = append(plan.Tasks, t)
			plan.Node[t] = n
			free[n] -= need
			for _, f := range st.P.Batch.Tasks[t].Files {
				holds[n][f] = true
			}
			next = (n + 1) % C
			placed = true
			break
		}
		_ = placed // unplaced tasks wait for the next sub-batch
	}
	if len(plan.Tasks) == 0 {
		return nil, fmt.Errorf("roundrobin: nothing fits")
	}
	return plan, nil
}

func main() {
	b, err := workload.Image(workload.ImageConfig{NumTasks: 120, Overlap: workload.HighOverlap, NumStorage: 4, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []core.Scheduler{roundRobin{}, bipart.New(2)} {
		// A cluster whose compute fabric is modest (50 MB/s), so every
		// redundant replica costs real time.
		p := &core.Problem{Batch: b, Platform: platform.Uniform(6, 4, 0, 25*platform.MB, 50*platform.MB)}
		res, err := core.Run(p, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s batch time %7.1f s   remote %4d   replicas %4d\n",
			res.Scheduler, res.Makespan, res.RemoteTransfers, res.ReplicaTransfers)
	}
	fmt.Println("\nRound-robin ignores file affinity, so shared files are staged to many nodes;")
	fmt.Println("BiPartition co-locates the tasks that share them.")
}
