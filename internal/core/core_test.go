package core_test

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/workload"
)

func schedulers() []core.Scheduler {
	return []core.Scheduler{minmin.New(), jdp.New(), bipart.New(1)}
}

func smallProblem(t *testing.T, diskSpace int64) *core.Problem {
	t.Helper()
	b, err := workload.Sat(workload.SatConfig{NumTasks: 24, Overlap: workload.HighOverlap, NumStorage: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{Batch: b, Platform: platform.XIO(3, 2, diskSpace)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunUnlimitedDisk(t *testing.T) {
	p := smallProblem(t, 0)
	for _, s := range schedulers() {
		res, err := core.RunChecked(p, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%s: non-positive makespan %v", s.Name(), res.Makespan)
		}
		if res.SubBatches != 1 {
			t.Errorf("%s: expected a single sub-batch with unlimited disk, got %d", s.Name(), res.SubBatches)
		}
		if res.TaskCount != 24 {
			t.Errorf("%s: task count %d", s.Name(), res.TaskCount)
		}
		if res.RemoteTransfers == 0 {
			t.Errorf("%s: no remote transfers recorded", s.Name())
		}
	}
}

func TestRunLimitedDiskForcesSubBatches(t *testing.T) {
	// Per-node disk that cannot hold the whole working set at once.
	b, err := workload.Sat(workload.SatConfig{NumTasks: 30, Overlap: workload.LowOverlap, NumStorage: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	total := b.TotalUniqueBytes(nil)
	per := total / 6 // 3 nodes → aggregate half the working set
	p := &core.Problem{Batch: b, Platform: platform.XIO(3, 2, per)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range schedulers() {
		res, err := core.RunChecked(p, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.SubBatches < 2 {
			t.Errorf("%s: expected multiple sub-batches, got %d", s.Name(), res.SubBatches)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: non-positive makespan", s.Name())
		}
	}
}

func TestRunDisableReplication(t *testing.T) {
	p := smallProblem(t, 0)
	p.DisableReplication = true
	for _, s := range schedulers() {
		res, err := core.RunChecked(p, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.ReplicaTransfers != 0 {
			t.Errorf("%s: %d replica transfers despite DisableReplication", s.Name(), res.ReplicaTransfers)
		}
	}
}

func TestReplicationReducesMakespanOnSlowStorage(t *testing.T) {
	// On an OSUMED-like platform (slow shared storage link) replication
	// must help a high-overlap workload — the paper's Figure 5(a).
	// More compute nodes than hot-spot groups, as in the paper's 8-node
	// experiment, so tasks sharing files necessarily span nodes.
	b, err := workload.Image(workload.ImageConfig{NumTasks: 48, Overlap: workload.HighOverlap, NumStorage: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pf := platform.OSUMED(8, 2, 0)
	with := &core.Problem{Batch: b, Platform: pf}
	without := &core.Problem{Batch: b, Platform: pf, DisableReplication: true}
	s := bipart.New(5)
	rw, err := core.RunChecked(with, s)
	if err != nil {
		t.Fatal(err)
	}
	rwo, err := core.RunChecked(without, s)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Makespan >= rwo.Makespan {
		t.Errorf("replication did not help: with=%v without=%v", rw.Makespan, rwo.Makespan)
	}
}

func TestStateAccounting(t *testing.T) {
	b := batch.New()
	f1 := b.AddFile("f1", 100, 0)
	f2 := b.AddFile("f2", 200, 0)
	b.AddTask("t", 1, []batch.FileID{f1, f2})
	p := &core.Problem{Batch: b, Platform: platform.Uniform(2, 1, 1000, 10, 100)}
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddFile(0, f1, 1); err != nil {
		t.Fatal(err)
	}
	if !st.Holds(0, f1) || st.Holds(1, f1) {
		t.Fatal("holds wrong")
	}
	if st.Used(0) != 100 || st.Free(0) != 900 {
		t.Fatalf("used=%d free=%d", st.Used(0), st.Free(0))
	}
	if st.NumCopies(f1) != 1 || st.NumCopies(f2) != 0 {
		t.Fatal("copy counts wrong")
	}
	st.Evict(0, f1)
	if st.Holds(0, f1) || st.Used(0) != 0 || st.Evictions != 1 {
		t.Fatal("eviction accounting wrong")
	}
	if st.AccessFreq(f1) != 1 {
		t.Fatalf("access freq %d", st.AccessFreq(f1))
	}
	st.Done[0] = true
	if st.AccessFreq(f1) != 0 {
		t.Fatalf("access freq after done %d", st.AccessFreq(f1))
	}
}

func TestValidateRejectsTooSmallDisk(t *testing.T) {
	b := batch.New()
	f := b.AddFile("f", 10*platform.MB, 0)
	b.AddTask("t", 1, []batch.FileID{f})
	p := &core.Problem{Batch: b, Platform: platform.Uniform(1, 1, 5*platform.MB, 10*platform.MB, 100*platform.MB)}
	if err := p.Validate(); err == nil {
		t.Fatal("expected validation error: node disk smaller than a task's working set")
	}
}
