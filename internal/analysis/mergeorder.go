package analysis

import (
	"go/ast"
	"go/types"
)

// runMergeOrder enforces the deterministic-merge pattern PR 1
// established for fan-out code: a worker goroutine may only publish
// results into shared memory at an address derived from its own
// identity (`results[w] = …` with w the worker index), so that the
// merged value is independent of goroutine interleaving. Flagged
// inside `go func(){…}` bodies:
//
//   - assignment or append to a captured variable as a whole
//     (`shared = append(shared, r)`, `best = r`, `count++`);
//   - writes into a captured map (scheduling-order merge and a data
//     race at once);
//   - writes into a captured slice at an index not derived from any
//     worker-local variable (`shared[0] = r`);
//   - sends of results on captured channels (receive order is
//     scheduling order). Channels of struct{} are exempt — those are
//     semaphores/latches, not result carriers.
//
// Worker-local means: declared inside the goroutine literal, a
// parameter of it, or a per-iteration variable of a loop enclosing the
// `go` statement (Go ≥1.22 semantics).
func runMergeOrder(p *pass) {
	for _, f := range p.pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
					p.checkGoroutine(lit, loopVarsEnclosing(p, stack))
				}
			}
			return true
		})
	}
}

// loopVarsEnclosing collects the per-iteration variables (range
// key/value, for-init vars) of every loop enclosing the current node.
func loopVarsEnclosing(p *pass, stack []ast.Node) map[types.Object]bool {
	vars := map[types.Object]bool{}
	addDefs := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.pkg.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	for _, n := range stack {
		switch st := n.(type) {
		case *ast.RangeStmt:
			if st.Key != nil {
				addDefs(st.Key)
			}
			if st.Value != nil {
				addDefs(st.Value)
			}
		case *ast.ForStmt:
			if init, ok := st.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					addDefs(lhs)
				}
			}
		}
	}
	return vars
}

func (p *pass) checkGoroutine(lit *ast.FuncLit, loopVars map[types.Object]bool) {
	local := func(obj types.Object) bool {
		return obj == nil || declaredWithin(obj, lit.Pos(), lit.End()) || loopVars[obj]
	}
	// indexIsLocal reports whether an index expression mentions at
	// least one worker-local variable — the "own index" criterion.
	indexIsLocal := func(idx ast.Expr) bool {
		ok := false
		ast.Inspect(idx, func(n ast.Node) bool {
			if id, isIdent := n.(*ast.Ident); isIdent {
				if obj := p.objectOf(id); obj != nil && (declaredWithin(obj, lit.Pos(), lit.End()) || loopVars[obj]) {
					ok = true
				}
			}
			return !ok
		})
		return ok
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				root := rootIdent(lhs)
				if root == nil || root.Name == "_" {
					continue
				}
				obj := p.objectOf(root)
				if local(obj) {
					continue
				}
				if ie, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if isMapType(p.typeOf(ie.X)) {
						p.reportf(lhs.Pos(), "goroutine writes into shared map %s: merge order follows goroutine scheduling (and races); publish into a slice slot owned by this worker instead", root.Name)
					} else if !indexIsLocal(ie.Index) {
						p.reportf(lhs.Pos(), "goroutine writes shared slice %s at an index not derived from this worker's identity; use the worker index so the merge is deterministic", root.Name)
					}
					continue
				}
				if isAppendTo(p, st, i, obj) {
					p.reportf(lhs.Pos(), "goroutine appends worker results to shared %s: element order follows goroutine scheduling; write to results[w] for worker w and merge in index order", root.Name)
				} else {
					p.reportf(lhs.Pos(), "goroutine assigns to shared %s: last-writer-wins depends on goroutine scheduling; publish per-worker results and reduce deterministically after Wait", root.Name)
				}
			}
		case *ast.IncDecStmt:
			if root := rootIdent(st.X); root != nil && !local(p.objectOf(root)) {
				p.reportf(st.Pos(), "goroutine mutates shared %s: result depends on interleaving; keep per-worker counters and sum them after Wait", root.Name)
			}
		case *ast.SendStmt:
			root := rootIdent(st.Chan)
			if root == nil {
				return true
			}
			obj := p.objectOf(root)
			if local(obj) {
				return true
			}
			if ch, ok := p.typeOf(st.Chan).Underlying().(*types.Chan); ok {
				if s, ok := ch.Elem().Underlying().(*types.Struct); ok && s.NumFields() == 0 {
					return true // struct{} tokens: semaphore/latch, not a result
				}
			}
			p.reportf(st.Pos(), "goroutine sends results on shared channel %s: receive order follows goroutine scheduling; write into an index-addressed slice (or tag values with the worker index and reorder)", root.Name)
		}
		return true
	})
}

// isAppendTo reports whether the i-th assignment's RHS is an append
// rooted at the same object as the LHS.
func isAppendTo(p *pass, st *ast.AssignStmt, i int, target types.Object) bool {
	if len(st.Rhs) != len(st.Lhs) {
		return false
	}
	call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := p.objectOf(fn).(*types.Builtin); !isBuiltin {
		return false
	}
	root := rootIdent(call.Args[0])
	return root != nil && p.objectOf(root) == target
}
