// Package journal records decision provenance: an append-only,
// strictly-ordered event log of every pipeline decision — per-task
// placement rationale (candidates considered, scores, rejections),
// file staging/replication source choices with the alternatives they
// beat, eviction victims with their policy scores, and fault/recovery
// events.
//
// The journal is the introspection substrate the explain CLI and the
// live event bus are built on, and the determinism contract extends to
// it: every timestamp is simulated time, events are emitted only from
// the sequential sections of the pipeline (the run loop, plan
// construction, the commit paths of the §6 executor), and per-cell
// recorders are merged in deterministic index order — so the JSONL
// bytes for a fixed seed are identical at any -workers count.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event kinds. One Event carries exactly one non-nil payload,
// matching its Kind.
const (
	KindRunStart  = "run_start" // Run: a batch run begins
	KindPlan      = "plan"      // Plan: one sub-batch planned (summary)
	KindPlace     = "place"     // Place: one task→node decision with rationale
	KindReplicate = "replicate" // Replicate: a planner-directed replication decision

	KindStage  = "stage"   // Stage: one committed file transfer
	KindExec   = "exec"    // Exec: one committed task execution
	KindEvict  = "evict"   // Evict: one file copy evicted, with score
	KindFault  = "fault"   // Fault: failure/recovery activity
	KindCell   = "cell"    // Run: experiment-harness cell marker
	KindRunEnd = "run_end" // Run: the batch run finished

	KindSpecLaunch = "spec_launch" // Spec: a speculative twin forked
	KindSpecWin    = "spec_win"    // Spec: the first finisher decided the task
	KindSpecCancel = "spec_cancel" // Spec: the losing attempt cancelled
)

// Event is one journal entry. T is absolute simulated seconds (never
// wall clock). Round is the sub-batch ordinal the event belongs to.
// Exactly one payload pointer is set, per Kind; pointers keep the
// JSONL lines compact while zero-valued IDs (task 0, node 0) survive
// round-trips.
type Event struct {
	Seq   int     `json:"seq"`
	T     float64 `json:"t"`
	Kind  string  `json:"kind"`
	Round int     `json:"round"`

	Place     *Place     `json:"place,omitempty"`
	Replicate *Replicate `json:"replicate,omitempty"`
	Stage     *Stage     `json:"stage,omitempty"`
	Exec      *Exec      `json:"exec,omitempty"`
	Evict     *Evict     `json:"evict,omitempty"`
	Fault     *Fault     `json:"fault,omitempty"`
	Plan      *Plan      `json:"plan,omitempty"`
	Run       *Run       `json:"run,omitempty"`
	Spec      *Spec      `json:"spec,omitempty"`
}

// Candidate is one node a scheduler considered for a task placement.
type Candidate struct {
	Node int `json:"node"`
	// Score is the scheduler's figure of merit for this candidate
	// (lower is better for completion-time scores).
	Score float64 `json:"score"`
	// Fits reports whether the task's working set fit the node's disk
	// at decision time.
	Fits bool `json:"fits"`
}

// Place records why a task was mapped to its node.
type Place struct {
	Task int `json:"task"`
	Node int `json:"node"`
	// Policy names the deciding rule, e.g. "minmin-ect",
	// "jdp-data-present", "kway-partition", "ip-allocation".
	Policy string `json:"policy"`
	// Score is the chosen node's score under Policy (0 when the policy
	// has no per-node score, e.g. partition assignment).
	Score float64 `json:"score"`
	// Candidates lists the alternatives considered, including the
	// chosen node, in node order. Empty when the policy does not
	// enumerate per-node alternatives.
	Candidates []Candidate `json:"candidates,omitempty"`
	// Reason is a short human-readable rationale.
	Reason string `json:"reason,omitempty"`
}

// Replicate records a planner-directed replication decision (made
// before execution; the matching Stage event records the commit).
type Replicate struct {
	File int `json:"file"`
	Dest int `json:"dest"`
	// Src is the source compute node, -1 for a remote push from the
	// file's storage home.
	Src    int    `json:"src"`
	Policy string `json:"policy"`
	// Popularity/Threshold document a popularity-triggered decision
	// (the JDP DataLeastLoaded daemon).
	Popularity int    `json:"popularity,omitempty"`
	Threshold  int    `json:"threshold,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// SourceAlt is one staging source considered and its transfer
// completion time; Src -1 means the file's storage home.
type SourceAlt struct {
	Src int     `json:"src"`
	TCT float64 `json:"tct"`
}

// Stage records one committed file transfer.
type Stage struct {
	File int `json:"file"`
	Dest int `json:"dest"`
	// Src is the source compute node for replica copies, -1 for
	// remote stagings from the storage cluster.
	Src  int `json:"src"`
	Home int `json:"home"`
	// Kind is "remote" or "replica".
	Kind  string  `json:"kind"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Bytes int64   `json:"bytes"`
	// Cause is "task" (staged on demand for Task), "prestage" (a
	// planner-directed movement, e.g. the JDP replication daemon), or
	// "retry" (a fault-recovery re-attempt for Task).
	Cause string `json:"cause"`
	// Task is the task whose inputs forced this transfer, -1 for
	// pre-staging.
	Task int `json:"task"`
	// Attempt numbers fault-injected attempts (1 = first try); 0 on
	// fault-free runs.
	Attempt int `json:"attempt,omitempty"`
	// Alternatives lists the sources evaluated when this transfer's
	// source was chosen dynamically (min-TCT, §6), including the
	// winner. Empty for pinned-plan and retry transfers.
	Alternatives []SourceAlt `json:"alternatives,omitempty"`
}

// Exec records one committed task execution.
type Exec struct {
	Task   int     `json:"task"`
	Node   int     `json:"node"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Inputs []int   `json:"inputs,omitempty"`
}

// Evict records one evicted file copy with the policy score that
// condemned it (lower scores are evicted first).
type Evict struct {
	Node   int     `json:"node"`
	File   int     `json:"file"`
	Bytes  int64   `json:"bytes"`
	Score  float64 `json:"score"`
	Policy string  `json:"policy"`
}

// Fault classes.
const (
	FaultTransferFail = "transfer_fail" // a transfer attempt died partway
	FaultCrash        = "crash"         // a node crashed (boundary consumption)
	FaultStraggler    = "straggler"     // an execution was stretched
	FaultRequeue      = "requeue"       // a task was interrupted and re-queued
	FaultAbandon      = "abandon"       // a task's retry budget ran out
)

// Fault records failure/recovery activity. Task and File are -1 when
// not applicable.
type Fault struct {
	Class   string  `json:"class"`
	Node    int     `json:"node"`
	Task    int     `json:"task"`
	File    int     `json:"file"`
	Attempt int     `json:"attempt,omitempty"`
	Factor  float64 `json:"factor,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// Spec records speculative-execution activity for one task: the
// launch of a duplicate attempt (spec_launch, with the candidate
// nodes considered), the first-finisher decision (spec_win) and the
// cancellation of the losing attempt (spec_cancel). All times are
// absolute simulated seconds; PrimaryEnd/TwinEnd are −1 when that
// attempt never finishes (crash-killed) — JSON has no +Inf.
type Spec struct {
	Task int `json:"task"`
	// Node is the primary attempt's compute node, Twin the duplicate's.
	Node int `json:"node"`
	Twin int `json:"twin"`
	// Policy names the speculation policy that fired; Threshold is its
	// elapsed-time watchdog threshold t* in seconds.
	Policy    string  `json:"policy,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// PrimaryEnd/TwinEnd are the attempts' projected finish times
	// (−1 = never finishes).
	PrimaryEnd float64 `json:"primary_end,omitempty"`
	TwinEnd    float64 `json:"twin_end,omitempty"`
	// Winner is "primary", "twin", or "none" (both attempts died).
	Winner string `json:"winner,omitempty"`
	// WastedS is the port time the cancelled attempt burnt.
	WastedS float64 `json:"wasted_s,omitempty"`
	// Candidates lists the twin hosts evaluated at launch (score =
	// projected twin completion time), including the chosen node.
	Candidates []Candidate `json:"candidates,omitempty"`
	// Reason is a short human-readable rationale.
	Reason string `json:"reason,omitempty"`
}

// Plan summarizes one sub-batch plan. The round's Place events
// (emitted by the scheduler while planning) precede it.
type Plan struct {
	Sched     string `json:"sched"`
	Pending   int    `json:"pending"`
	Planned   int    `json:"planned"`
	Pinned    bool   `json:"pinned,omitempty"`
	PreStages int    `json:"prestages,omitempty"`
}

// Run marks a batch run's start/end (or an experiment cell boundary).
type Run struct {
	Sched      string  `json:"sched"`
	Tasks      int     `json:"tasks,omitempty"`
	Status     string  `json:"status,omitempty"`
	Makespan   float64 `json:"makespan,omitempty"`
	SubBatches int     `json:"subbatches,omitempty"`
	// Label identifies an experiment cell when the harness merges
	// per-cell journals.
	Label string `json:"label,omitempty"`
}

// Recorder collects events in emission order. All methods are safe
// for concurrent use and no-ops on a nil receiver, so call sites
// never guard against an absent journal.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	tap    func(Event)
}

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether events will be kept. It lets call sites
// skip building expensive rationale payloads when no journal is
// attached.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit appends ev, assigning the next sequence number. The tap, if
// set, observes the event synchronously in sequence order.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev.Seq = len(r.events)
	r.events = append(r.events, ev)
	tap := r.tap
	if tap != nil {
		// Called under the lock so taps observe events in strict
		// sequence order. Taps must be fast, must not block, and must
		// not call back into the Recorder (the introspect bus hands
		// events to bounded buffers and drops on overflow).
		tap(ev)
	}
	r.mu.Unlock()
}

// SetTap installs fn as the synchronous event observer (nil removes
// it). See Emit for the tap contract.
func (r *Recorder) SetTap(fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tap = fn
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events in sequence order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Merge appends all of o's events to r in o's recorded order,
// re-assigning sequence numbers. Callers must merge per-cell
// recorders in deterministic index order (the experiment harness
// does), which keeps merged bytes identical at any worker count.
//
// o is snapshotted under its own lock before r's lock is taken, so
// the two mutexes are never held together (lockorder-safe, same
// pattern as Metrics.Merge).
func (r *Recorder) Merge(o *Recorder) {
	if r == nil || o == nil {
		return
	}
	events := o.Events()
	r.mu.Lock()
	for _, ev := range events {
		ev.Seq = len(r.events)
		r.events = append(r.events, ev)
		if r.tap != nil {
			r.tap(ev)
		}
	}
	r.mu.Unlock()
}

// WriteJSONL writes one compact JSON object per line in sequence
// order. Field order is fixed by the struct definitions and all
// timestamps are simulated, so the bytes for a fixed seed are
// identical at any worker count.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range r.Events() {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("journal: marshal event %d: %w", ev.Seq, err)
		}
		b = append(b, '\n')
		if _, err := bw.Write(b); err != nil {
			return fmt.Errorf("journal: write event %d: %w", ev.Seq, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	return nil
}

// ReadJSONL parses a journal written by WriteJSONL. Blank lines are
// skipped; any other malformed line is an error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	return out, nil
}
