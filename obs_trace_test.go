package repro

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
	"repro/internal/sched/ipsched"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/workload"
)

var updateTraces = flag.Bool("update", false, "rewrite the golden trace files under testdata/traces")

// traceProblem is the same 6-task workload the determinism tests pin:
// small enough that the IP portfolio exhausts its search inside the
// budget, so every scheduler's simulated timeline is a pure function
// of the seed.
func traceProblem(t *testing.T) *core.Problem {
	t.Helper()
	b, err := workload.Image(workload.ImageConfig{
		NumTasks: 6, Overlap: workload.HighOverlap, NumStorage: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{Batch: b, Platform: platform.OSUMED(2, 2, 0)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// traceSchedulers instantiates the four schemes with the tracer
// attached where the scheduler supports one.
func traceSchedulers(tr obs.Tracer) []struct {
	name  string
	sched core.Scheduler
} {
	ip := ipsched.New(7)
	ip.AllocBudget = time.Minute
	ip.SelectBudget = time.Minute
	ip.Workers = 4
	ip.Trace = tr
	bp := bipart.New(7)
	bp.Workers = 4
	bp.Trace = tr
	return []struct {
		name  string
		sched core.Scheduler
	}{
		{"ip", ip},
		{"bipartition", bp},
		{"minmin", minmin.New()},
		{"jobdatapresent", jdp.New()},
	}
}

// TestTraceGolden pins the sim-domain Chrome trace of each scheduler
// on the 6-task workload byte-for-byte. Sim events carry simulated
// timestamps only, and the export sorts canonically, so the golden
// bytes are independent of machine speed and worker count.
// Regenerate with: go test -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	for _, s := range traceSchedulers(nil) {
		// One fresh tracer per scheduler: the tracer passed through
		// traceSchedulers is per-run state, so rebuild the set each
		// iteration with only this scheme instrumented.
		tr := obs.NewSimOnly()
		var sched core.Scheduler
		for _, ss := range traceSchedulers(tr) {
			if ss.name == s.name {
				sched = ss.sched
			}
		}
		if _, err := core.RunObserved(traceProblem(t), sched, core.Observer{Trace: tr}); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("%s: export: %v", s.name, err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("%s: export is not valid JSON", s.name)
		}
		golden := filepath.Join("testdata", "traces", s.name+".trace.json")
		if *updateTraces {
			if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s: missing golden file (run with -update): %v", s.name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: trace differs from %s (regenerate with -update if the change is intended)", s.name, golden)
		}
	}
}

// TestObservedRunIdenticalToPlain is the determinism-preservation gate
// of the observability layer: a fully instrumented run (tracer +
// metrics on every hook) must produce the same Result as a plain one.
// Observation is write-only by construction; this test keeps it so.
func TestObservedRunIdenticalToPlain(t *testing.T) {
	for _, plain := range traceSchedulers(nil) {
		res0, err := core.Run(traceProblem(t), plain.sched)
		if err != nil {
			t.Fatalf("%s: plain: %v", plain.name, err)
		}
		tr := obs.New()
		met := obs.NewMetrics()
		var sched core.Scheduler
		for _, ss := range traceSchedulers(tr) {
			if ss.name == plain.name {
				sched = ss.sched
			}
		}
		res1, err := core.RunObserved(traceProblem(t), sched, core.Observer{Trace: tr, Metrics: met})
		if err != nil {
			t.Fatalf("%s: observed: %v", plain.name, err)
		}
		sameResult(t, plain.name, res0, res1)
		if met.Snapshot().Counters["core.tasks"] != int64(res1.TaskCount) {
			t.Errorf("%s: metrics saw %d tasks, result has %d", plain.name,
				met.Snapshot().Counters["core.tasks"], res1.TaskCount)
		}
	}
}
