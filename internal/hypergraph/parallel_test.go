package hypergraph

import (
	"math/rand"
	"testing"
)

// TestKWayWorkersInvariant demands the same partition from the
// sequential and the concurrent recursion: randomness is split per
// branch from the seed, never drawn from a shared stream, so the
// worker count must not leak into the result.
func TestKWayWorkersInvariant(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		h := randomHypergraph(rand.New(rand.NewSource(seed)), 300, 500)
		var ref []int
		for _, workers := range []int{1, 2, 4, 8} {
			part, err := PartitionKWayOpt(h, 8, KWayOptions{Eps: 0.1, Seed: seed, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = part
				continue
			}
			for v := range part {
				if part[v] != ref[v] {
					t.Fatalf("seed %d workers %d: partition differs from sequential at vertex %d", seed, workers, v)
				}
			}
		}
	}
}

// TestBINWWorkersInvariant is the same contract for the BINW
// partition, including the part numbering: concurrent leaves must be
// renumbered into the sequential left-to-right order.
func TestBINWWorkersInvariant(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		h := randomHypergraph(rand.New(rand.NewSource(seed*3)), 200, 300)
		bound := incidentTotal(h) / 3
		var ref []int
		refParts := 0
		for _, workers := range []int{1, 2, 4} {
			part, np, err := PartitionBINWOpt(h, bound, BINWOptions{Eps: 0.2, Seed: seed, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref, refParts = part, np
				continue
			}
			if np != refParts {
				t.Fatalf("seed %d workers %d: %d parts vs sequential %d", seed, workers, np, refParts)
			}
			for v := range part {
				if part[v] != ref[v] {
					t.Fatalf("seed %d workers %d: part id differs at vertex %d", seed, workers, v)
				}
			}
		}
	}
}

// TestKWayRepeatedRunsIdentical guards against any hidden global
// state: two runs with identical options must agree exactly.
func TestKWayRepeatedRunsIdentical(t *testing.T) {
	h := randomHypergraph(rand.New(rand.NewSource(9)), 400, 700)
	a, err := PartitionKWayOpt(h, 16, KWayOptions{Eps: 0.1, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionKWayOpt(h, 16, KWayOptions{Eps: 0.1, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("repeated run differs at vertex %d", v)
		}
	}
}
