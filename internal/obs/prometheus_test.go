package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]+)"\})? (\S+)$`)
)

// parsePromText is a strict checker for the subset of the Prometheus
// text exposition format WritePrometheus emits. It returns the sample
// lines keyed by full series name and fails the test on any malformed
// line, undeclared sample, or non-cumulative histogram.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	declared := map[string]string{}
	lastBucket := map[string]float64{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			declared[m[1]] = m[2]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d not valid prometheus text: %q", ln+1, line)
		}
		name, le, raw := m[1], m[3], m[4]
		var v float64
		var err error
		if raw == "+Inf" || raw == "-Inf" || raw == "NaN" {
			v = 0
		} else if v, err = strconv.ParseFloat(raw, 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, raw, err)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && declared[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := declared[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		if le != "" {
			if declared[base] != "histogram" {
				t.Fatalf("line %d: le label on non-histogram %q", ln+1, name)
			}
			if v < lastBucket[base] {
				t.Fatalf("line %d: histogram %s buckets not cumulative (%g after %g)", ln+1, base, v, lastBucket[base])
			}
			lastBucket[base] = v
			samples[name+"{le="+le+"}"] = v
			continue
		}
		samples[name] = v
	}
	return samples
}

func TestWritePrometheusParses(t *testing.T) {
	m := NewMetrics()
	m.Count("remote_bytes", 1<<20)
	m.Count("weird/name.with-chars", 3)
	m.SetGauge("makespan_s", 42.5)
	for i := 1; i <= 100; i++ {
		m.Observe("plan_ms", float64(i))
	}
	var buf bytes.Buffer
	if err := m.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, buf.String())
	if samples["remote_bytes"] != 1<<20 {
		t.Errorf("remote_bytes = %g", samples["remote_bytes"])
	}
	if samples["weird_name_with_chars"] != 3 {
		t.Errorf("sanitized counter missing: %v", samples)
	}
	if samples["makespan_s"] != 42.5 {
		t.Errorf("makespan_s = %g", samples["makespan_s"])
	}
	if samples["plan_ms_count"] != 100 || samples["plan_ms_sum"] != 5050 {
		t.Errorf("histogram count/sum: %g/%g", samples["plan_ms_count"], samples["plan_ms_sum"])
	}
	if samples[`plan_ms_bucket{le=+Inf}`] != 100 {
		t.Errorf("+Inf bucket = %g", samples[`plan_ms_bucket{le=+Inf}`])
	}
	// 1..100 in power-of-two buckets: le="64" holds 64 observations.
	if samples[`plan_ms_bucket{le=64}`] != 64 {
		t.Errorf("le=64 bucket = %g, want 64", samples[`plan_ms_bucket{le=64}`])
	}

	// Determinism: two writes, identical bytes.
	var buf2 bytes.Buffer
	if err := m.Snapshot().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("prometheus output not deterministic")
	}
}
