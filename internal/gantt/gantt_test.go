package gantt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReserveAndSlots(t *testing.T) {
	tl := NewTimeline()
	if got := tl.EarliestSlot(0, 5); got != 0 {
		t.Fatalf("empty timeline slot = %v", got)
	}
	tl.Reserve(0, 5, 1)  // [0,5)
	tl.Reserve(10, 5, 2) // [10,15)
	if got := tl.EarliestSlot(0, 5); got != 5 {
		t.Fatalf("slot(0,5) = %v, want 5 (gap [5,10))", got)
	}
	if got := tl.EarliestSlot(0, 6); got != 15 {
		t.Fatalf("slot(0,6) = %v, want 15", got)
	}
	if got := tl.EarliestSlot(12, 1); got != 15 {
		t.Fatalf("slot(12,1) = %v, want 15", got)
	}
	if tl.FinishTime() != 15 {
		t.Fatalf("finish = %v", tl.FinishTime())
	}
	if tl.BusyTime() != 10 {
		t.Fatalf("busy = %v", tl.BusyTime())
	}
}

func TestReserveOverlapPanics(t *testing.T) {
	tl := NewTimeline()
	tl.Reserve(0, 5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overlapping reservation")
		}
	}()
	tl.Reserve(4, 2, 2)
}

func TestAbuttingReservationsAllowed(t *testing.T) {
	tl := NewTimeline()
	tl.Reserve(0, 5, 1)
	tl.Reserve(5, 5, 2) // must not panic
	if tl.Len() != 2 {
		t.Fatal("expected two intervals")
	}
}

func TestOverlayDoesNotMutateBase(t *testing.T) {
	tl := NewTimeline()
	tl.Reserve(0, 5, 1)
	ov := NewOverlay(tl)
	ov.Add(5, 5)
	if got := ov.EarliestSlot(0, 3); got != 10 {
		t.Fatalf("overlay slot = %v, want 10", got)
	}
	if got := tl.EarliestSlot(0, 3); got != 5 {
		t.Fatalf("base slot = %v, want 5 (overlay leaked)", got)
	}
}

func TestMultiSlot(t *testing.T) {
	a, b := NewTimeline(), NewTimeline()
	a.Reserve(0, 10, 1) // a busy [0,10)
	b.Reserve(12, 4, 2) // b busy [12,16)
	// Common slot of length 3 after 0: a free at 10, but b blocks
	// [12,16): [10,13) collides, so 16.
	if got := MultiSlot(0, 3, a, b); got != 16 {
		t.Fatalf("multislot = %v, want 16", got)
	}
	if got := MultiSlot(0, 2, a, b); got != 10 {
		t.Fatalf("multislot = %v, want 10 ([10,12) fits)", got)
	}
}

// TestQuickNoOverlaps property-tests that any sequence of
// EarliestSlot+Reserve operations keeps intervals disjoint and sorted.
func TestQuickNoOverlaps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		for i := 0; i < 200; i++ {
			after := rng.Float64() * 50
			dur := rng.Float64()*10 + 0.01
			s := tl.EarliestSlot(after, dur)
			if s < after {
				return false
			}
			tl.Reserve(s, dur, int32(i))
		}
		ivs := tl.Intervals()
		for i := 1; i < len(ivs); i++ {
			if ivs[i-1].End > ivs[i].Start+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOverlayConsistent property-tests that an overlay's
// EarliestSlot answer is always free in both the base and the overlay
// additions.
func TestQuickOverlayConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		for i := 0; i < 40; i++ {
			dur := 1 + rng.Float64()*5
			s := tl.EarliestSlot(rng.Float64()*30, dur)
			tl.Reserve(s, dur, 0)
		}
		ov := NewOverlay(tl)
		var added []Interval
		for i := 0; i < 40; i++ {
			after := rng.Float64() * 40
			dur := 0.5 + rng.Float64()*3
			s := ov.EarliestSlot(after, dur)
			if s < after {
				return false
			}
			// verify against base intervals and added
			for _, iv := range append(append([]Interval(nil), tl.Intervals()...), added...) {
				if s < iv.End-1e-9 && s+dur > iv.Start+1e-9 {
					return false
				}
			}
			ov.Add(s, dur)
			added = append(added, Interval{Start: s, End: s + dur})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespan(t *testing.T) {
	a, b := NewTimeline(), NewTimeline()
	a.Reserve(0, 3, 1)
	b.Reserve(1, 7, 1)
	if got := Makespan([]*Timeline{a, b}); got != 8 {
		t.Fatalf("makespan = %v", got)
	}
	if got := Makespan(nil); got != 0 {
		t.Fatalf("empty makespan = %v", got)
	}
}
