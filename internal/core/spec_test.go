package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs/journal"
	"repro/internal/platform"
	"repro/internal/sched/minmin"
	"repro/internal/spec"
)

// specProblem is a two-node cluster with compute-heavy tasks (10 s
// against sub-second stagings), sized so that a crashy fault plan
// exercises every speculation race outcome: twin wins (including
// crash rescues), primary wins, and both attempts dying.
func specProblem(t *testing.T) *core.Problem {
	t.Helper()
	b := batch.New()
	var files []batch.FileID
	for i := 0; i < 4; i++ {
		files = append(files, b.AddFile(fmt.Sprintf("f%d", i), 64<<20, i%2))
	}
	for i := 0; i < 8; i++ {
		b.AddTask(fmt.Sprintf("t%d", i), 10, []batch.FileID{files[i%4]})
	}
	p := &core.Problem{Batch: b, Platform: platform.XIO(2, 2, 0)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// specPlan is the crashy scenario driving the race-outcome grid: node
// MTTF of the order of a few task lengths, plus harsh-grade
// stragglers.
func specPlan(t *testing.T, seed int64) *faults.FaultPlan {
	t.Helper()
	fp, err := faults.Parse("mttf=30,stragp=0.15,stragf=4,budget=8")
	if err != nil {
		t.Fatal(err)
	}
	fp.Seed = seed
	return fp
}

func specRun(t *testing.T, p *core.Problem, fp *faults.FaultPlan, pol *spec.Policy) (*core.Result, []journal.Event, []byte) {
	t.Helper()
	rec := journal.New()
	res, err := core.RunWith(p, minmin.New(), core.RunOptions{Checked: true, Faults: fp,
		Spec: pol, Obs: core.Observer{Journal: rec}})
	if err != nil {
		t.Fatalf("spec run failed (plan %s): %v", fp, err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return res, rec.Events(), buf.Bytes()
}

// TestSpecNeverMatchesNil pins the control contract: a spec.Never
// policy (and an active policy without an injector) must reproduce the
// nil-policy run bit for bit — results and journal bytes.
func TestSpecNeverMatchesNil(t *testing.T) {
	p := specProblem(t)
	fp := specPlan(t, 11)
	resNil, _, jNil := specRun(t, p, fp, nil)
	resNever, _, jNever := specRun(t, p, fp, &spec.Policy{Kind: spec.Never})
	sameFaultResult(t, resNil, resNever)
	if !bytes.Equal(jNil, jNever) {
		t.Fatal("Never-policy journal differs from nil-policy journal")
	}
	if resNil.SpecLaunches != 0 || resNil.SpecWastedSeconds != 0 {
		t.Fatalf("inactive policy recorded speculation: %+v", resNil)
	}
}

// TestSpecRaceOutcomes sweeps fault seeds over the crashy scenario and
// checks every speculation invariant the runtime promises:
//
//   - accounting: every launch is resolved by exactly one cancellation,
//     wins never exceed launches, rescues never exceed wins, and the
//     journal's event counts agree with the run's ExecStats;
//   - deterministic cancellation: a task killed while its twin is in
//     flight (race outcome "none") is re-queued exactly once in that
//     round — never double-requeued — and shares the ordinary per-task
//     retry budget;
//   - rescue semantics: a crash-killed primary whose twin finished
//     (spec_win with primary_end < 0) produces no requeue at all;
//   - coverage: the grid must actually visit all three race outcomes,
//     so none of the assertions above hold vacuously.
func TestSpecRaceOutcomes(t *testing.T) {
	p := specProblem(t)
	pol := &spec.Policy{Kind: spec.SingleFork, Quantile: 0.86}
	outcomes := map[string]int{}
	totalWasted := 0.0
	for seed := int64(1); seed <= 120; seed++ {
		fp := specPlan(t, seed)
		res, events, _ := specRun(t, p, fp, pol)

		launches, wins, cancels := 0, 0, 0
		rescued := map[int]bool{}    // task → twin finished after primary crash
		caseC := map[[2]int]bool{}   // (round, task) → both attempts died
		requeues := map[[2]int]int{} // (round, task) → requeue events
		requeuesPerTask := map[int]int{}
		for _, ev := range events {
			switch ev.Kind {
			case journal.KindSpecLaunch:
				launches++
			case journal.KindSpecWin:
				// stats.SpecWins counts twin victories; the journal
				// records a spec_win for whichever side won.
				if ev.Spec.Winner == "twin" {
					wins++
				}
				if ev.Spec.Winner == "twin" && ev.Spec.PrimaryEnd < 0 {
					rescued[ev.Spec.Task] = true
				}
			case journal.KindSpecCancel:
				cancels++
				outcomes[ev.Spec.Winner]++
				if ev.Spec.Winner == "none" {
					caseC[[2]int{ev.Round, ev.Spec.Task}] = true
				}
			case journal.KindFault:
				if ev.Fault.Class == journal.FaultRequeue && ev.Fault.Task >= 0 {
					requeues[[2]int{ev.Round, ev.Fault.Task}]++
					requeuesPerTask[ev.Fault.Task]++
				}
			}
		}
		if launches != res.SpecLaunches || wins != res.SpecWins || cancels != res.SpecCancels {
			t.Fatalf("seed %d: journal (%d/%d/%d) disagrees with stats (%d/%d/%d)",
				seed, launches, wins, cancels, res.SpecLaunches, res.SpecWins, res.SpecCancels)
		}
		if cancels != launches {
			t.Fatalf("seed %d: %d launches but %d cancellations", seed, launches, cancels)
		}
		if wins > launches || res.SpecSaved > wins {
			t.Fatalf("seed %d: inconsistent spec counters %+v", seed, res)
		}
		// A single cancellation can legitimately burn nothing (the
		// loser never started any op), so waste is asserted over the
		// whole grid below.
		totalWasted += res.SpecWastedSeconds
		for key := range caseC {
			if n := requeues[key]; n != 1 {
				t.Fatalf("seed %d: task %d round %d died with twin in flight and was requeued %d times, want exactly 1",
					seed, key[1], key[0], n)
			}
		}
		// The interruption that exhausts the budget still emits a
		// requeue fault before the task is abandoned, so a task sees at
		// most budget+1 requeue events — speculative twins never add
		// extra ones.
		for task, n := range requeuesPerTask {
			if n > fp.TaskRetryBudget+1 {
				t.Fatalf("seed %d: task %d requeued %d times, budget %d", seed, task, n, fp.TaskRetryBudget)
			}
		}
		_ = rescued // per-round rescue/requeue exclusion is pinned by TestSpecRescueAvoidsRequeue
	}
	for _, want := range []string{"twin", "primary", "none"} {
		if outcomes[want] == 0 {
			t.Fatalf("race outcome %q never occurred over the seed grid (outcomes: %v)", want, outcomes)
		}
	}
	if totalWasted <= 0 {
		t.Fatal("speculation cancelled losers across the grid yet burnt no port time")
	}
}

// TestSpecDeterministicReplay: a speculative run is a pure function of
// its seeds — identical results and identical journal bytes on replay.
func TestSpecDeterministicReplay(t *testing.T) {
	p := specProblem(t)
	pol := &spec.Policy{Kind: spec.SingleFork, Quantile: 0.86}
	for _, seed := range []int64{7, 10, 41} { // seeds known to hit the both-die outcome
		fp := specPlan(t, seed)
		resA, _, jA := specRun(t, p, fp, pol)
		resB, _, jB := specRun(t, p, fp, pol)
		sameFaultResult(t, resA, resB)
		if !bytes.Equal(jA, jB) {
			t.Fatalf("seed %d: journal differs across identical spec runs", seed)
		}
	}
}

// TestSpecRescueAvoidsRequeue pins the rescue payoff on a seed where a
// twin outlives a crash-killed primary: the task completes in-round,
// consumes no retry budget, and the run ends Complete.
func TestSpecRescueAvoidsRequeue(t *testing.T) {
	p := specProblem(t)
	pol := &spec.Policy{Kind: spec.SingleFork, Quantile: 0.86}
	found := false
	for seed := int64(1); seed <= 40 && !found; seed++ {
		fp := specPlan(t, seed)
		res, events, _ := specRun(t, p, fp, pol)
		for _, ev := range events {
			if ev.Kind != journal.KindSpecWin || ev.Spec.Winner != "twin" || ev.Spec.PrimaryEnd >= 0 {
				continue
			}
			found = true
			for _, ev2 := range events {
				if ev2.Kind == journal.KindFault && ev2.Fault.Class == journal.FaultRequeue &&
					ev2.Fault.Task == ev.Spec.Task && ev2.Round == ev.Round {
					t.Fatalf("seed %d: rescued task %d was still requeued in round %d", seed, ev.Spec.Task, ev.Round)
				}
			}
			if res.SpecSaved == 0 {
				t.Fatalf("seed %d: rescue observed in journal but SpecSaved is 0", seed)
			}
		}
	}
	if !found {
		t.Fatal("no crash rescue occurred in the seed range; test is vacuous")
	}
}
