// Package hypergraph implements the multilevel hypergraph partitioner
// the BiPartition scheduler relies on — a from-scratch substitute for
// PaToH. It provides:
//
//   - a CSR hypergraph structure with vertex and net weights;
//   - K-way partitioning by recursive bisection, each bisection run
//     through the multilevel pipeline (heavy-connectivity coarsening,
//     greedy hypergraph growing initial partitioning, FM boundary
//     refinement) with net splitting between levels of the recursion
//     so the connectivity-1 metric is accounted exactly;
//   - Bounded Incident Net Weight (BINW) partitioning (§5.1 of the
//     paper, after Krishnamoorthy et al.): the number of parts is not
//     fixed; instead each part's incident net weight must stay under a
//     bound D, with size-1 net weights accumulated into per-vertex
//     exposed weights during coarsening exactly as the paper describes.
package hypergraph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Hypergraph is a weighted hypergraph in CSR form.
type Hypergraph struct {
	// NumV and NumN are the vertex and net counts.
	NumV, NumN int
	// VWeight[v] is the vertex weight (task execution time, scaled).
	VWeight []int64
	// ExtraVWeight[v] accumulates the weights of size-1 nets absorbed
	// into v (the paper's modification of PaToH for BINW: size-1 nets
	// are discarded from the net list but their weight must still
	// count toward a part's incident net weight).
	ExtraVWeight []int64
	// NWeight[n] is the net weight (file size, scaled).
	NWeight []int64

	// Pins: for net n, Pins[XPins[n]:XPins[n+1]] are its vertices.
	XPins []int32
	Pins  []int32
	// VNets: for vertex v, VNets[XVNets[v]:XVNets[v+1]] are its nets.
	XVNets []int32
	VNets  []int32
}

// Builder incrementally constructs a hypergraph.
type Builder struct {
	vweights []int64
	extra    []int64
	nweights []int64
	nets     [][]int32
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// AddVertex appends a vertex with the given weight, returning its ID.
func (b *Builder) AddVertex(w int64) int {
	b.vweights = append(b.vweights, w)
	b.extra = append(b.extra, 0)
	return len(b.vweights) - 1
}

// AddNet appends a net with the given weight connecting the vertices.
func (b *Builder) AddNet(w int64, pins []int) int {
	p := make([]int32, len(pins))
	for i, v := range pins {
		p[i] = int32(v)
	}
	b.nweights = append(b.nweights, w)
	b.nets = append(b.nets, p)
	return len(b.nweights) - 1
}

// Build finalizes the hypergraph.
func (b *Builder) Build() (*Hypergraph, error) {
	h := &Hypergraph{
		NumV:         len(b.vweights),
		NumN:         len(b.nets),
		VWeight:      append([]int64(nil), b.vweights...),
		ExtraVWeight: append([]int64(nil), b.extra...),
		NWeight:      append([]int64(nil), b.nweights...),
	}
	h.XPins = make([]int32, h.NumN+1)
	for n, pins := range b.nets {
		seen := make(map[int32]bool, len(pins))
		for _, v := range pins {
			if int(v) < 0 || int(v) >= h.NumV {
				return nil, fmt.Errorf("hypergraph: net %d pins unknown vertex %d", n, v)
			}
			if seen[v] {
				return nil, fmt.Errorf("hypergraph: net %d pins vertex %d twice", n, v)
			}
			seen[v] = true
		}
		h.XPins[n+1] = h.XPins[n] + int32(len(pins))
	}
	h.Pins = make([]int32, 0, h.XPins[h.NumN])
	for _, pins := range b.nets {
		h.Pins = append(h.Pins, pins...)
	}
	h.buildVNets()
	return h, nil
}

// buildVNets derives the vertex→nets CSR from the net→pins CSR.
func (h *Hypergraph) buildVNets() {
	deg := make([]int32, h.NumV+1)
	for _, v := range h.Pins {
		deg[v+1]++
	}
	h.XVNets = make([]int32, h.NumV+1)
	for v := 0; v < h.NumV; v++ {
		h.XVNets[v+1] = h.XVNets[v] + deg[v+1]
	}
	h.VNets = make([]int32, len(h.Pins))
	fill := append([]int32(nil), h.XVNets[:h.NumV]...)
	for n := 0; n < h.NumN; n++ {
		for _, v := range h.NetPins(n) {
			h.VNets[fill[v]] = int32(n)
			fill[v]++
		}
	}
}

// NetPins returns net n's vertices.
func (h *Hypergraph) NetPins(n int) []int32 { return h.Pins[h.XPins[n]:h.XPins[n+1]] }

// VertexNets returns vertex v's incident nets.
func (h *Hypergraph) VertexNets(v int) []int32 { return h.VNets[h.XVNets[v]:h.XVNets[v+1]] }

// TotalVWeight sums vertex weights.
func (h *Hypergraph) TotalVWeight() int64 {
	var sum int64
	for _, w := range h.VWeight {
		sum += w
	}
	return sum
}

// ConnectivityCost computes the connectivity-1 metric χ(Π) = Σ_cut
// c_j(λ_j − 1) for a given part assignment (Eq. 23 of the paper).
func (h *Hypergraph) ConnectivityCost(part []int) int64 {
	var cost int64
	seen := make(map[int]bool)
	for n := 0; n < h.NumN; n++ {
		for k := range seen {
			delete(seen, k)
		}
		for _, v := range h.NetPins(n) {
			seen[part[v]] = true
		}
		if lambda := len(seen); lambda > 1 {
			cost += h.NWeight[n] * int64(lambda-1)
		}
	}
	return cost
}

// PartWeights sums vertex weights per part for a given assignment.
func PartWeights(h *Hypergraph, part []int, numParts int) []int64 {
	w := make([]int64, numParts)
	for v := 0; v < h.NumV; v++ {
		w[part[v]] += h.VWeight[v]
	}
	return w
}

// IncidentNetWeight computes, for each part, the sum of the weights of
// nets incident on any of its vertices, plus the absorbed size-1 net
// weights (the BINW constraint quantity, Eq. 24).
func (h *Hypergraph) IncidentNetWeight(part []int, numParts int) []int64 {
	w := make([]int64, numParts)
	counted := make(map[[2]int]bool)
	for n := 0; n < h.NumN; n++ {
		for _, v := range h.NetPins(n) {
			key := [2]int{n, part[v]}
			if !counted[key] {
				counted[key] = true
				w[part[v]] += h.NWeight[n]
			}
		}
	}
	for v := 0; v < h.NumV; v++ {
		w[part[v]] += h.ExtraVWeight[v]
	}
	return w
}

// shuffledVertices returns 0..NumV−1 in random order.
func (h *Hypergraph) shuffledVertices(rng *rand.Rand) []int32 {
	order := make([]int32, h.NumV)
	for i := range order {
		order[i] = int32(i)
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// sortedByWeightDesc returns vertex ids ordered by descending total
// weight (used by deterministic fallbacks).
func (h *Hypergraph) sortedByWeightDesc() []int32 {
	order := make([]int32, h.NumV)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		wi := h.VWeight[order[i]] + h.ExtraVWeight[order[i]]
		wj := h.VWeight[order[j]] + h.ExtraVWeight[order[j]]
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	return order
}
