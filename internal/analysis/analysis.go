// Package analysis is the project-specific static analyzer behind
// cmd/schedlint. It enforces the repository's determinism contract
// (fixed seed ⇒ identical output at any worker count) as machine-checked
// invariants instead of reviewer folklore:
//
//	detrange    — map iteration feeding order-dependent state in solver
//	              packages (the growInitial class of bug)
//	nowallclock — wall-clock time and the global math/rand stream in
//	              solver packages; randomness must flow in as parameters
//	mergeorder  — worker results merged into shared state in a way that
//	              depends on goroutine scheduling rather than worker index
//	floataccum  — float += accumulation in map-iteration order
//	              (order-dependent rounding)
//	tracepurity — wall-clock reads anywhere outside internal/obs, the
//	              module's designated clock boundary; every other site
//	              must carry an annotated justification
//
// Findings are suppressed line-by-line with
//
//	//schedlint:allow <check>[,<check>...] [reason]
//
// placed on the offending line or the line directly above it. The
// package is built exclusively on the standard library (go/ast,
// go/parser, go/types), preserving the module's zero-dependency stance.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Check string
	Pos   token.Position
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// Config selects which checks run and which packages count as
// "deterministic" (solver) packages for the checks scoped to them.
type Config struct {
	// Checks to run; empty means all registered checks.
	Checks []string
	// DeterministicPaths are import-path prefixes of packages whose
	// output must be a pure function of their inputs and seeds.
	// detrange, nowallclock and floataccum only fire inside these.
	DeterministicPaths []string
}

// DefaultDeterministicPaths lists the solver packages of this
// repository: everything between problem input and committed schedule.
var DefaultDeterministicPaths = []string{
	"repro/internal/mip",
	"repro/internal/hypergraph",
	"repro/internal/sched",
	"repro/internal/gantt",
	"repro/internal/batch",
	"repro/internal/eviction",
	"repro/internal/core",
	"repro/internal/faults",
}

// A check inspects one package through a pass and reports findings.
type check struct {
	name string
	// deterministicOnly restricts the check to deterministic packages.
	deterministicOnly bool
	run               func(*pass)
}

// allChecks is the registry, in reporting-priority order.
var allChecks = []check{
	{name: "detrange", deterministicOnly: true, run: runDetRange},
	{name: "nowallclock", deterministicOnly: true, run: runNoWallClock},
	{name: "mergeorder", deterministicOnly: false, run: runMergeOrder},
	{name: "floataccum", deterministicOnly: true, run: runFloatAccum},
	{name: "tracepurity", deterministicOnly: false, run: runTracePurity},
}

// CheckNames returns the registered check names.
func CheckNames() []string {
	names := make([]string, len(allChecks))
	for i, c := range allChecks {
		names[i] = c.name
	}
	return names
}

// pass is the per-(package, check) context handed to check bodies.
type pass struct {
	pkg      *Package
	check    string
	suppress suppressions
	out      *[]Finding
}

func (p *pass) reportf(pos token.Pos, format string, args ...any) {
	position := p.pkg.Fset.Position(pos)
	if p.suppress.allows(position, p.check) {
		return
	}
	*p.out = append(*p.out, Finding{Check: p.check, Pos: position, Msg: fmt.Sprintf(format, args...)})
}

// typeOf resolves an expression's type (nil when unknown).
func (p *pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objectOf resolves an identifier to its object via Uses then Defs.
func (p *pass) objectOf(id *ast.Ident) types.Object {
	if o := p.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.pkg.Info.Defs[id]
}

// Run analyzes the packages and returns all unsuppressed findings,
// sorted by position.
func Run(pkgs []*Package, cfg Config) []Finding {
	selected := map[string]bool{}
	for _, name := range cfg.Checks {
		selected[name] = true
	}
	detPaths := cfg.DeterministicPaths
	if detPaths == nil {
		detPaths = DefaultDeterministicPaths
	}
	var findings []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		det := isDeterministicPath(strings.TrimSuffix(pkg.Path, ".test"), detPaths)
		for _, c := range allChecks {
			if len(selected) > 0 && !selected[c.name] {
				continue
			}
			if c.deterministicOnly && !det {
				continue
			}
			c.run(&pass{pkg: pkg, check: c.name, suppress: sup, out: &findings})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return findings
}

func isDeterministicPath(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// suppressions maps file → line → set of allowed check names ("all"
// allows every check).
type suppressions map[string]map[int]map[string]bool

const allowPrefix = "schedlint:allow"

// collectSuppressions scans every comment of the package for
// //schedlint:allow annotations.
func collectSuppressions(pkg *Package) suppressions {
	sup := suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				checks := lines[pos.Line]
				if checks == nil {
					checks = map[string]bool{}
					lines[pos.Line] = checks
				}
				for _, name := range strings.Split(fields[0], ",") {
					checks[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return sup
}

// allows reports whether the check is suppressed at the position: an
// allow annotation on the same line or the line directly above.
func (s suppressions) allows(pos token.Position, check string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if cs := lines[line]; cs != nil && (cs[check] || cs["all"]) {
			return true
		}
	}
	return false
}

// ---- shared AST helpers used by the individual checks ----

// rootIdent unwraps an assignable expression (index, selector, star,
// paren) down to its base identifier; nil when the base is not a plain
// identifier (e.g. a function call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the
// source interval [from, to] — used to separate loop-local state from
// captured/outer state.
func declaredWithin(obj types.Object, from, to token.Pos) bool {
	return obj != nil && obj.Pos() >= from && obj.Pos() <= to
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatType reports whether t is a floating-point type.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isIntegerType reports whether t is an integer type.
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
