package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/workload"
)

// chaosScenarios is the fault matrix swept by Chaos: the fault-free
// control plus the built-in mild and harsh presets. Every cell of one
// scenario row shares the identical FaultPlan seed, so the four
// schedulers face the same failure sequence and the comparison
// isolates how each scheme's placement and replication absorb it.
var chaosScenarios = []string{"none", "mild", "harsh"}

// Chaos runs the fault-tolerance matrix (scenario × scheduler) on a
// high-overlap IMAGE batch and reports three tables: absolute batch
// execution time, makespan degradation relative to the fault-free
// control, and the recovery activity behind it (failures, retries,
// replica-served recoveries, crashes, re-queues, wasted port time).
// Like every figure, cells are independent and merged in fixed order,
// so Workers never changes the rows.
func Chaos(o Options) ([]*report.Table, error) {
	o = o.withDefaults()
	n := o.tasks(100)
	ss := schedulerSet(o)
	results := make([][]*core.Result, len(chaosScenarios))
	for r := range results {
		results[r] = make([]*core.Result, len(ss))
	}
	err := forEachCellObserved(o.Workers, len(chaosScenarios)*len(ss), o.Obs, func(i int, ob core.Observer) error {
		r, c := i/len(ss), i%len(ss)
		fp, err := faults.Parse(chaosScenarios[r])
		if err != nil {
			return err
		}
		if fp != nil {
			fp.Seed = o.Seed + 1000 // identical failure sequence for every scheduler
		}
		b, err := makeImage(o, n, 4, workload.HighOverlap)
		if err != nil {
			return err
		}
		res, err := run(&core.Problem{Batch: b, Platform: platform.XIO(4, 4, 0)}, ss[c].make(), ob, fp)
		if err != nil {
			return fmt.Errorf("chaos %s/%s: %w", chaosScenarios[r], ss[c].name, err)
		}
		results[r][c] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	mk := &report.Table{
		Title:   "Chaos: batch execution time (s) under fault scenarios (IMAGE high overlap)",
		XLabel:  "scenario",
		YLabel:  "batch execution time (s)",
		Columns: columnNames(ss),
	}
	for r, sc := range chaosScenarios {
		vals := make([]float64, len(ss))
		for c := range ss {
			vals[c] = results[r][c].Makespan
		}
		mk.AddRow(sc, vals...)
	}

	deg := &report.Table{
		Title:   "Chaos: makespan degradation vs fault-free (%)",
		XLabel:  "scenario",
		YLabel:  "degradation (%)",
		Columns: columnNames(ss),
	}
	for r, sc := range chaosScenarios {
		if sc == "none" {
			continue
		}
		vals := make([]float64, len(ss))
		for c := range ss {
			base := results[0][c].Makespan
			if base > 0 {
				vals[c] = 100 * (results[r][c].Makespan/base - 1)
			}
		}
		deg.AddRow(sc, vals...)
	}

	rec := &report.Table{
		Title:   "Chaos: recovery activity (harsh scenario)",
		XLabel:  "scheduler",
		YLabel:  "count / seconds",
		Columns: []string{"XferFail", "Retries", "ReplicaRecov", "Crashes", "Stragglers", "Requeued", "Degraded", "Wasted_s"},
	}
	harsh := results[len(chaosScenarios)-1]
	degradedCells := 0
	for c, spec := range ss {
		res := harsh[c]
		rec.AddRow(spec.name,
			float64(res.TransferFailures), float64(res.TransferRetries),
			float64(res.ReplicaRecoveries), float64(res.Crashes),
			float64(res.Stragglers), float64(res.RequeuedTasks),
			float64(res.DegradedTasks), res.WastedSeconds)
		for r := range chaosScenarios {
			if results[r][c].Status == core.StatusDegraded {
				degradedCells++
			}
		}
	}
	seedNote := fmt.Sprintf("identical fault seed %d per scenario across all schedulers; presets: mild (%s), harsh (%s)",
		o.Seed+1000, mustSpec("mild"), mustSpec("harsh"))
	mk.Notes = append(mk.Notes, seedNote)
	if degradedCells > 0 {
		deg.Notes = append(deg.Notes, fmt.Sprintf("%d cell(s) ended Degraded (retry budgets exhausted); their makespans cover only the tasks that ran", degradedCells))
	}
	return []*report.Table{mk, deg, rec}, nil
}

// mustSpec renders a built-in preset's canonical spec string.
func mustSpec(name string) string {
	fp, err := faults.Parse(name)
	if err != nil || fp == nil {
		return name
	}
	return fp.String()
}
