package simplex

import (
	"math"
	"math/rand"
	"testing"
)

// TestWorkspaceReuseMatchesFresh solves a stream of random LPs of
// varying shapes twice — once with a fresh solver per LP, once through
// a single reused Workspace — and demands bit-identical status,
// objective, iteration count and solution vector. This pins the
// workspace reset logic: any stale state leaking between solves would
// steer the pivot sequence apart.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ws := new(Workspace)
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(4)
		A := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		ub := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 2
			ub[j] = rng.Float64()*3 + 0.5
		}
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = rng.Float64()*2 - 0.5
			}
			b[i] = rng.Float64() * 2
		}
		lp := leq(c, A, b, ub)

		fresh, err := Solve(lp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		reused, err := SolveWS(ws, lp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Status != reused.Status || fresh.Iters != reused.Iters {
			t.Fatalf("trial %d: fresh (%v, %d iters) vs reused (%v, %d iters)",
				trial, fresh.Status, fresh.Iters, reused.Status, reused.Iters)
		}
		if fresh.Status != Optimal {
			continue
		}
		if fresh.Obj != reused.Obj {
			t.Fatalf("trial %d: obj %v vs %v", trial, fresh.Obj, reused.Obj)
		}
		for j := range fresh.X {
			if fresh.X[j] != reused.X[j] {
				t.Fatalf("trial %d: X[%d] = %v vs %v", trial, j, fresh.X[j], reused.X[j])
			}
		}
	}
}

// TestWorkspaceXAliased documents the ownership contract: a second
// SolveWS on the same workspace overwrites the previous Result.X.
func TestWorkspaceXAliased(t *testing.T) {
	ws := new(Workspace)
	lp1 := leq([]float64{-1}, [][]float64{{1}}, []float64{2}, nil)
	res1, err := SolveWS(ws, lp1, Options{})
	if err != nil || res1.Status != Optimal {
		t.Fatalf("solve 1: %v %v", res1, err)
	}
	saved := append([]float64(nil), res1.X...)
	lp2 := leq([]float64{-1}, [][]float64{{1}}, []float64{5}, nil)
	if _, err := SolveWS(ws, lp2, Options{}); err != nil {
		t.Fatal(err)
	}
	if res1.X[0] == saved[0] && math.Abs(saved[0]-2) < 1e-9 {
		t.Fatal("expected res1.X to be overwritten by the second solve (the documented aliasing)")
	}
}
