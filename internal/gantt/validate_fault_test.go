package gantt

import (
	"encoding/json"
	"os"
	"testing"
)

// The fault-tolerant runtime burns the started portion of a failed
// transfer or a crash-killed execution as a preempted reservation
// (tag 3) with no matching StageEvent — the file never arrived. These
// tests pin that Validate accepts such recovery schedules while still
// holding them to every invariant.

func TestValidateAcceptsPreemptedPartialReservations(t *testing.T) {
	const tagFault = 3
	storage := NewTimeline()
	compute := NewTimeline()
	// Attempt 1 dies at t=3 (preempted, no stage event); the retry
	// [4, 8) succeeds and stages file 5.
	storage.Reserve(0, 3, tagFault)
	compute.Reserve(0, 3, tagFault)
	storage.Reserve(4, 4, 1)
	compute.Reserve(4, 4, 1)
	compute.Reserve(8, 2, 2)
	s := &Schedule{
		Storage:  []*Timeline{storage},
		Compute:  []*Timeline{compute},
		Stages:   []StageEvent{{File: 5, Node: 0, Avail: 8, Size: 50}},
		Tasks:    []TaskEvent{{Task: 0, Node: 0, Start: 8, End: 10, Inputs: []int{5}}},
		DiskCap:  []int64{100},
		InitUsed: []int64{0},
		InitHeld: [][]int{nil},
	}
	if v := s.Validate(); len(v) != 0 {
		t.Fatalf("recovery schedule with preempted reservations flagged: %v", v)
	}
}

func TestValidatePreemptedReservationsStillCheckOverlap(t *testing.T) {
	// A preempted reservation gets no special exemption: overlapping
	// the retry is still a port violation.
	tl := NewTimelineFromIntervals([]Interval{
		{Start: 0, End: 3, Tag: 3},
		{Start: 2, End: 6, Tag: 1},
	})
	s := &Schedule{Compute: []*Timeline{tl}}
	assertViolations(t, s.Validate(), "reservations overlap")
}

func TestValidateZeroLengthPreemption(t *testing.T) {
	// A transfer killed at its start instant leaves a zero-length
	// interval; that is sound (and distinct from a negative one).
	tl := NewTimelineFromIntervals([]Interval{
		{Start: 2, End: 2, Tag: 3},
		{Start: 2, End: 5, Tag: 1},
	})
	s := &Schedule{Compute: []*Timeline{tl}}
	if v := s.Validate(); len(v) != 0 {
		t.Fatalf("zero-length preemption flagged: %v", v)
	}
}

// TestValidateAcceptsCancelledSpeculativeReservations pins the port
// footprint a speculative twin leaves behind when it loses the race.
// Task 0's twin completed its input staging (ordinary tag-1
// reservations plus a StageEvent) before starting to execute, so its
// cancellation burns only the duplicate execution (tag 3, no
// TaskEvent). Task 1's twin was cancelled mid-staging, leaving
// preempted partial reservations on both the storage and compute
// ports with no StageEvent at all. Both shapes must validate — only
// the winners' committed executions appear as TaskEvents.
func TestValidateAcceptsCancelledSpeculativeReservations(t *testing.T) {
	fix := fixtureSchedule{
		Storage: [][]Interval{{
			{Start: 0, End: 4, Tag: 1},   // file 5 -> node 0 (winner)
			{Start: 4, End: 6, Tag: 1},   // file 7 -> node 0 (winner)
			{Start: 6, End: 8, Tag: 1},   // file 5 -> node 1 (twin of task 0, completed)
			{Start: 20, End: 21, Tag: 3}, // file 7 -> node 1 (twin of task 1, cancelled mid-flight)
		}},
		Compute: [][]Interval{
			{
				{Start: 0, End: 4, Tag: 1},
				{Start: 4, End: 6, Tag: 1},
				{Start: 6, End: 16, Tag: 2},  // task 0 primary wins at 16
				{Start: 16, End: 22, Tag: 2}, // task 1 primary wins at 22
			},
			{
				{Start: 6, End: 8, Tag: 1},   // twin of task 0 stages its input
				{Start: 8, End: 16, Tag: 3},  // twin of task 0 execution, burnt at the primary's finish
				{Start: 20, End: 21, Tag: 3}, // twin of task 1 staging, burnt mid-transfer
			},
		},
		Stages: []StageEvent{
			{File: 5, Node: 0, Avail: 4, Size: 50},
			{File: 7, Node: 0, Avail: 6, Size: 50},
			{File: 5, Node: 1, Avail: 8, Size: 50},
		},
		Tasks: []TaskEvent{
			{Task: 0, Node: 0, Start: 6, End: 16, Inputs: []int{5}},
			{Task: 1, Node: 0, Start: 16, End: 22, Inputs: []int{7}},
		},
		DiskCap:  []int64{200, 200},
		InitUsed: []int64{0, 0},
		InitHeld: [][]int{nil, nil},
	}
	if v := fix.schedule().Validate(); len(v) != 0 {
		t.Fatalf("schedule with cancelled speculative reservations flagged: %v", v)
	}
	// Negative control: a twin's burn is a real port reservation, so
	// sliding it under a committed staging is still an overlap.
	broken := fix
	broken.Storage = [][]Interval{{
		{Start: 0, End: 4, Tag: 1},
		{Start: 4, End: 6, Tag: 1},
		{Start: 4.5, End: 5.5, Tag: 3},
		{Start: 6, End: 8, Tag: 1},
	}}
	assertViolations(t, broken.schedule().Validate(), "reservations overlap")
}

// fixtureSchedule mirrors Schedule with plain intervals so recorded
// schedules round-trip through JSON testdata.
type fixtureSchedule struct {
	Storage  [][]Interval
	Compute  [][]Interval
	Link     []Interval
	Stages   []StageEvent
	Tasks    []TaskEvent
	DiskCap  []int64
	InitUsed []int64
	InitHeld [][]int
}

func (f *fixtureSchedule) schedule() *Schedule {
	s := &Schedule{
		Stages:   f.Stages,
		Tasks:    f.Tasks,
		DiskCap:  f.DiskCap,
		InitUsed: f.InitUsed,
		InitHeld: f.InitHeld,
	}
	for _, ivs := range f.Storage {
		s.Storage = append(s.Storage, NewTimelineFromIntervals(ivs))
	}
	for _, ivs := range f.Compute {
		s.Compute = append(s.Compute, NewTimelineFromIntervals(ivs))
	}
	if len(f.Link) > 0 {
		s.Link = NewTimelineFromIntervals(f.Link)
	}
	return s
}

// TestCrashRecoveryFixture replays a recorded two-sub-batch recovery:
// compute[1] crashes mid-transfer in sub-batch 0 (preempted partial
// reservation, cache dropped at the boundary) and rejoins empty in
// sub-batch 1, where its input is re-staged from the surviving
// replica. Both schedules must be sound — and the fixture must
// actually bite: deleting the re-staging makes sub-batch 1 invalid.
func TestCrashRecoveryFixture(t *testing.T) {
	data, err := os.ReadFile("testdata/crash_recovery.json")
	if err != nil {
		t.Fatal(err)
	}
	var fix struct {
		SubBatches []fixtureSchedule `json:"sub_batches"`
	}
	if err := json.Unmarshal(data, &fix); err != nil {
		t.Fatal(err)
	}
	if len(fix.SubBatches) != 2 {
		t.Fatalf("fixture has %d sub-batches, want 2", len(fix.SubBatches))
	}
	for i := range fix.SubBatches {
		if v := fix.SubBatches[i].schedule().Validate(); len(v) != 0 {
			t.Errorf("sub-batch %d invalid: %v", i, v)
		}
	}
	// The crashed node must have rebooted empty.
	reboot := fix.SubBatches[1]
	if reboot.InitUsed[1] != 0 || len(reboot.InitHeld[1]) != 0 {
		t.Fatal("fixture drifted: crashed node no longer rejoins with an empty cache")
	}
	// The fixture carries one speculated task: task 2 commits on the
	// surviving node while its cancelled twin leaves a tag-3 burn (and
	// no TaskEvent) on the rebooted one.
	if len(reboot.Tasks) != 2 {
		t.Fatalf("fixture drifted: sub-batch 1 has %d committed tasks, want 2", len(reboot.Tasks))
	}
	twinBurn := reboot.Compute[1][len(reboot.Compute[1])-1]
	if twinBurn.Tag != 3 {
		t.Fatalf("fixture drifted: cancelled twin reservation has tag %d, want 3 (preempted)", twinBurn.Tag)
	}
	for _, te := range reboot.Tasks {
		if te.Node == 1 && te.Start < twinBurn.End && twinBurn.Start < te.End {
			t.Fatalf("fixture drifted: task %d committed inside the cancelled twin's burn", te.Task)
		}
	}
	// Negative control: without the recovery re-staging, the task on
	// the rebooted node runs without its input.
	broken := reboot
	broken.Stages = nil
	assertViolations(t, broken.schedule().Validate(), "without input file 0 ever staged")
}
