package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runDetRange flags `for … range` over a map whose body writes to
// state declared outside the loop: Go randomizes map iteration order,
// so any such write makes the result depend on it (the growInitial
// class of bug PR 1 fixed). Writes that provably cannot depend on
// iteration order are exempt:
//
//   - delete(m, k) on the map being ranged (the map-clear idiom);
//   - commutative integer accumulation (`n += size`, `hist[k]++`,
//     `bits |= m`): integer +, *, |, &, ^ are associative and
//     commutative, so any order yields the same value;
//   - constant inserts `set[k] = <literal>`: every order stores the
//     same value under the same keys;
//   - collecting only the keys into a slice that is subsequently
//     passed to a sort call in the same function ("sort the keys
//     first", written in its usual collect-then-sort order).
//
// Everything else needs either a rewrite over sorted keys or an
// explicit //schedlint:allow detrange with a reason (e.g. a
// deterministic total-order tie-break over the map entries).
func runDetRange(p *pass) {
	for _, f := range p.pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if rs, ok := n.(*ast.RangeStmt); ok && isMapType(p.typeOf(rs.X)) {
				p.checkMapRange(rs, enclosingFunc(stack))
			}
			return true
		})
	}
}

// enclosingFunc returns the body of the innermost function containing
// the top of the stack.
func enclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// outerWrite is one write to outside-declared state inside a map range.
type outerWrite struct {
	pos token.Pos
	obj types.Object
	// keyAppend marks the `keys = append(keys, k)` idiom: an append of
	// only the range key onto the written slice itself.
	keyAppend bool
}

func (p *pass) checkMapRange(rs *ast.RangeStmt, fn *ast.BlockStmt) {
	var rangedObj, keyObj types.Object
	if id, ok := ast.Unparen(rs.X).(*ast.Ident); ok {
		rangedObj = p.objectOf(id)
	}
	if id, ok := rs.Key.(*ast.Ident); ok {
		keyObj = p.pkg.Info.Defs[id]
	}
	var writes []outerWrite
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				root := rootIdent(lhs)
				if root == nil || root.Name == "_" {
					continue
				}
				obj := p.objectOf(root)
				if obj == nil || declaredWithin(obj, rs.Pos(), rs.End()) {
					continue
				}
				if (st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN) && isFloatType(p.typeOf(lhs)) {
					continue // floataccum reports these with a sharper message
				}
				if p.isCommutativeIntAccum(st, i, lhs, obj) || p.isConstantInsert(st, i, lhs) {
					continue
				}
				writes = append(writes, outerWrite{pos: lhs.Pos(), obj: obj, keyAppend: p.isKeyAppend(st, i, obj, keyObj)})
			}
		case *ast.IncDecStmt:
			if root := rootIdent(st.X); root != nil {
				if obj := p.objectOf(root); obj != nil && !declaredWithin(obj, rs.Pos(), rs.End()) {
					if !isIntegerType(p.typeOf(st.X)) { // ++/-- on integers commutes
						writes = append(writes, outerWrite{pos: st.Pos(), obj: obj})
					}
				}
			}
		case *ast.SendStmt:
			if root := rootIdent(st.Chan); root != nil {
				if obj := p.objectOf(root); obj != nil && !declaredWithin(obj, rs.Pos(), rs.End()) {
					writes = append(writes, outerWrite{pos: st.Pos(), obj: obj})
				}
			}
		case *ast.CallExpr:
			// delete(m, k): mutation of a map; exempt when m is the map
			// being ranged (order-independent clearing).
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := p.objectOf(id).(*types.Builtin); isBuiltin && len(st.Args) == 2 {
					if root := rootIdent(st.Args[0]); root != nil {
						obj := p.objectOf(root)
						if obj != nil && obj != rangedObj && !declaredWithin(obj, rs.Pos(), rs.End()) {
							writes = append(writes, outerWrite{pos: st.Pos(), obj: obj})
						}
					}
				}
			}
		}
		return true
	})
	if len(writes) == 0 {
		return
	}
	// The collect-then-sort idiom: every write appends only the key to
	// the same slice, and that slice later flows through a sort call.
	if keyObj != nil {
		target := writes[0].obj
		idiom := true
		for _, w := range writes {
			if !w.keyAppend || w.obj != target {
				idiom = false
				break
			}
		}
		if idiom && sortedAfter(p, fn, target, rs.End()) {
			return
		}
	}
	names := make([]string, 0, 3)
	seen := map[types.Object]bool{}
	for _, w := range writes {
		if !seen[w.obj] {
			seen[w.obj] = true
			if len(names) < 3 {
				names = append(names, w.obj.Name())
			}
		}
	}
	extra := ""
	if n := len(seen) - len(names); n > 0 {
		extra = " …"
	}
	p.reportf(rs.Pos(), "map iteration writes to %s%s declared outside the loop; map order is randomized — iterate over sorted keys or annotate //schedlint:allow detrange <reason>", strings.Join(names, ", "), extra)
}

// isKeyAppend reports whether the i-th assignment is
// `x = append(x, k)` with k the range key and x the written slice.
func (p *pass) isKeyAppend(st *ast.AssignStmt, i int, target, keyObj types.Object) bool {
	if st.Tok != token.ASSIGN || keyObj == nil || len(st.Rhs) != len(st.Lhs) {
		return false
	}
	call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := p.objectOf(fn).(*types.Builtin); !isBuiltin {
		return false
	}
	if root := rootIdent(call.Args[0]); root == nil || p.objectOf(root) != target {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || p.objectOf(id) != keyObj {
			return false
		}
	}
	return true
}

// isCommutativeIntAccum reports whether the i-th assignment is an
// integer accumulation through an associative-commutative operator
// (`n += size`, `bits |= m`, `hist[k] *= 2`): those reach the same
// value under every iteration order. Self-referential right-hand sides
// (`n += f(n)`) are excluded — there the summed values themselves
// depend on the order.
func (p *pass) isCommutativeIntAccum(st *ast.AssignStmt, i int, lhs ast.Expr, target types.Object) bool {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	if !isIntegerType(p.typeOf(lhs)) || i >= len(st.Rhs) {
		return false
	}
	selfRef := false
	ast.Inspect(st.Rhs[i], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.objectOf(id) == target {
			selfRef = true
		}
		return !selfRef
	})
	return !selfRef
}

// isConstantInsert reports whether the i-th assignment stores a
// compile-time constant into an element of an outer map
// (`seen[k] = true`): every iteration order stores the same values
// under the same keys.
func (p *pass) isConstantInsert(st *ast.AssignStmt, i int, lhs ast.Expr) bool {
	ie, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok || !isMapType(p.typeOf(ie.X)) {
		return false
	}
	if st.Tok != token.ASSIGN || i >= len(st.Rhs) || len(st.Rhs) != len(st.Lhs) {
		return false
	}
	tv, ok := p.pkg.Info.Types[st.Rhs[i]]
	return ok && tv.Value != nil
}

// sortedAfter reports whether, after position `after` in fn, the slice
// obj is passed to a call whose name mentions sorting (sort.Slice,
// slices.Sort, a local sortX helper, batch.SortedCopy, …).
func sortedAfter(p *pass, fn *ast.BlockStmt, obj types.Object, after token.Pos) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || found {
			return !found
		}
		name := ""
		switch f := call.Fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
			if q, ok := f.X.(*ast.Ident); ok {
				name = q.Name + "." + name // sort.Slice, slices.SortFunc, …
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && p.objectOf(root) == obj {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
