package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// event is one recorded trace event, timestamps in microseconds
// relative to the trace's own zero (wall-clock anchor for DomainReal,
// simulated batch start for DomainSim).
type event struct {
	domain Domain
	tid    int
	phase  byte // 'X' complete, 'i' instant
	cat    string
	name   string
	ts     float64 // µs
	dur    float64 // µs, complete events only
	args   []Arg
	seq    uint64 // recording order, tie-breaker for stable export
}

// Trace is the collecting Tracer. All methods are safe for concurrent
// use. The zero value is not usable; construct with New or NewSimOnly.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	events  []event
	names   map[Domain]map[int]string
	nextID  int
	seq     uint64
	simOnly bool
}

// New returns a Trace recording both clock domains.
func New() *Trace {
	return &Trace{start: time.Now(), names: map[Domain]map[int]string{}, nextID: 1 << 20}
}

// NewSimOnly returns a Trace that silently drops DomainReal events and
// keeps only simulated-time ones. Because simulated timestamps are a
// pure function of the schedule, its export is byte-identical across
// machines and worker counts — this is what the golden-file tests use.
func NewSimOnly() *Trace {
	t := New()
	t.simOnly = true
	return t
}

func (t *Trace) Enabled() bool { return true }

// nowUS returns microseconds since the trace anchor.
func (t *Trace) nowUS() float64 {
	return float64(time.Since(t.start)) / float64(time.Microsecond)
}

func (t *Trace) record(ev event) {
	t.mu.Lock()
	ev.seq = t.seq
	t.seq++
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

func (t *Trace) Span(tid int, cat, name string, args ...Arg) EndFunc {
	if t.simOnly {
		return nopEnd
	}
	begin := t.nowUS()
	return func(end ...Arg) {
		all := make([]Arg, 0, len(args)+len(end))
		all = append(all, args...)
		all = append(all, end...)
		t.record(event{domain: DomainReal, tid: tid, phase: 'X', cat: cat, name: name,
			ts: begin, dur: t.nowUS() - begin, args: all})
	}
}

func (t *Trace) Instant(tid int, cat, name string, args ...Arg) {
	if t.simOnly {
		return
	}
	t.record(event{domain: DomainReal, tid: tid, phase: 'i', cat: cat, name: name,
		ts: t.nowUS(), args: args})
}

func (t *Trace) SimSpan(tid int, cat, name string, start, end float64, args ...Arg) {
	t.record(event{domain: DomainSim, tid: tid, phase: 'X', cat: cat, name: name,
		ts: start * 1e6, dur: (end - start) * 1e6, args: args})
}

func (t *Trace) SimInstant(tid int, cat, name string, ts float64, args ...Arg) {
	t.record(event{domain: DomainSim, tid: tid, phase: 'i', cat: cat, name: name,
		ts: ts * 1e6, args: args})
}

func (t *Trace) NameTrack(d Domain, tid int, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.names[d]
	if m == nil {
		m = map[int]string{}
		t.names[d] = m
	}
	if _, ok := m[tid]; !ok {
		m[tid] = name
	}
}

func (t *Trace) AllocTrack(d Domain, name string) int {
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	m := t.names[d]
	if m == nil {
		m = map[int]string{}
		t.names[d] = m
	}
	m[id] = name
	t.mu.Unlock()
	return id
}

// chromeEvent is the trace-event JSON wire format (the subset Perfetto
// and chrome://tracing consume). Fields follow the Trace Event Format
// spec: ph "X" complete events with ts+dur, ph "i" instants, ph "M"
// metadata naming processes and threads; ts/dur in microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

var domainNames = map[Domain]string{
	DomainReal: "real time (scheduler)",
	DomainSim:  "simulated time (runtime stage)",
}

// WriteChrome exports the trace as Chrome trace-event JSON. Events are
// sorted into a canonical order (domain, track, timestamp, duration,
// name, recording sequence) and args maps are serialized with sorted
// keys by encoding/json, so for simulated-only traces the output bytes
// depend solely on the recorded schedule.
func (t *Trace) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	events := make([]event, len(t.events))
	copy(events, t.events)
	names := make(map[Domain]map[int]string, len(t.names))
	for d, m := range t.names {
		nm := make(map[int]string, len(m))
		for k, v := range m {
			nm[k] = v
		}
		names[d] = nm
	}
	t.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.domain != b.domain {
			return a.domain < b.domain
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.dur != b.dur {
			return a.dur < b.dur
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return a.seq < b.seq
	})

	out := chromeTrace{DisplayTimeUnit: "ms"}
	for _, d := range []Domain{DomainReal, DomainSim} {
		if !t.domainUsed(events, names, d) {
			continue
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: int(d),
			Args: map[string]any{"name": domainNames[d]},
		})
		tids := make([]int, 0, len(names[d]))
		for tid := range names[d] {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: int(d), TID: tid,
				Args: map[string]any{"name": names[d][tid]},
			})
		}
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.name, Cat: ev.cat, TS: ev.ts,
			PID: int(ev.domain), TID: ev.tid,
		}
		switch ev.phase {
		case 'X':
			ce.Phase = "X"
			dur := ev.dur
			ce.Dur = &dur
		case 'i':
			ce.Phase = "i"
			ce.Scope = "t" // thread-scoped instant
		}
		if len(ev.args) > 0 {
			ce.Args = make(map[string]any, len(ev.args))
			for _, a := range ev.args {
				ce.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: write chrome trace: %w", err)
	}
	return nil
}

func (t *Trace) domainUsed(events []event, names map[Domain]map[int]string, d Domain) bool {
	if len(names[d]) > 0 {
		return true
	}
	for _, ev := range events {
		if ev.domain == d {
			return true
		}
	}
	return false
}
