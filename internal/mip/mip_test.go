package mip

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestKnapsack(t *testing.T) {
	// max 60x1+100x2+120x3 s.t. 10x1+20x2+30x3 ≤ 50 → x2=x3=1, 220.
	m := NewModel()
	m.SetMaximize()
	v1 := m.AddBinary("x1", 60)
	v2 := m.AddBinary("x2", 100)
	v3 := m.AddBinary("x3", 120)
	m.AddRow("cap", []Term{{v1, 10}, {v2, 20}, {v3, 30}}, LE, 50)
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Obj-220) > 1e-6 {
		t.Fatalf("obj = %v, want 220", sol.Obj)
	}
	if math.Round(sol.X[v1]) != 0 || math.Round(sol.X[v2]) != 1 || math.Round(sol.X[v3]) != 1 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestInfeasibleModel(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddRow("a", []Term{{x, 1}, {y, 1}}, GE, 3) // two binaries can't reach 3
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestEqualityAssignment(t *testing.T) {
	// 3 tasks, 2 nodes, Σ_i x_ki = 1, minimize makespan z with
	// z ≥ load_i. Loads 3,4,5 → optimal z = 6 (5+? no: split {5},{4,3}
	// → 7 vs {5,3},{4} → 8 vs... best is 7). Check exact value.
	loads := []float64{3, 4, 5}
	m := NewModel()
	z := m.AddVar("z", 0, math.Inf(1), 1, false)
	x := make([][]int, 3)
	for k := range x {
		x[k] = make([]int, 2)
		for i := range x[k] {
			x[k][i] = m.AddBinary("x", 0)
		}
		m.AddRow("assign", []Term{{x[k][0], 1}, {x[k][1], 1}}, EQ, 1)
	}
	for i := 0; i < 2; i++ {
		terms := []Term{{z, -1}}
		for k := range x {
			terms = append(terms, Term{x[k][i], loads[k]})
		}
		m.AddRow("load", terms, LE, 0)
	}
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Obj-7) > 1e-6 {
		t.Fatalf("obj = %v, want 7", sol.Obj)
	}
}

// bruteForce enumerates all binary assignments of a model whose
// variables are all binary and returns the optimal objective, or NaN
// when infeasible.
func bruteForce(m *Model) float64 {
	n := m.NumVars()
	best := math.NaN()
	x := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			x[j] = float64((mask >> j) & 1)
		}
		obj, ok := m.CheckFeasible(x, 1e-9)
		if !ok {
			continue
		}
		if math.IsNaN(best) {
			best = obj
			continue
		}
		if m.maximize && obj > best {
			best = obj
		} else if !m.maximize && obj < best {
			best = obj
		}
	}
	return best
}

func TestRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(6) // 4..9 binaries
		m := NewModel()
		if trial%2 == 0 {
			m.SetMaximize()
		}
		for j := 0; j < n; j++ {
			m.AddBinary("x", math.Round(rng.Float64()*20-10))
		}
		rows := 2 + rng.Intn(4)
		for r := 0; r < rows; r++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					terms = append(terms, Term{j, math.Round(rng.Float64()*10 - 3)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			sense := Sense(rng.Intn(3))
			rhs := math.Round(rng.Float64() * 8)
			if sense == EQ {
				// keep equalities satisfiable more often: rhs from a
				// random point
				lhs := 0.0
				for _, tm := range terms {
					lhs += tm.Coef * float64(rng.Intn(2))
				}
				rhs = lhs
			}
			m.AddRow("r", terms, sense, rhs)
		}
		want := bruteForce(m)
		sol, err := m.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(want) {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v obj %v", trial, sol.Status, sol.Obj)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (brute %v)", trial, sol.Status, want)
		}
		if math.Abs(sol.Obj-want) > 1e-6 {
			t.Fatalf("trial %d: obj %v, want %v", trial, sol.Obj, want)
		}
		if obj, ok := m.CheckFeasible(sol.X, 1e-6); !ok || math.Abs(obj-sol.Obj) > 1e-6 {
			t.Fatalf("trial %d: returned X not feasible or obj mismatch", trial)
		}
	}
}

func TestWarmStart(t *testing.T) {
	// Provide the optimum as warm start with a node limit of 1: the
	// solver must keep it.
	m := NewModel()
	m.SetMaximize()
	a := m.AddBinary("a", 5)
	b := m.AddBinary("b", 4)
	m.AddRow("cap", []Term{{a, 3}, {b, 2}}, LE, 3)
	warm := []float64{1, 0}
	sol, err := m.Solve(Options{WarmStart: warm, NodeLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == NoSolution || sol.Status == Infeasible {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Obj < 5-1e-9 {
		t.Fatalf("warm start lost: obj %v", sol.Obj)
	}
}

func TestInfeasibleWarmStartIgnored(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", 1)
	m.AddRow("r", []Term{{a, 1}}, EQ, 1)
	sol, err := m.Solve(Options{WarmStart: []float64{0}}) // violates row
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Round(sol.X[a]) != 1 {
		t.Fatalf("status %v x %v", sol.Status, sol.X)
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	// A model big enough that the time limit certainly triggers before
	// exhaustion; warm start guarantees an incumbent survives.
	rng := rand.New(rand.NewSource(5))
	m := NewModel()
	m.SetMaximize()
	n := 40
	warm := make([]float64, n)
	var terms []Term
	for j := 0; j < n; j++ {
		m.AddBinary("x", 1+rng.Float64()*10)
		terms = append(terms, Term{j, 1 + rng.Float64()*5})
	}
	m.AddRow("cap", terms, LE, 30)
	sol, err := m.Solve(Options{TimeLimit: 30 * time.Millisecond, WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == NoSolution {
		t.Fatalf("lost the warm incumbent")
	}
	if _, ok := m.CheckFeasible(sol.X, 1e-6); !ok {
		t.Fatalf("incumbent infeasible")
	}
}

func TestContinuousMix(t *testing.T) {
	// One binary gate y, one continuous x ≤ 10y; max x - 0.5y → y=1,
	// x=10, obj 9.5.
	m := NewModel()
	m.SetMaximize()
	x := m.AddVar("x", 0, math.Inf(1), 1, false)
	y := m.AddBinary("y", -0.5)
	m.AddRow("gate", []Term{{x, 1}, {y, -10}}, LE, 0)
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-9.5) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 9.5", sol.Status, sol.Obj)
	}
}

func TestGapReporting(t *testing.T) {
	m := NewModel()
	m.SetMaximize()
	for j := 0; j < 3; j++ {
		m.AddBinary("x", 1)
	}
	m.AddRow("r", []Term{{0, 1}, {1, 1}, {2, 1}}, LE, 2)
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Gap > 1e-9 {
		t.Fatalf("status %v gap %v", sol.Status, sol.Gap)
	}
	if math.Abs(sol.Obj-2) > 1e-9 || math.Abs(sol.Bound-2) > 1e-6 {
		t.Fatalf("obj %v bound %v", sol.Obj, sol.Bound)
	}
}
