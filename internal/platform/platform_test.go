package platform

import (
	"math"
	"testing"
)

func TestXIOPreset(t *testing.T) {
	p := XIO(4, 4, 0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumCompute() != 4 || p.NumStorage() != 4 {
		t.Fatalf("shape %d/%d", p.NumCompute(), p.NumStorage())
	}
	// XIO remote path is disk-bound at 210 MB/s.
	if got := p.RemoteBW(0, 0); got != XIODiskBW {
		t.Fatalf("remote bw = %v, want %v", got, float64(XIODiskBW))
	}
	// Compute fabric is Infiniband.
	if got := p.ReplicaBW(0, 1); got != InfinibandBW {
		t.Fatalf("replica bw = %v", got)
	}
	if p.SharedLinkBW != 0 {
		t.Fatal("XIO must not have a shared link")
	}
}

func TestOSUMEDPreset(t *testing.T) {
	p := OSUMED(4, 4, 0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// OSUMED remote path is capped by the 100 Mbps shared link.
	if got := p.RemoteBW(0, 0); got != OSUMEDLinkBW {
		t.Fatalf("remote bw = %v, want %v", got, float64(OSUMEDLinkBW))
	}
	if p.SharedLinkBW != OSUMEDLinkBW {
		t.Fatal("OSUMED needs the shared link")
	}
	// Replication stays on the fast compute fabric — that asymmetry is
	// the whole point of Figure 5(a).
	if got := p.ReplicaBW(0, 1); got != InfinibandBW {
		t.Fatalf("replica bw = %v", got)
	}
}

func TestMinBandwidths(t *testing.T) {
	p := XIO(3, 2, 0)
	if got := p.MinRemoteBW(); got != XIODiskBW {
		t.Fatalf("min remote = %v", got)
	}
	if got := p.MinReplicaBW(); got != InfinibandBW {
		t.Fatalf("min replica = %v", got)
	}
	one := XIO(1, 1, 0)
	if got := one.MinReplicaBW(); got != one.IntraBW {
		t.Fatalf("single-node replica bw = %v", got)
	}
}

func TestAggregateDiskSpace(t *testing.T) {
	p := XIO(4, 2, 10*GB)
	if got := p.AggregateDiskSpace(); got != 40*GB {
		t.Fatalf("aggregate = %d", got)
	}
	u := XIO(4, 2, 0)
	if got := u.AggregateDiskSpace(); got >= 0 {
		t.Fatalf("unlimited aggregate = %d, want negative sentinel", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	p := XIO(0, 4, 0)
	if err := p.Validate(); err == nil {
		t.Fatal("no compute nodes accepted")
	}
	p2 := XIO(4, 0, 0)
	if err := p2.Validate(); err == nil {
		t.Fatal("no storage nodes accepted")
	}
	p3 := XIO(2, 2, 0)
	p3.InterBW = 0
	if err := p3.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestPaperConstants(t *testing.T) {
	// Guard the published test-bed numbers against accidental edits.
	if XIODiskBW != 210*MB {
		t.Error("XIO disk bandwidth drifted from the published 210 MB/s")
	}
	if OSUMEDLinkBW != 12.5*MB {
		t.Error("OSUMED link drifted from 100 Mbps")
	}
	if math.Abs(PaperComputeFactor*MB-0.001) > 1e-12 {
		t.Error("compute factor drifted from 0.001 s/MB")
	}
}

func TestUniform(t *testing.T) {
	p := Uniform(3, 2, GB, 10*MB, 100*MB)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.RemoteBW(0, 1); got != 10*MB {
		t.Fatalf("remote bw = %v", got)
	}
	if got := p.ReplicaBW(0, 1); got != 100*MB {
		t.Fatalf("replica bw = %v", got)
	}
}
