package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-local call graph every interprocedural
// check (ordertaint, lockorder, and the transitive halves of
// nowallclock/tracepurity) walks. It is constructed purely from the
// loader's type information — no SSA, no go/packages:
//
//   - one node per declared function or method with a body, plus one
//     node per function literal (goroutine bodies, deferred closures,
//     comparators) with an edge from the enclosing function to the
//     literal at the literal's position — a literal "may be invoked"
//     wherever it syntactically appears, which over-approximates go,
//     defer, and callback invocation alike;
//   - static calls (package functions, concrete methods) resolve to
//     their single callee;
//   - interface method calls resolve through method sets to every
//     module-local concrete type implementing the interface — sound
//     for module-internal dynamism, silent on externally-provided
//     implementations;
//   - calls through function-typed variables are recorded as
//     unresolved (the node is marked, downstream passes stay
//     conservative about what they prove, not about what they report).
//
// Besides edges, each node carries the raw facts the engine filters
// later: wall-clock and global-rand call sites, and mutex
// lock/unlock operations with their resolved lock identities.
type callGraph struct {
	// nodes in deterministic order: (package path, position).
	nodes  []*cgNode
	byFunc map[*types.Func]*cgNode
	byLit  map[*ast.FuncLit]*cgNode
	// namedTypes is every module-local defined type, used to resolve
	// interface method calls through method sets.
	namedTypes []*types.Named
}

// cgNode is one function body: a declared function/method or a
// function literal.
type cgNode struct {
	pkg *Package
	// fn is nil for function literals.
	fn  *types.Func
	lit *ast.FuncLit
	// decl is nil for function literals.
	decl *ast.FuncDecl
	body *ast.BlockStmt
	pos  token.Pos

	calls []cgCall
	// unresolved marks at least one call through a function value.
	unresolved bool

	// Raw per-body facts (unfiltered by suppressions; the engine
	// applies those when seeding fixpoints).
	clockReads []extCall // time.Now / time.Since / time.Until
	randReads  []extCall // global math/rand stream draws
	lockOps    []lockOp
}

// name returns a human-readable identity for messages.
func (n *cgNode) name() string {
	if n.fn != nil {
		if recv := n.fn.Type().(*types.Signature).Recv(); recv != nil {
			return shortTypeName(recv.Type()) + "." + n.fn.Name()
		}
		return n.fn.Name()
	}
	return "func literal"
}

// cgCall is one call site inside a node's body.
type cgCall struct {
	pos token.Pos
	// node is the module-local callee (nil when external/unresolved).
	node *cgNode
}

// extCall is a call to an external package function we classify
// (time.Now, rand.Shuffle, …).
type extCall struct {
	pos  token.Pos
	name string // qualified, e.g. "time.Now"
}

// lockOp is one mutex operation with its resolved lock identity.
type lockOp struct {
	pos token.Pos
	// obj identifies the lock at class level: the struct field
	// (all instances of Metrics.mu are one lock) or the variable.
	obj     types.Object
	name    string // display name, e.g. "Metrics.mu"
	acquire bool   // Lock/RLock vs Unlock/RUnlock
	// deferred marks `defer mu.Unlock()`: the release happens at
	// function exit, so the lock stays held for the rest of the body.
	deferred bool
}

// buildCallGraph constructs the graph over every loaded package.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{
		byFunc: map[*types.Func]*cgNode{},
		byLit:  map[*ast.FuncLit]*cgNode{},
	}
	// Pass 0: collect named types for interface resolution.
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, nm := range scope.Names() {
			if tn, ok := scope.Lookup(nm).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					cg.namedTypes = append(cg.namedTypes, named)
				}
			}
		}
	}
	// Pass 1: create nodes for every declared function and literal.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &cgNode{pkg: pkg, fn: fn, decl: fd, body: fd.Body, pos: fd.Pos()}
				cg.byFunc[fn] = n
				cg.nodes = append(cg.nodes, n)
			}
		}
	}
	// Pass 2: walk each declared body, splitting out literals into
	// their own nodes and recording calls/facts per innermost body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				cg.walkBody(cg.byFunc[fn], pkg, fd.Body)
			}
		}
	}
	sort.SliceStable(cg.nodes, func(i, j int) bool {
		a, b := cg.nodes[i], cg.nodes[j]
		if a.pkg.Path != b.pkg.Path {
			return a.pkg.Path < b.pkg.Path
		}
		return a.pos < b.pos
	})
	return cg
}

// walkBody records calls and facts of body into owner, creating child
// nodes for nested function literals (which are walked recursively).
func (cg *callGraph) walkBody(owner *cgNode, pkg *Package, body *ast.BlockStmt) {
	var inDefer []ast.Node // DeferStmt call exprs, to mark deferred unlocks
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			child := &cgNode{pkg: pkg, lit: x, body: x.Body, pos: x.Pos()}
			cg.byLit[x] = child
			cg.nodes = append(cg.nodes, child)
			owner.calls = append(owner.calls, cgCall{pos: x.Pos(), node: child})
			cg.walkBody(child, pkg, x.Body)
			return false // child owns everything inside
		case *ast.DeferStmt:
			inDefer = append(inDefer, x.Call)
			return true
		case *ast.CallExpr:
			deferred := false
			for _, d := range inDefer {
				if d == n {
					deferred = true
					break
				}
			}
			cg.recordCall(owner, pkg, x, deferred)
			return true
		}
		return true
	})
}

// recordCall classifies one call expression.
func (cg *callGraph) recordCall(owner *cgNode, pkg *Package, call *ast.CallExpr, deferred bool) {
	fun := ast.Unparen(call.Fun)
	switch fe := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fe].(type) {
		case *types.Func:
			cg.addEdge(owner, call.Pos(), obj)
		case *types.Builtin, *types.TypeName:
			// len/cap/append/conversions: no edge.
		case *types.Var:
			owner.unresolved = true // call through a function value
		case nil:
			// conversion to unnamed type, etc.
		default:
			owner.unresolved = true
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: walkBody already added the
		// owner→literal edge when it visited the literal.
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fe]; ok {
			// Method (or method-value) call.
			mfn, ok := sel.Obj().(*types.Func)
			if !ok {
				owner.unresolved = true
				return
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				cg.addInterfaceEdges(owner, call.Pos(), iface, mfn.Name())
			} else {
				cg.classifyExternal(owner, fe, mfn, call, deferred)
				cg.addEdge(owner, call.Pos(), mfn)
			}
			return
		}
		// Qualified call pkg.F(...).
		if fn, ok := pkg.Info.Uses[fe.Sel].(*types.Func); ok {
			cg.classifyExternal(owner, fe, fn, call, deferred)
			cg.addEdge(owner, call.Pos(), fn)
			return
		}
		if _, ok := pkg.Info.Uses[fe.Sel].(*types.Var); ok {
			owner.unresolved = true // stored func field/value
		}
	default:
		owner.unresolved = true
	}
}

// addEdge links owner to the callee if it is module-local.
func (cg *callGraph) addEdge(owner *cgNode, pos token.Pos, callee *types.Func) {
	if n, ok := cg.byFunc[callee]; ok {
		owner.calls = append(owner.calls, cgCall{pos: pos, node: n})
	}
}

// addInterfaceEdges resolves an interface method call to every
// module-local concrete implementation.
func (cg *callGraph) addInterfaceEdges(owner *cgNode, pos token.Pos, iface *types.Interface, method string) {
	for _, named := range cg.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if mfn, ok := obj.(*types.Func); ok {
			cg.addEdge(owner, pos, mfn)
		}
	}
}

// classifyExternal records wall-clock reads, global-rand draws, and
// mutex operations when the callee is one of the classified externals.
func (cg *callGraph) classifyExternal(owner *cgNode, sel *ast.SelectorExpr, fn *types.Func, call *ast.CallExpr, deferred bool) {
	if fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	switch fn.Pkg().Path() {
	case "time":
		if sig != nil && sig.Recv() == nil && wallClockFuncs[fn.Name()] {
			owner.clockReads = append(owner.clockReads, extCall{pos: sel.Pos(), name: "time." + fn.Name()})
		}
	case "math/rand", "math/rand/v2":
		if sig != nil && sig.Recv() == nil && !globalRandAllowed[fn.Name()] {
			owner.randReads = append(owner.randReads, extCall{pos: sel.Pos(), name: "rand." + fn.Name()})
		}
	case "sync":
		if sig == nil || sig.Recv() == nil {
			return
		}
		var acquire bool
		switch fn.Name() {
		case "Lock", "RLock":
			acquire = true
		case "Unlock", "RUnlock":
			acquire = false
		default:
			return // TryLock etc.: no ordering obligation
		}
		if rt := shortTypeName(sig.Recv().Type()); rt != "Mutex" && rt != "RWMutex" {
			return
		}
		if obj, name := owner.pkg.lockIdentity(sel.X); obj != nil {
			owner.lockOps = append(owner.lockOps, lockOp{
				pos: call.Pos(), obj: obj, name: name, acquire: acquire, deferred: deferred,
			})
		}
	}
}

// lockIdentity resolves the mutex expression of x.Lock() to a stable
// class-level identity: the struct field object for `v.mu` (every
// instance of that field is one lock) or the variable object for a
// plain `mu`. Returns nil for expressions we cannot name (map values,
// call results) — those never form provable cycles.
func (pkg *Package) lockIdentity(e ast.Expr) (types.Object, string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, v.Name()
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v, shortTypeName(sel.Recv()) + "." + v.Name()
			}
		}
		// Qualified package-level var: pkg.mu.
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return v, v.Name()
		}
	case *ast.StarExpr:
		return pkg.lockIdentity(x.X)
	}
	return nil, ""
}

// shortTypeName renders a type's local name without package
// qualifiers or pointer stars ("*obs.Metrics" → "Metrics").
func shortTypeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	s := t.String()
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}
