package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Metrics is a small registry of named counters, gauges, and
// histograms. All methods are safe for concurrent use and are no-ops
// on a nil receiver, so call sites never guard against an absent
// registry. Deterministic aggregation: counter and histogram merges
// are commutative, and the experiment harness merges per-cell
// registries in cell-index order, so a snapshot for a fixed seed is
// identical at any worker count.
type Metrics struct {
	mu     sync.Mutex
	counts map[string]int64
	gauges map[string]float64
	hists  map[string]*hist
}

// hist is a histogram over powers of two: bucket b counts observations
// v with 2^(b-1) < v <= 2^b (bucket 0 holds v <= 1, negatives and
// zeros included). Exponential buckets cover the nine-decade spread
// between microsecond phase latencies and multi-hour makespans.
type hist struct {
	count    int64
	sum      float64
	min, max float64
	buckets  map[int]int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counts: map[string]int64{},
		gauges: map[string]float64{},
		hists:  map[string]*hist{},
	}
}

// Count adds delta to the named counter.
func (m *Metrics) Count(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counts[name] += delta
	m.mu.Unlock()
}

// SetGauge records the current value of the named gauge (last write
// wins).
func (m *Metrics) SetGauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Observe adds one observation to the named histogram.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &hist{min: math.Inf(1), max: math.Inf(-1), buckets: map[int]int64{}}
		m.hists[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
	m.mu.Unlock()
}

// bucketOf returns the histogram bucket index for v: the smallest b
// with v <= 2^b, clamped so everything at or below 1 lands in 0.
func bucketOf(v float64) int {
	if !(v > 1) { // v <= 1, zero, negative, or NaN
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if frac == 0.5 {
		return exp - 1 // v is exactly 2^(exp-1)
	}
	return exp
}

// Merge folds all of o's series into m. Counter and histogram merges
// are commutative; gauge merges are last-write-wins, which is
// deterministic when the caller merges in a fixed order (the
// experiment harness merges per-cell registries in index order).
//
// o is snapshotted under its own lock before m's lock is taken, so the
// two Metrics.mu instances are never held together: concurrent
// a.Merge(b) and b.Merge(a) cannot deadlock on acquisition order
// (schedlint's lockorder check rejects the held-both form).
func (m *Metrics) Merge(o *Metrics) {
	if m == nil || o == nil {
		return
	}
	o.mu.Lock()
	counts := make(map[string]int64, len(o.counts))
	for k, v := range o.counts {
		counts[k] = v
	}
	gauges := make(map[string]float64, len(o.gauges))
	for k, v := range o.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*hist, len(o.hists))
	for k, oh := range o.hists {
		c := &hist{count: oh.count, sum: oh.sum, min: oh.min, max: oh.max,
			buckets: make(map[int]int64, len(oh.buckets))}
		for b, n := range oh.buckets {
			c.buckets[b] = n
		}
		hists[k] = c
	}
	o.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range counts {
		m.counts[k] += v
	}
	for k, v := range gauges {
		m.gauges[k] = v
	}
	for k, oh := range hists {
		h := m.hists[k]
		if h == nil {
			h = &hist{min: math.Inf(1), max: math.Inf(-1), buckets: map[int]int64{}}
			m.hists[k] = h
		}
		h.count += oh.count
		h.sum += oh.sum
		if oh.min < h.min {
			h.min = oh.min
		}
		if oh.max > h.max {
			h.max = oh.max
		}
		for b, c := range oh.buckets {
			h.buckets[b] += c
		}
	}
}

// quantile estimates the q-th quantile (q in (0,1]) by walking the
// buckets in ascending order and interpolating linearly inside the
// bucket where the cumulative count crosses q·count. Bucket bounds are
// clamped to the observed min/max, so single-valued histograms report
// the exact value at every quantile.
func (h *hist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	idx := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		idx = append(idx, b)
	}
	sort.Ints(idx)
	rank := q * float64(h.count)
	var cum int64
	for _, b := range idx {
		c := h.buckets[b]
		if float64(cum+c) >= rank {
			// Bucket b spans (2^(b-1), 2^b]; bucket 0 absorbs everything
			// at or below 1.
			lo, hi := math.Inf(-1), 1.0
			if b > 0 {
				lo, hi = math.Ldexp(1, b-1), math.Ldexp(1, b)
			}
			lo, hi = math.Max(lo, h.min), math.Min(hi, h.max)
			if hi <= lo {
				return lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.max
}

// HistSnapshot is the exported view of one histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// P50/P95/P99 are quantile estimates interpolated within the
	// power-of-two buckets; exact when a bucket holds one distinct
	// value, otherwise correct to within the bucket's width.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Buckets maps the bucket's upper bound 2^b, formatted as the
	// integer exponent b, to its observation count.
	Buckets map[string]int64 `json:"buckets"`
}

// Snapshot is a point-in-time copy of the whole registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. Safe on a nil
// receiver, which yields an empty snapshot.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counts {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	for k, h := range m.hists {
		hs := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			Buckets: make(map[string]int64, len(h.buckets))}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
			hs.P50 = h.quantile(0.50)
			hs.P95 = h.quantile(0.95)
			hs.P99 = h.quantile(0.99)
		}
		for b, c := range h.buckets {
			hs.Buckets[fmt.Sprintf("%d", b)] = c
		}
		s.Histograms[k] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. encoding/json
// serializes map keys in sorted order, so the bytes are deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: write metrics json: %w", err)
	}
	return nil
}

// WriteCSV writes the snapshot as kind,name,field,value rows sorted by
// series name.
func (s Snapshot) WriteCSV(w io.Writer) error {
	var rows []string
	for k, v := range s.Counters {
		rows = append(rows, fmt.Sprintf("counter,%s,value,%d", k, v))
	}
	for k, v := range s.Gauges {
		rows = append(rows, fmt.Sprintf("gauge,%s,value,%g", k, v))
	}
	for k, h := range s.Histograms {
		rows = append(rows, fmt.Sprintf("histogram,%s,count,%d", k, h.Count))
		rows = append(rows, fmt.Sprintf("histogram,%s,sum,%g", k, h.Sum))
		rows = append(rows, fmt.Sprintf("histogram,%s,min,%g", k, h.Min))
		rows = append(rows, fmt.Sprintf("histogram,%s,max,%g", k, h.Max))
		rows = append(rows, fmt.Sprintf("histogram,%s,mean,%g", k, h.Mean))
		rows = append(rows, fmt.Sprintf("histogram,%s,p50,%g", k, h.P50))
		rows = append(rows, fmt.Sprintf("histogram,%s,p95,%g", k, h.P95))
		rows = append(rows, fmt.Sprintf("histogram,%s,p99,%g", k, h.P99))
	}
	sort.Strings(rows)
	if _, err := fmt.Fprintln(w, "kind,name,field,value"); err != nil {
		return fmt.Errorf("obs: write metrics csv: %w", err)
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return fmt.Errorf("obs: write metrics csv: %w", err)
		}
	}
	return nil
}
