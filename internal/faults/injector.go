package faults

import "math"

// Injector is a FaultPlan compiled for one run over a compute cluster
// of known size. It is deliberately hash-based rather than stream-
// based: each decision mixes the seed with the stable identity of the
// event it concerns (node, round, file, destination, attempt), so the
// answer never depends on the order in which the executor asks.
//
// The only mutable state is the per-node crash cursor, advanced by
// ConsumeCrash when the runtime observes a crash; an Injector must
// therefore be used by one run at a time (the core runtime builds a
// fresh one per run).
type Injector struct {
	plan FaultPlan
	// crashes[n] is node n's cumulative crash-time sequence (absolute
	// simulated seconds), generated lazily; cursor[n] indexes the next
	// pending (unconsumed) event. Node-indexed slices, never maps, so
	// iteration order is fixed.
	crashes [][]float64
	cursor  []int
}

// NewInjector compiles the plan for a cluster with numCompute nodes.
// Disabled plans (nil or zero) compile to a nil Injector, which is the
// runtime's signal to take the fault-free fast path.
func NewInjector(p *FaultPlan, numCompute int) *Injector {
	if !p.Enabled() {
		return nil
	}
	return &Injector{
		plan:    p.WithDefaults(),
		crashes: make([][]float64, numCompute),
		cursor:  make([]int, numCompute),
	}
}

// Plan returns the compiled plan with defaults applied.
func (in *Injector) Plan() FaultPlan { return in.plan }

// MaxTransferRetries returns the per-staging attempt bound.
func (in *Injector) MaxTransferRetries() int { return in.plan.MaxTransferRetries }

// TaskRetryBudget returns the per-task re-queue bound.
func (in *Injector) TaskRetryBudget() int { return in.plan.TaskRetryBudget }

// Decision domains, mixed into the hash so that e.g. crash draws and
// transfer draws over the same indices stay independent.
const (
	kindCrash uint64 = iota + 1
	kindXferFail
	kindXferFrac
	kindStragHit
	kindStragFactor
	// Speculative-twin domains, appended so every pre-existing draw
	// keeps its value: a run that never forks twins is bit-identical
	// to one under an injector without these domains.
	kindSpecHit
	kindSpecFactor
)

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer
// with no state, used here as a keyed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 hashes (seed, parts...) to a uniform float64 in [0, 1).
func (in *Injector) u01(parts ...uint64) float64 {
	h := splitmix64(uint64(in.plan.Seed))
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return float64(h>>11) / (1 << 53)
}

func (in *Injector) mttf(n int) float64 {
	if n < len(in.plan.PerNodeMTTF) && in.plan.PerNodeMTTF[n] > 0 {
		return in.plan.PerNodeMTTF[n]
	}
	return in.plan.NodeMTTF
}

// extendCrashes generates node n's crash sequence up to index k.
func (in *Injector) extendCrashes(n, k int) {
	m := in.mttf(n)
	if m <= 0 {
		return
	}
	seq := in.crashes[n]
	for len(seq) <= k {
		i := len(seq)
		u := in.u01(kindCrash, uint64(n), uint64(i))
		// Exponential inter-crash gap with a tiny floor so two events
		// never coincide exactly.
		dt := -m * math.Log1p(-u)
		if dt < 1e-9 {
			dt = 1e-9
		}
		prev := 0.0
		if i > 0 {
			prev = seq[i-1]
		}
		seq = append(seq, prev+dt)
	}
	in.crashes[n] = seq
}

// CrashTime returns the absolute simulated time of compute node n's
// next pending crash, or +Inf when node n never crashes. The pending
// event stays pending until ConsumeCrash is called (the runtime
// consumes it when the crash is observed, i.e. falls inside an
// executed sub-batch window).
func (in *Injector) CrashTime(n int) float64 {
	if in == nil || in.mttf(n) <= 0 || n >= len(in.cursor) {
		return math.Inf(1)
	}
	in.extendCrashes(n, in.cursor[n])
	return in.crashes[n][in.cursor[n]]
}

// ConsumeCrash advances node n past its pending crash event: the node
// has rebooted and the next CrashTime call returns the following
// event.
func (in *Injector) ConsumeCrash(n int) {
	if in == nil || n >= len(in.cursor) {
		return
	}
	in.cursor[n]++
}

// TransferFail decides whether one transfer attempt fails. The
// identity is (file, dst, src, round, attempt): src is the source
// compute node or -1 for a remote (storage) transfer, round is the
// sub-batch ordinal, attempt counts from 1. On failure, frac in
// (0, 1) is how far through its duration the attempt dies.
func (in *Injector) TransferFail(file, dst, src, round, attempt int) (frac float64, failed bool) {
	if in == nil || in.plan.LinkFailProb <= 0 {
		return 0, false
	}
	id := []uint64{kindXferFail, uint64(file), uint64(dst), uint64(int64(src) + 2), uint64(round), uint64(attempt)}
	if in.u01(id...) >= in.plan.LinkFailProb {
		return 0, false
	}
	id[0] = kindXferFrac
	// Die somewhere in the middle 90% of the transfer so partial
	// reservations are never degenerate.
	return 0.05 + 0.9*in.u01(id...), true
}

// Straggler returns the slowdown multiplier (>= 1) for one execution
// attempt of task t in sub-batch round.
func (in *Injector) Straggler(task, round int) float64 {
	if in == nil || in.plan.StragglerProb <= 0 || in.plan.StragglerFactor <= 1 {
		return 1
	}
	if in.u01(kindStragHit, uint64(task), uint64(round)) >= in.plan.StragglerProb {
		return 1
	}
	return 1 + (in.plan.StragglerFactor-1)*in.u01(kindStragFactor, uint64(task), uint64(round))
}

// SpecStraggler returns the slowdown multiplier (>= 1) for the
// speculative twin attempt of one task in one sub-batch round. The
// identity is (task, round) like Straggler's, but hashed through
// disjoint domains: the twin's luck is independent of the primary's,
// and consulting it never perturbs any primary-path draw (launching a
// twin cannot change what happens to tasks that are not speculated).
func (in *Injector) SpecStraggler(task, round int) float64 {
	if in == nil || in.plan.StragglerProb <= 0 || in.plan.StragglerFactor <= 1 {
		return 1
	}
	if in.u01(kindSpecHit, uint64(task), uint64(round)) >= in.plan.StragglerProb {
		return 1
	}
	return 1 + (in.plan.StragglerFactor-1)*in.u01(kindSpecFactor, uint64(task), uint64(round))
}

// StragglerDist returns the compiled plan's slowdown distribution.
func (in *Injector) StragglerDist() StragglerDist {
	if in == nil {
		return StragglerDist{}
	}
	return in.plan.StragglerDist()
}

// Backoff returns the capped exponential delay before retry attempt a
// (a counts from 2; the first attempt has no delay).
func (in *Injector) Backoff(attempt int) float64 {
	if in == nil || attempt <= 1 {
		return 0
	}
	d := in.plan.BackoffBase * math.Pow(2, float64(attempt-2))
	if d > in.plan.BackoffCap {
		return in.plan.BackoffCap
	}
	return d
}
