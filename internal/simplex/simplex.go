// Package simplex implements a sparse revised simplex solver for
// linear programs with bounded variables:
//
//	min  cᵀx
//	s.t. Ax = b,  l ≤ x ≤ u   (entries of l may be -Inf, of u +Inf)
//
// It is the linear-programming engine underneath internal/mip, which
// together replace the paper's external lp_solve dependency. The
// implementation is a textbook two-phase bounded-variable revised
// simplex with a product-form-of-the-inverse (eta file) basis
// representation, periodic refactorization, Dantzig pricing with a
// Bland anti-cycling fallback, and a two-sided ratio test with bound
// flips.
//
// Inequality rows are handled by the caller (internal/mip) by adding
// slack columns; this package deals only with the equality standard
// form above.
package simplex

import (
	"fmt"
	"math"
	"time"
)

// Entry is one nonzero of a sparse column.
type Entry struct {
	Row int32
	Val float64
}

// LP is a linear program in equality standard form. All slices are
// indexed by column except B, indexed by row.
type LP struct {
	NumRows int
	Cost    []float64
	Lower   []float64
	Upper   []float64
	B       []float64
	Cols    [][]Entry
}

// NumCols returns the number of structural columns.
func (lp *LP) NumCols() int { return len(lp.Cols) }

// Validate checks structural consistency.
func (lp *LP) Validate() error {
	n := lp.NumCols()
	if len(lp.Cost) != n || len(lp.Lower) != n || len(lp.Upper) != n {
		return fmt.Errorf("simplex: cost/bound slices disagree with %d columns", n)
	}
	if len(lp.B) != lp.NumRows {
		return fmt.Errorf("simplex: rhs has %d entries for %d rows", len(lp.B), lp.NumRows)
	}
	for j, col := range lp.Cols {
		if lp.Lower[j] > lp.Upper[j] {
			return fmt.Errorf("simplex: column %d has crossed bounds [%g,%g]", j, lp.Lower[j], lp.Upper[j])
		}
		for _, e := range col {
			if int(e.Row) < 0 || int(e.Row) >= lp.NumRows {
				return fmt.Errorf("simplex: column %d references row %d of %d", j, e.Row, lp.NumRows)
			}
			if e.Val == 0 || math.IsNaN(e.Val) || math.IsInf(e.Val, 0) {
				return fmt.Errorf("simplex: column %d has invalid coefficient %g", j, e.Val)
			}
		}
	}
	return nil
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
	Singular
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case Singular:
		return "singular-basis"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Options tunes the solver. Zero values select defaults.
type Options struct {
	// MaxIters caps total simplex iterations (default 20000 + 50·rows).
	MaxIters int
	// RefactorEvery rebuilds the eta file after this many pivots
	// (default 120).
	RefactorEvery int
	// Tol is the feasibility/optimality tolerance (default 1e-7).
	Tol float64
	// Deadline, when nonzero, aborts the solve with IterLimit status
	// once passed (checked every few iterations).
	Deadline time.Time
	// Trace, when non-nil, receives a line per pivot (debugging).
	Trace func(format string, args ...interface{})
}

func (o Options) withDefaults(rows int) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 20000 + 50*rows
	}
	if o.RefactorEvery == 0 {
		o.RefactorEvery = 120
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	return o
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	// Obj is the objective value of X (meaningful for Optimal and
	// IterLimit — for the latter it is the best feasible point reached
	// if Phase 1 finished, else NaN).
	Obj float64
	// X holds the structural variable values.
	X []float64
	// Iters counts simplex iterations performed.
	Iters int
}

// Solve optimizes the LP.
func Solve(lp *LP, opt Options) (*Result, error) {
	return SolveWS(new(Workspace), lp, opt)
}

// Workspace caches every per-solve allocation of the solver — the
// bound/cost/column shadow arrays, basis bookkeeping, dense scratch
// vectors and the solution buffer — so repeated solves (branch-and-
// bound explores thousands of nodes against the same matrix) reuse
// memory instead of churning the heap. A Workspace may be reused
// across LPs of any size; it grows monotonically. It is not safe for
// concurrent use: give each solving goroutine its own.
type Workspace struct {
	cost, lower, upper []float64
	cols               [][]Entry
	state              []varState
	basic, inRow       []int32
	xB, w, y           []float64
	phase1             []float64
	x                  []float64
}

// SolveWS optimizes the LP reusing ws's buffers. Unlike Solve, the
// returned Result.X aliases workspace memory: it is valid only until
// the next SolveWS call with the same workspace and must be copied by
// callers that keep it.
func SolveWS(ws *Workspace, lp *LP, opt Options) (*Result, error) {
	if err := lp.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(lp.NumRows)
	s := newSolver(ws, lp, opt)
	return s.solve(), nil
}

func growF(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

func growI(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

// varState tracks where a column currently lives.
type varState int8

const (
	atLower varState = iota
	atUpper
	inBasis
)

// eta is one elementary transformation of the product-form inverse:
// the basis changed by bringing a column whose FTRANed form is w with
// pivot row p.
type eta struct {
	pivot int32
	col   []Entry // includes the pivot entry
}

type solver struct {
	lp  *LP
	opt Options

	m, n  int // rows, total columns incl. artificials
	cost  []float64
	lower []float64
	upper []float64
	cols  [][]Entry

	state []varState
	basic []int32   // basic[r] = column basic in row r
	inRow []int32   // inRow[j] = row of basic column j, -1 otherwise
	xB    []float64 // values of basic columns by row

	etas       []eta
	iters      int
	phase      int
	nArt       int
	stallCount int
	priceStart int

	// scratch
	w  []float64
	y  []float64
	wN []int32 // nonzero pattern scratch

	// ws owns every slice above plus the phase-1 cost and solution
	// buffers; the solver itself is rebuilt per solve.
	ws *Workspace
}

func newSolver(ws *Workspace, lp *LP, opt Options) *solver {
	m := lp.NumRows
	n := lp.NumCols()
	s := &solver{lp: lp, opt: opt, m: m, ws: ws}
	total := n + m // reserve artificials
	// Every slice comes from the workspace; entries a previous solve
	// left behind are either overwritten below (structural columns),
	// by start() (artificial columns, basis arrays, xB), or
	// immediately before each use (w, y) — only inRow needs an
	// explicit full reset.
	ws.cost = growF(ws.cost, total)
	ws.lower = growF(ws.lower, total)
	ws.upper = growF(ws.upper, total)
	if cap(ws.cols) < total {
		ws.cols = make([][]Entry, total)
	}
	ws.cols = ws.cols[:total]
	s.cost = ws.cost
	s.lower = ws.lower
	s.upper = ws.upper
	s.cols = ws.cols
	copy(s.cost, lp.Cost)
	copy(s.lower, lp.Lower)
	copy(s.upper, lp.Upper)
	copy(s.cols, lp.Cols)
	s.n = n
	if cap(ws.state) < total {
		ws.state = make([]varState, total)
	}
	ws.state = ws.state[:total]
	s.state = ws.state
	ws.basic = growI(ws.basic, m)
	ws.inRow = growI(ws.inRow, total)
	s.basic = ws.basic
	s.inRow = ws.inRow
	for j := range s.inRow {
		s.inRow[j] = -1
	}
	ws.xB = growF(ws.xB, m)
	ws.w = growF(ws.w, m)
	ws.y = growF(ws.y, m)
	s.xB = ws.xB
	s.w = ws.w
	s.y = ws.y
	return s
}

// start initializes an all-artificial basis: every structural column
// rests at its finite bound nearest zero (free columns at 0), and an
// artificial per row absorbs the residual.
func (s *solver) start() {
	for j := 0; j < s.n; j++ {
		switch {
		case s.lower[j] > math.Inf(-1):
			s.state[j] = atLower
		case s.upper[j] < math.Inf(1):
			s.state[j] = atUpper
		default:
			// Free variable: encode "at value 0" by temporarily
			// treating it as at a pseudo-lower bound of 0; the bound
			// arrays keep -Inf so the ratio test never flips it.
			s.state[j] = atLower
		}
	}
	resid := make([]float64, s.m)
	copy(resid, s.lp.B)
	for j := 0; j < s.n; j++ {
		v := s.valueAtBound(j)
		if v == 0 {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.Row] -= e.Val * v
		}
	}
	for r := 0; r < s.m; r++ {
		// Artificial columns always carry coefficient +1 so the
		// initial basis is exactly the identity (the empty eta file);
		// a negative residual is absorbed by letting the artificial
		// range below zero, with a signed phase-1 cost so that
		// minimizing still drives |a| to 0.
		j := s.n + r
		s.cols[j] = []Entry{{Row: int32(r), Val: 1}}
		if resid[r] >= 0 {
			s.lower[j] = 0
			s.upper[j] = math.Inf(1)
		} else {
			s.lower[j] = math.Inf(-1)
			s.upper[j] = 0
		}
		s.cost[j] = 0
		s.state[j] = inBasis
		s.basic[r] = int32(j)
		s.inRow[j] = int32(r)
		s.xB[r] = resid[r]
	}
	s.nArt = s.m
	s.n += s.m
}

// valueAtBound returns the current value of nonbasic column j.
func (s *solver) valueAtBound(j int) float64 {
	switch s.state[j] {
	case atLower:
		if math.IsInf(s.lower[j], -1) {
			return 0
		}
		return s.lower[j]
	case atUpper:
		if math.IsInf(s.upper[j], 1) {
			return 0
		}
		return s.upper[j]
	}
	panic("simplex: valueAtBound on basic column")
}

func (s *solver) solve() *Result {
	s.start()
	// Phase 1: minimize the sum of artificial magnitudes (+a for
	// artificials bounded below by 0, −a for those bounded above by 0).
	// The buffer is workspace-owned: zero the structural prefix a
	// previous solve may have dirtied (the artificial tail is fully
	// written just below).
	s.ws.phase1 = growF(s.ws.phase1, s.n)
	phase1Cost := s.ws.phase1
	for j := 0; j < s.lp.NumCols(); j++ {
		phase1Cost[j] = 0
	}
	for r := 0; r < s.m; r++ {
		j := s.lp.NumCols() + r
		if math.IsInf(s.lower[j], -1) {
			phase1Cost[j] = -1
		} else {
			phase1Cost[j] = 1
		}
	}
	saved := s.cost
	s.cost = phase1Cost
	s.phase = 1
	st := s.iterate()
	if st == IterLimit {
		return &Result{Status: IterLimit, Obj: math.NaN(), X: s.extractX(), Iters: s.iters}
	}
	if st == Singular {
		return &Result{Status: Singular, Obj: math.NaN(), Iters: s.iters}
	}
	if s.objective() > s.opt.Tol*float64(1+s.m) {
		return &Result{Status: Infeasible, Obj: math.NaN(), Iters: s.iters}
	}
	// Pin artificials to zero and restore the real objective.
	for r := 0; r < s.m; r++ {
		j := s.lp.NumCols() + r
		s.lower[j] = 0
		s.upper[j] = 0
		if s.state[j] == atUpper {
			s.state[j] = atLower // both bounds are 0 now
		}
	}
	s.cost = saved
	// saved has length total; it was allocated that long in newSolver.
	s.phase = 2
	st = s.iterate()
	res := &Result{Status: st, Iters: s.iters, X: s.extractX()}
	res.Obj = s.structuralObjective()
	if st == Unbounded {
		res.Obj = math.Inf(-1)
	}
	return res
}

// objective returns cᵀx under the current (possibly phase-1) cost.
func (s *solver) objective() float64 {
	var obj float64
	for j := 0; j < s.n; j++ {
		if s.state[j] != inBasis {
			obj += s.cost[j] * s.valueAtBound(j)
		}
	}
	for r := 0; r < s.m; r++ {
		obj += s.cost[s.basic[r]] * s.xB[r]
	}
	return obj
}

// structuralObjective evaluates the original cost on the structural
// columns only.
func (s *solver) structuralObjective() float64 {
	x := s.extractX()
	var obj float64
	for j := range x {
		obj += s.lp.Cost[j] * x[j]
	}
	return obj
}

func (s *solver) extractX() []float64 {
	// Workspace-owned: every structural entry is written below (a
	// column is either nonbasic — first loop — or basic — second), so
	// stale contents never leak.
	s.ws.x = growF(s.ws.x, s.lp.NumCols())
	x := s.ws.x
	for j := range x {
		if s.state[j] != inBasis {
			x[j] = s.valueAtBound(j)
		}
	}
	for r := 0; r < s.m; r++ {
		if int(s.basic[r]) < len(x) {
			x[s.basic[r]] = s.xB[r]
		}
	}
	return x
}
