package jdp

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

func state(t *testing.T, b *batch.Batch, compute int, disk int64) *core.State {
	t.Helper()
	p := &core.Problem{Batch: b, Platform: platform.XIO(compute, 2, disk)}
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestJobDataPresentFavorsDataLocality(t *testing.T) {
	b := batch.New()
	f := b.AddFile("hot", 100*platform.MB, 0)
	b.AddTask("t", 0.01, []batch.FileID{f})
	st := state(t, b, 3, 0)
	if err := st.AddFile(2, f, 0); err != nil {
		t.Fatal(err)
	}
	plan, err := New().PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Node[0] != 2 {
		t.Fatalf("task routed to node %d, want 2 (holds the data)", plan.Node[0])
	}
}

func TestDaemonReplicatesPopularFiles(t *testing.T) {
	// One file needed by many pending tasks: the DataLeastLoaded
	// daemon must schedule a pre-stage replica.
	b := batch.New()
	f := b.AddFile("hot", 10*platform.MB, 0)
	priv := b.AddFile("cold", 10*platform.MB, 1)
	for i := 0; i < 10; i++ {
		b.AddTask("", 0.5, []batch.FileID{f})
	}
	b.AddTask("solo", 0.5, []batch.FileID{priv})
	st := state(t, b, 3, 0)
	s := New()
	plan, err := s.PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	foundHot := false
	for _, op := range plan.PreStage {
		if op.File == f {
			foundHot = true
		}
		if op.File == priv {
			t.Error("unpopular file replicated by the daemon")
		}
	}
	if !foundHot {
		t.Error("popular file not replicated by the daemon")
	}
}

func TestDaemonRespectsCap(t *testing.T) {
	b := workload.Random(2, 40, 10, 3, 2, 10*platform.MB, platform.PaperComputeFactor)
	st := state(t, b, 3, 0)
	s := New()
	s.MaxReplicasPerRound = 2
	plan, err := s.PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PreStage) > 2 {
		t.Fatalf("daemon staged %d replicas, cap 2", len(plan.PreStage))
	}
}

func TestNoDaemonWhenReplicationDisabled(t *testing.T) {
	b := workload.Random(3, 30, 10, 3, 2, 10*platform.MB, platform.PaperComputeFactor)
	p := &core.Problem{Batch: b, Platform: platform.XIO(3, 2, 0), DisableReplication: true}
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New().PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PreStage) != 0 {
		t.Fatalf("daemon ran with replication disabled: %d ops", len(plan.PreStage))
	}
}

func TestAllTasksPlannedUnlimited(t *testing.T) {
	b := workload.Random(4, 25, 40, 4, 2, 10*platform.MB, platform.PaperComputeFactor)
	st := state(t, b, 4, 0)
	plan, err := New().PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) != 25 {
		t.Fatalf("planned %d of 25", len(plan.Tasks))
	}
}

func TestLeastLoadedTieBreak(t *testing.T) {
	// No data anywhere: staging cost equal on all nodes, so tasks must
	// spread by load rather than pile on node 0.
	b := workload.Random(5, 12, 24, 2, 2, 10*platform.MB, platform.PaperComputeFactor)
	st := state(t, b, 3, 0)
	plan, err := New().PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[int]int{}
	for _, n := range plan.Node {
		nodes[n]++
	}
	if len(nodes) < 2 {
		t.Fatalf("no load spreading: %v", nodes)
	}
}
