package minmin

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

func state(t *testing.T, b *batch.Batch, compute int, disk int64) *core.State {
	t.Helper()
	p := &core.Problem{Batch: b, Platform: platform.XIO(compute, 2, disk)}
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPlanCoversEverythingWhenDiskUnlimited(t *testing.T) {
	b := workload.Random(1, 20, 30, 4, 2, 10*platform.MB, platform.PaperComputeFactor)
	st := state(t, b, 3, 0)
	s := New()
	plan, err := s.PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) != 20 {
		t.Fatalf("planned %d of 20 tasks", len(plan.Tasks))
	}
	if plan.Pinned {
		t.Fatal("MinMin plans must not be pinned")
	}
	for _, k := range plan.Tasks {
		if n, ok := plan.Node[k]; !ok || n < 0 || n >= 3 {
			t.Fatalf("task %d mapped to %d", k, n)
		}
	}
}

func TestRespectsDiskWhenPlanning(t *testing.T) {
	// Two nodes with room for ~3 files each; 10 tasks with one private
	// file each: a single sub-batch cannot host everything.
	b := batch.New()
	var fs []batch.FileID
	for i := 0; i < 10; i++ {
		fs = append(fs, b.AddFile("", 10*platform.MB, 0))
	}
	for i := 0; i < 10; i++ {
		b.AddTask("", 0.1, []batch.FileID{fs[i]})
	}
	st := state(t, b, 2, 30*platform.MB)
	s := New()
	plan, err := s.PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) == 0 || len(plan.Tasks) > 6 {
		t.Fatalf("planned %d tasks with room for at most 6", len(plan.Tasks))
	}
	// Per-node staged bytes must fit.
	load := map[int]int64{}
	for _, k := range plan.Tasks {
		load[plan.Node[k]] += b.TaskBytes(k)
	}
	for n, v := range load {
		if v > 30*platform.MB {
			t.Fatalf("node %d overcommitted: %d", n, v)
		}
	}
}

func TestPrefersNodeHoldingData(t *testing.T) {
	// A shared file already on node 1: MinMin's MCT must route the
	// task there (no staging cost) rather than node 0.
	b := batch.New()
	f := b.AddFile("hot", 100*platform.MB, 0)
	b.AddTask("t", 0.01, []batch.FileID{f})
	st := state(t, b, 2, 0)
	if err := st.AddFile(1, f, 0); err != nil {
		t.Fatal(err)
	}
	s := New()
	plan, err := s.PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Node[0] != 1 {
		t.Fatalf("task went to node %d, want 1 (data present)", plan.Node[0])
	}
}

func TestImplicitReplicationSpreadsCopies(t *testing.T) {
	// Many tasks sharing one file, tiny compute: MinMin balances load
	// across nodes, so the shared file is staged onto several nodes —
	// the "implicit replication" the paper names.
	b := batch.New()
	f := b.AddFile("hot", 50*platform.MB, 0)
	for i := 0; i < 12; i++ {
		b.AddTask("", 5.0 /* heavy compute forces spreading */, []batch.FileID{f})
	}
	st := state(t, b, 3, 0)
	s := New()
	plan, err := s.PlanSubBatch(st, b.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[int]bool{}
	for _, n := range plan.Node {
		nodes[n] = true
	}
	if len(nodes) < 2 {
		t.Fatalf("all tasks on one node; expected spreading, got %v", plan.Node)
	}
}

func TestErrorWhenNothingFits(t *testing.T) {
	// A disk already stuffed with other data and no room for the
	// pending task must produce an error rather than an empty plan.
	b := batch.New()
	blocker := b.AddFile("blocker", 90*platform.MB, 0)
	f := b.AddFile("big", 50*platform.MB, 0)
	b.AddTask("t", 1, []batch.FileID{f})
	st := state(t, b, 1, 100*platform.MB)
	if err := st.AddFile(0, blocker, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := New().PlanSubBatch(st, b.AllTasks()); err == nil {
		t.Fatal("expected an error when no pending task fits")
	}
}
