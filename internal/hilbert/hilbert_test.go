package hilbert

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		for d := 0; d < n*n; d++ {
			x, y := D2XY(n, d)
			if x < 0 || x >= n || y < 0 || y >= n {
				t.Fatalf("n=%d d=%d out of grid: (%d,%d)", n, d, x, y)
			}
			if got := XY2D(n, x, y); got != d {
				t.Fatalf("n=%d: XY2D(D2XY(%d)) = %d", n, d, got)
			}
		}
	}
}

func TestCurveIsContinuous(t *testing.T) {
	// Consecutive curve positions are grid neighbours (the defining
	// locality property).
	const n = 16
	px, py := D2XY(n, 0)
	for d := 1; d < n*n; d++ {
		x, y := D2XY(n, d)
		dist := abs(x-px) + abs(y-py)
		if dist != 1 {
			t.Fatalf("d=%d: jump of %d from (%d,%d) to (%d,%d)", d, dist, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestCurveVisitsEveryCellOnce(t *testing.T) {
	const n = 8
	seen := map[[2]int]bool{}
	for d := 0; d < n*n; d++ {
		x, y := D2XY(n, d)
		if seen[[2]int{x, y}] {
			t.Fatalf("cell (%d,%d) visited twice", x, y)
		}
		seen[[2]int{x, y}] = true
	}
	if len(seen) != n*n {
		t.Fatalf("visited %d cells of %d", len(seen), n*n)
	}
}

func TestDecluster(t *testing.T) {
	assign := Decluster(10, 5, 4)
	counts := map[int]int{}
	for y := range assign {
		for x := range assign[y] {
			node := assign[y][x]
			if node < 0 || node >= 4 {
				t.Fatalf("cell (%d,%d) on node %d", x, y, node)
			}
			counts[node]++
		}
	}
	// Round-robin along the curve keeps node loads within one cell.
	for n := 0; n < 4; n++ {
		if counts[n] < 50/4 || counts[n] > 50/4+1 {
			t.Fatalf("node %d holds %d of 50 cells", n, counts[n])
		}
	}
}

func TestDeclusterSpreadsNeighbours(t *testing.T) {
	// Adjacent cells along the curve land on different nodes, so a
	// small spatial window touches several storage nodes.
	assign := Decluster(8, 8, 4)
	same := 0
	total := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 7; x++ {
			total++
			if assign[y][x] == assign[y][x+1] {
				same++
			}
		}
	}
	if same*3 > total {
		t.Fatalf("too many horizontally adjacent cells share a node: %d/%d", same, total)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		n := 32
		d := int(raw) % (n * n)
		x, y := D2XY(n, d)
		return XY2D(n, x, y) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
