// Package bipart implements the paper's BiPartition scheduler (§5):
// a bi-level hypergraph-partitioning heuristic that decouples task
// scheduling from data replication.
//
// Level 1 (sub-batch selection, §5.2): the pending tasks form a
// hypergraph — one vertex per task, one net per file connecting the
// tasks that read it, net weight = file size. A Bounded Incident Net
// Weight (BINW) partition with bound D = aggregate free compute-
// cluster disk yields sub-batches whose file working sets each fit the
// cluster, while the connectivity-1 objective minimizes files shared
// across sub-batches.
//
// Level 2 (task mapping, §5.3): each sub-batch is partitioned K ways
// (K = compute nodes) minimizing connectivity-1 with vertex weights
// set to the probabilistic expected execution time of Eq. 25–26,
// which folds in the chance a file must come from storage
// (first-task-to-need-it) versus already being on some node.
//
// A repair pass enforces per-node disk capacity (§5.3): files staged
// to an over-full node are dropped in increasing order of their
// sharer count s_j, and tasks that lost files are deferred to later
// sub-batches. Eviction between sub-batches uses the §4.3 popularity
// policy.
package bipart

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/eviction"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// Scheduler is the BiPartition scheduler.
type Scheduler struct {
	// Epsilon is the second-level balance tolerance (default 0.05).
	Epsilon float64
	// BINWEpsilon is the first-level bisection tolerance (default 0.20).
	BINWEpsilon float64
	// Seed drives the randomized multilevel partitioner.
	Seed int64
	// UseComputeWeightsOnly replaces the Eq. 25–26 probabilistic vertex
	// weights with plain computation times (for the ablation bench).
	UseComputeWeightsOnly bool
	// GreedySubBatch replaces the first-level BINW partition with a
	// greedy smallest-new-bytes knapsack (for the ablation bench).
	GreedySubBatch bool
	// UseLRU swaps the §4.3 popularity eviction for LRU (for the
	// ablation bench).
	UseLRU bool
	// Workers bounds the goroutines of the recursive hypergraph
	// partitioners (0 = GOMAXPROCS, 1 = sequential). The schedule is a
	// pure function of Seed — Workers never changes the result, only
	// the wall-clock time to compute it.
	Workers int
	// Trace, when non-nil, receives sub-batch-selection and
	// task-mapping instants plus the partitioners' bisection spans.
	// Observability only: the schedule never depends on it.
	Trace obs.Tracer
}

// New returns a BiPartition scheduler with the paper's defaults.
func New(seed int64) *Scheduler {
	return &Scheduler{Epsilon: 0.05, BINWEpsilon: 0.20, Seed: seed}
}

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return "BiPartition" }

// Evict implements core.Scheduler using the §4.3 popularity policy
// (or LRU when the ablation flag is set).
func (s *Scheduler) Evict(st *core.State, pending []batch.TaskID) {
	if s.UseLRU {
		eviction.LRU(st, pending)
		return
	}
	eviction.Popularity(st, pending)
}

// PlanSubBatch implements core.Scheduler.
func (s *Scheduler) PlanSubBatch(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	tr := obs.OrNop(s.Trace)
	sub, err := s.selectSubBatch(st, pending)
	if err != nil {
		return nil, err
	}
	tr.Instant(obs.TrackSched, "bipart", "sub-batch selected",
		obs.A("pending", len(pending)), obs.A("selected", len(sub)))
	assign, err := s.mapTasks(st, sub)
	if err != nil {
		return nil, err
	}
	before := len(assign)
	assign = s.repairDisk(st, sub, assign)
	tr.Instant(obs.TrackSched, "bipart", "tasks mapped",
		obs.A("mapped", before), obs.A("after_repair", len(assign)))
	reason := "connectivity-1 K-way partition of the sub-batch hypergraph (Eq. 25–26 expected-time vertex weights)"
	if len(assign) == 0 {
		// Repair dropped everything; guarantee progress by placing the
		// single most-sharing task alone on the emptiest node.
		assign = s.fallbackSingle(st, pending)
		if len(assign) == 0 {
			return nil, fmt.Errorf("bipart: cannot place any pending task (pending %d)", len(pending))
		}
		reason = "disk repair dropped the whole mapping; single task placed on the emptiest fitting node"
	}
	plan := &core.SubPlan{Node: assign}
	for t := range assign {
		plan.Tasks = append(plan.Tasks, t)
	}
	plan.Tasks = batch.SortedCopy(plan.Tasks)
	if st.J.Enabled() {
		for _, t := range plan.Tasks {
			//schedlint:allow ordertaint plan.Tasks is sorted by SortedCopy above, so emission order is deterministic
			st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindPlace, Round: st.JRound,
				Place: &journal.Place{Task: int(t), Node: assign[t], Policy: "kway-partition",
					Reason: reason}})
		}
	}
	return plan, nil
}

// MapForWarmStart exposes the second-level mapping plus disk repair
// for a caller-chosen sub-batch; the IP scheduler uses it to seed its
// branch and bound with a feasible incumbent. An error is returned if
// the repaired mapping does not cover every task in sub.
func (s *Scheduler) MapForWarmStart(st *core.State, sub []batch.TaskID) (map[batch.TaskID]int, error) {
	assign, err := s.mapTasks(st, sub)
	if err != nil {
		return nil, err
	}
	assign = s.repairDisk(st, sub, assign)
	if len(assign) != len(sub) {
		return nil, fmt.Errorf("bipart: repair dropped %d of %d tasks", len(sub)-len(assign), len(sub))
	}
	return assign, nil
}

// selectSubBatch runs the first-level BINW partition and returns the
// sub-batch to execute now: the part with the highest total file
// affinity to data already on the cluster (ties: lowest part id), so
// warm copies get reused.
func (s *Scheduler) selectSubBatch(st *core.State, pending []batch.TaskID) ([]batch.TaskID, error) {
	b := st.P.Batch
	agg := st.AggregateFree()
	if b.TotalUniqueBytes(pending) <= agg {
		return pending, nil // everything fits: one sub-batch
	}
	if s.GreedySubBatch {
		return s.greedySubBatch(st, pending, agg), nil
	}
	h, _, files := buildHypergraph(st, pending, nil)
	part, np, err := hypergraph.PartitionBINWOpt(h, agg, hypergraph.BINWOptions{Eps: s.BINWEpsilon, Seed: s.Seed, Workers: s.Workers, Trace: s.Trace})
	if err != nil {
		return nil, err
	}
	if np == 1 {
		return pending, nil
	}
	// Score each part by bytes of its files already resident on the
	// compute cluster.
	scores := make([]int64, np)
	counted := make(map[[2]int]bool)
	for n := 0; n < h.NumN; n++ {
		f := files[n]
		resident := len(st.Holders(f)) > 0
		if !resident {
			continue
		}
		for _, v := range h.NetPins(n) {
			key := [2]int{n, part[v]}
			if !counted[key] {
				counted[key] = true
				scores[part[v]] += b.FileSize(f)
			}
		}
	}
	best := 0
	for p := 1; p < np; p++ {
		if scores[p] > scores[best] {
			best = p
		}
	}
	var sub []batch.TaskID
	for v, p := range part {
		if p == best {
			sub = append(sub, pending[v])
		}
	}
	return sub, nil
}

// greedySubBatch is the ablation alternative to BINW: pack tasks in
// ascending new-bytes order until the aggregate free disk is full.
func (s *Scheduler) greedySubBatch(st *core.State, pending []batch.TaskID, agg int64) []batch.TaskID {
	b := st.P.Batch
	seen := make(map[batch.FileID]bool)
	var used int64
	var sub []batch.TaskID
	remaining := append([]batch.TaskID(nil), pending...)
	for len(remaining) > 0 {
		bestIdx := -1
		var bestNew int64
		for idx, t := range remaining {
			var nb int64
			for _, f := range b.Tasks[t].Files {
				if !seen[f] {
					nb += b.FileSize(f)
				}
			}
			if bestIdx < 0 || nb < bestNew {
				bestIdx, bestNew = idx, nb
			}
		}
		if used+bestNew > agg {
			break
		}
		t := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		used += bestNew
		sub = append(sub, t)
		for _, f := range b.Tasks[t].Files {
			seen[f] = true
		}
	}
	if len(sub) == 0 && len(pending) > 0 {
		sub = pending[:1]
	}
	return batch.SortedCopy(sub)
}

// mapTasks runs the second-level K-way partition on the sub-batch.
func (s *Scheduler) mapTasks(st *core.State, sub []batch.TaskID) (map[batch.TaskID]int, error) {
	K := st.P.Platform.NumCompute()
	weights := s.vertexWeights(st, sub)
	h, _, _ := buildHypergraph(st, sub, weights)
	part, err := hypergraph.PartitionKWayOpt(h, K, hypergraph.KWayOptions{Eps: s.Epsilon, Seed: s.Seed + 1, Workers: s.Workers, Trace: s.Trace})
	if err != nil {
		return nil, err
	}
	assign := make(map[batch.TaskID]int, len(sub))
	for v, t := range sub {
		assign[t] = part[v]
	}
	return assign, nil
}

// vertexWeights computes the Eq. 25–26 expected execution times of the
// sub-batch tasks, scaled to int64 microseconds for the partitioner.
func (s *Scheduler) vertexWeights(st *core.State, sub []batch.TaskID) []int64 {
	p := st.P
	b := p.Batch
	K := float64(p.Platform.NumCompute())
	T := float64(len(sub))
	BWs := p.Platform.MinRemoteBW()
	BWc := p.Platform.MinReplicaBW()
	if p.DisableReplication {
		BWc = BWs
	}
	// sharers within the sub-batch
	sj := make(map[batch.FileID]int)
	for _, t := range sub {
		for _, f := range b.Tasks[t].Files {
			sj[f]++
		}
	}
	out := make([]int64, len(sub))
	for i, t := range sub {
		task := &b.Tasks[t]
		var exec float64
		bytes := b.TaskBytes(t)
		var cPerByte float64
		if bytes > 0 {
			cPerByte = task.Compute / float64(bytes)
		}
		for _, f := range task.Files {
			size := float64(b.FileSize(f))
			if s.UseComputeWeightsOnly {
				exec += size * cPerByte
				continue
			}
			sjf := float64(sj[f])
			probFNE := 1.0 / sjf
			probFE := (sjf / math.Max(T, 1)) * (1 / K)
			tr := probFNE/BWs + (1-probFNE)*(1-probFE)/math.Min(BWs, BWc)
			exec += size * (tr + 1/p.Platform.Compute[0].LocalReadBW + cPerByte)
		}
		out[i] = int64(exec * 1e6)
		if out[i] <= 0 {
			out[i] = 1
		}
	}
	return out
}

// repairDisk enforces per-node capacity (§5.3): for each over-full
// node, newly staged files are removed in increasing sharer count
// until the node fits, and tasks missing a removed file are dropped
// from the plan.
func (s *Scheduler) repairDisk(st *core.State, sub []batch.TaskID, assign map[batch.TaskID]int) map[batch.TaskID]int {
	b := st.P.Batch
	K := st.P.Platform.NumCompute()
	// sharers within the sub-batch
	sj := make(map[batch.FileID]int)
	for _, t := range sub {
		for _, f := range b.Tasks[t].Files {
			sj[f]++
		}
	}
	for i := 0; i < K; i++ {
		// Files to stage on node i.
		newFiles := make(map[batch.FileID]bool)
		for t, n := range assign {
			if n != i {
				continue
			}
			for _, f := range b.Tasks[t].Files {
				if !st.Holds(i, f) {
					newFiles[f] = true
				}
			}
		}
		var need int64
		var list []batch.FileID
		for f := range newFiles {
			need += b.FileSize(f)
			list = append(list, f)
		}
		free := st.Free(i)
		if need <= free {
			continue
		}
		sort.Slice(list, func(a, z int) bool {
			if sj[list[a]] != sj[list[z]] {
				return sj[list[a]] < sj[list[z]]
			}
			return list[a] < list[z]
		})
		removed := make(map[batch.FileID]bool)
		for _, f := range list {
			if need <= free {
				break
			}
			removed[f] = true
			need -= b.FileSize(f)
		}
		if len(removed) == 0 {
			continue
		}
		for t, n := range assign {
			if n != i {
				continue
			}
			for _, f := range b.Tasks[t].Files {
				if removed[f] {
					delete(assign, t)
					break
				}
			}
		}
	}
	return assign
}

// fallbackSingle places one pending task on the node where it fits
// with the most free space, or returns an empty map when impossible.
func (s *Scheduler) fallbackSingle(st *core.State, pending []batch.TaskID) map[batch.TaskID]int {
	b := st.P.Batch
	for _, t := range pending {
		best, bestFree := -1, int64(-1)
		for i := 0; i < st.P.Platform.NumCompute(); i++ {
			var need int64
			for _, f := range b.Tasks[t].Files {
				if !st.Holds(i, f) {
					need += b.FileSize(f)
				}
			}
			if free := st.Free(i); need <= free && free > bestFree {
				best, bestFree = i, free
			}
		}
		if best >= 0 {
			return map[batch.TaskID]int{t: best}
		}
	}
	return nil
}

// buildHypergraph constructs the task/file hypergraph of the given
// tasks. When weights is nil, vertex weights default to scaled compute
// times. It returns the hypergraph, the vertex→task mapping (identical
// to the input slice) and the net→file mapping.
func buildHypergraph(st *core.State, tasks []batch.TaskID, weights []int64) (*hypergraph.Hypergraph, []batch.TaskID, []batch.FileID) {
	b := st.P.Batch
	hb := hypergraph.NewBuilder()
	index := make(map[batch.TaskID]int, len(tasks))
	for i, t := range tasks {
		w := int64(b.Tasks[t].Compute * 1e6)
		if weights != nil {
			w = weights[i]
		}
		if w <= 0 {
			w = 1
		}
		hb.AddVertex(w)
		index[t] = i
	}
	// Nets: files accessed by ≥1 of these tasks.
	netOf := make(map[batch.FileID][]int)
	for _, t := range tasks {
		for _, f := range b.Tasks[t].Files {
			netOf[f] = append(netOf[f], index[t])
		}
	}
	var files []batch.FileID
	for f := range netOf {
		files = append(files, f)
	}
	sort.Slice(files, func(a, z int) bool { return files[a] < files[z] })
	for _, f := range files {
		hb.AddNet(b.FileSize(f), netOf[f])
	}
	h, err := hb.Build()
	if err != nil {
		panic(err) // inputs are pre-validated
	}
	return h, tasks, files
}
