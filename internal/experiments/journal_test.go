package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs/journal"
)

// chaosJournal runs the quick chaos matrix with a journal attached at
// the given worker count and returns the serialized journal bytes.
// Seed 1 is pinned (not quick()'s default) because at that seed the
// quick matrix actually forks speculative twins, so the invariance
// test covers the spec_* events rather than holding vacuously.
func chaosJournal(t *testing.T, workers int) []byte {
	t.Helper()
	o := quick()
	o.Seed = 1
	o.Workers = workers
	o.Obs.Journal = journal.New()
	if _, err := Chaos(o); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Obs.Journal.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJournalWorkerInvariance is the journal's determinism contract:
// the merged JSONL bytes of a seeded experiment — including fault,
// retry and eviction events — must be identical at any -workers count.
func TestJournalWorkerInvariance(t *testing.T) {
	seq := chaosJournal(t, 1)
	par := chaosJournal(t, 8)
	if len(seq) == 0 {
		t.Fatal("journal is empty")
	}
	if !bytes.Equal(seq, par) {
		la := bytes.Split(seq, []byte("\n"))
		lb := bytes.Split(par, []byte("\n"))
		for i := 0; i < len(la) && i < len(lb); i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("journal differs across worker counts at line %d:\n  1: %s\n  8: %s",
					i+1, la[i], lb[i])
			}
		}
		t.Fatalf("journal differs across worker counts: %d vs %d bytes", len(seq), len(par))
	}
	// The chaos matrix must actually exercise the interesting kinds.
	events, err := journal.ReadJSONL(bytes.NewReader(seq))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	for _, k := range []string{journal.KindCell, journal.KindRunStart, journal.KindPlan,
		journal.KindPlace, journal.KindStage, journal.KindExec, journal.KindFault,
		journal.KindSpecLaunch, journal.KindSpecWin, journal.KindSpecCancel,
		journal.KindRunEnd} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in chaos journal (kinds: %v)", k, kinds)
		}
	}
}

// TestJournalDoesNotPerturbSchedule asserts the observer contract: a
// run with a journal attached produces the same tables as one without.
func TestJournalDoesNotPerturbSchedule(t *testing.T) {
	plain, err := Chaos(quick())
	if err != nil {
		t.Fatal(err)
	}
	o := quick()
	o.Obs.Journal = journal.New()
	observed, err := Chaos(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Title != observed[i].Title {
			t.Fatalf("panel %d title differs", i)
		}
		for r := range plain[i].Rows {
			for c := range plain[i].Rows[r].Values {
				if plain[i].Rows[r].Values[c] != observed[i].Rows[r].Values[c] {
					t.Errorf("panel %d row %d col %d: %g (plain) vs %g (journaled)",
						i, r, c, plain[i].Rows[r].Values[c], observed[i].Rows[r].Values[c])
				}
			}
		}
	}
}
