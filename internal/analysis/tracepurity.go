package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// runTracePurity confines wall-clock reads to the observability layer.
// Where nowallclock bans time.Now/Since/Until inside solver packages
// outright, tracepurity covers the whole module: internal/obs is the
// one designated clock boundary, and every read elsewhere — CLI timing
// printouts, solver deadline checks — must carry an explicit
// //schedlint:allow tracepurity annotation stating why the read cannot
// influence the schedule. The annotations double as an auditable
// inventory of every clock site in the repository.
func runTracePurity(p *pass) {
	if isObsPackage(p.pkg.Path) {
		return
	}
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.objectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods like (time.Time).Sub compute on values already read
			}
			if wallClockFuncs[fn.Name()] {
				p.reportf(sel.Pos(), "time.%s outside internal/obs; route timing through the tracer or annotate //schedlint:allow tracepurity <why the read cannot affect the schedule>", fn.Name())
			}
			return true
		})
	}
	// The same boundary, enforced transitively: a helper that wraps
	// time.Now is as much a clock site as the read itself, and the
	// call graph pins it to every caller. Reads justified with an
	// allow annotation do not propagate — the annotation's reasoning
	// covers the wrapper's callers too.
	reportTransitiveReads(p, "tracepurity", false,
		"call to %s reaches %s at %s, a wall-clock read outside internal/obs; route timing through the tracer or annotate the read with //schedlint:allow tracepurity")
}

// isObsPackage reports whether path is the observability package (or
// its test binary), the module's designated wall-clock boundary.
func isObsPackage(path string) bool {
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path == "repro/internal/obs" || strings.HasSuffix(path, "/internal/obs")
}
