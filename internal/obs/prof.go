package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles bundles the standard Go profiling outputs the CLIs expose
// as flags. Empty paths disable the corresponding profile.
type Profiles struct {
	CPU     string // pprof CPU profile (-cpuprofile)
	Mem     string // pprof heap profile, written at stop (-memprofile)
	Runtime string // runtime/trace execution trace (-trace)
}

// Start begins the requested profiles and returns a stop function
// that flushes and closes them; call it exactly once, after the
// workload finishes. Any profile that fails to start aborts the rest.
func (p Profiles) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if p.CPU != "" {
		cpuF, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if p.Runtime != "" {
		traceF, err = os.Create(p.Runtime)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: runtime trace: %w", err)
		}
		if err = trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("obs: runtime trace: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if traceF != nil {
			trace.Stop()
			if err := traceF.Close(); err != nil {
				return fmt.Errorf("obs: runtime trace: %w", err)
			}
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
