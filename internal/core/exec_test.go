package core

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/platform"
)

// twoNodeProblem builds a 2-compute/1-storage platform with uniform
// bandwidths chosen for easy arithmetic: remote 10 MB/s, replica
// 100 MB/s, local read 40 MB/s.
func twoNodeProblem(t *testing.T, b *batch.Batch) *Problem {
	t.Helper()
	p := &Problem{Batch: b, Platform: platform.Uniform(2, 1, 0, 10*platform.MB, 100*platform.MB)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecuteSingleTaskTiming(t *testing.T) {
	b := batch.New()
	f := b.AddFile("f", 10*platform.MB, 0)
	task := b.AddTask("t", 1.0, []batch.FileID{f})
	p := twoNodeProblem(t, b)
	st, err := NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	plan := &SubPlan{Tasks: []batch.TaskID{task}, Node: map[batch.TaskID]int{task: 0}}
	stats, err := Execute(st, plan)
	if err != nil {
		t.Fatal(err)
	}
	// transfer 10MB @ 10MB/s = 1 s; local read 10MB @ 40MB/s = 0.25 s;
	// compute 1 s → makespan 2.25 s.
	want := 1.0 + 0.25 + 1.0
	if diff := stats.Makespan - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("makespan = %v, want %v", stats.Makespan, want)
	}
	if stats.RemoteTransfers != 1 || stats.ReplicaTransfers != 0 {
		t.Fatalf("transfers %d/%d", stats.RemoteTransfers, stats.ReplicaTransfers)
	}
	if !st.Holds(0, f) {
		t.Fatal("file not recorded on node 0")
	}
	if !st.Done[task] {
		t.Fatal("task not marked done")
	}
	if st.Clock != stats.Makespan {
		t.Fatal("clock not advanced")
	}
}

func TestExecutePrefersReplicaSource(t *testing.T) {
	// File already on node 1; a task on node 0 should pull the replica
	// (100 MB/s) instead of the remote path (10 MB/s).
	b := batch.New()
	f := b.AddFile("f", 10*platform.MB, 0)
	task := b.AddTask("t", 0.1, []batch.FileID{f})
	p := twoNodeProblem(t, b)
	st, err := NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddFile(1, f, 0); err != nil {
		t.Fatal(err)
	}
	plan := &SubPlan{Tasks: []batch.TaskID{task}, Node: map[batch.TaskID]int{task: 0}}
	stats, err := Execute(st, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplicaTransfers != 1 || stats.RemoteTransfers != 0 {
		t.Fatalf("expected one replica transfer, got %d/%d", stats.ReplicaTransfers, stats.RemoteTransfers)
	}
}

func TestExecutePinnedPlanFollowsSources(t *testing.T) {
	// Pinned plan: file staged remotely to node 1, then replicated
	// 1 → 0 where the task runs. The executor must realize the chain.
	b := batch.New()
	f := b.AddFile("f", 10*platform.MB, 0)
	task := b.AddTask("t", 0.1, []batch.FileID{f})
	p := twoNodeProblem(t, b)
	st, err := NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	plan := &SubPlan{
		Tasks:  []batch.TaskID{task},
		Node:   map[batch.TaskID]int{task: 0},
		Pinned: true,
		Staging: []Staging{
			{File: f, Dest: 1, Kind: Remote},
			{File: f, Dest: 0, Kind: Replica, Src: 1},
		},
	}
	stats, err := Execute(st, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteTransfers != 1 || stats.ReplicaTransfers != 1 {
		t.Fatalf("chain not realized: %d remote / %d replica", stats.RemoteTransfers, stats.ReplicaTransfers)
	}
	if !st.Holds(1, f) || !st.Holds(0, f) {
		t.Fatal("chain did not leave copies on both nodes")
	}
}

func TestExecutePinnedCycleFallsBack(t *testing.T) {
	// A (nonsensical) cyclic pinned plan: 0 sources from 1 and 1 from
	// 0. The executor must break the cycle with a remote transfer
	// instead of deadlocking.
	b := batch.New()
	f := b.AddFile("f", 10*platform.MB, 0)
	t0 := b.AddTask("t0", 0.1, []batch.FileID{f})
	t1 := b.AddTask("t1", 0.1, []batch.FileID{f})
	p := twoNodeProblem(t, b)
	st, err := NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	plan := &SubPlan{
		Tasks:  []batch.TaskID{t0, t1},
		Node:   map[batch.TaskID]int{t0: 0, t1: 1},
		Pinned: true,
		Staging: []Staging{
			{File: f, Dest: 0, Kind: Replica, Src: 1},
			{File: f, Dest: 1, Kind: Replica, Src: 0},
		},
	}
	stats, err := Execute(st, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteTransfers < 1 {
		t.Fatal("cycle not broken by a remote transfer")
	}
	if !st.Done[t0] || !st.Done[t1] {
		t.Fatal("tasks did not complete")
	}
}

func TestExecuteDiskCapacityViolationSurfaces(t *testing.T) {
	b := batch.New()
	f1 := b.AddFile("f1", 60*platform.MB, 0)
	f2 := b.AddFile("f2", 60*platform.MB, 0)
	t0 := b.AddTask("t0", 0.1, []batch.FileID{f1})
	t1 := b.AddTask("t1", 0.1, []batch.FileID{f2})
	p := &Problem{Batch: b, Platform: platform.Uniform(1, 1, 100*platform.MB, 10*platform.MB, 100*platform.MB)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	st, err := NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	// A buggy plan placing both tasks (120 MB) on the 100 MB node.
	plan := &SubPlan{Tasks: []batch.TaskID{t0, t1}, Node: map[batch.TaskID]int{t0: 0, t1: 0}}
	if _, err := Execute(st, plan); err == nil {
		t.Fatal("capacity violation not reported")
	}
}

func TestExecuteSharedFileTransferredOnce(t *testing.T) {
	// Ten tasks on one node sharing one file: exactly one transfer.
	b := batch.New()
	f := b.AddFile("f", 10*platform.MB, 0)
	var ts []batch.TaskID
	node := map[batch.TaskID]int{}
	for i := 0; i < 10; i++ {
		k := b.AddTask("t", 0.1, []batch.FileID{f})
		ts = append(ts, k)
		node[k] = 0
	}
	p := twoNodeProblem(t, b)
	st, err := NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Execute(st, &SubPlan{Tasks: ts, Node: node})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteTransfers != 1 {
		t.Fatalf("shared file transferred %d times", stats.RemoteTransfers)
	}
	// Tasks serialize on the node port: makespan ≥ 10 × exec.
	exec := 0.25 + 0.1
	if stats.Makespan < 1.0+10*exec-1e-9 {
		t.Fatalf("makespan %v too small for serialized execution", stats.Makespan)
	}
}

func TestExecuteNoStagingDuringExecutionOnNode(t *testing.T) {
	// With one compute node, its port serializes transfer+exec, so the
	// makespan is the exact sum for two tasks with distinct files.
	b := batch.New()
	f1 := b.AddFile("f1", 10*platform.MB, 0)
	f2 := b.AddFile("f2", 10*platform.MB, 0)
	t0 := b.AddTask("t0", 0.5, []batch.FileID{f1})
	t1 := b.AddTask("t1", 0.5, []batch.FileID{f2})
	p := &Problem{Batch: b, Platform: platform.Uniform(1, 1, 0, 10*platform.MB, 100*platform.MB)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	st, err := NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Execute(st, &SubPlan{Tasks: []batch.TaskID{t0, t1}, Node: map[batch.TaskID]int{t0: 0, t1: 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: both transfers (2×1s) + both execs (2×0.75s) all on
	// one port = 3.5 s. (The ECT order may interleave, but the port
	// serializes everything, so the sum is exact.)
	want := 2*1.0 + 2*(0.25+0.5)
	if diff := stats.Makespan - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("makespan = %v, want %v", stats.Makespan, want)
	}
}
