// Package eviction implements the paper's two disk-cache eviction
// mechanisms, invoked between sub-batch executions:
//
//   - Popularity (§4.3): file copies are deleted in increasing order
//     of Popularity_l = Access_Freq_l × fsize(f_l) / Numcopies_l,
//     where Access_Freq counts pending requests; used with the IP,
//     BiPartition and MinMin schedulers.
//   - LRU: least-recently-used copies are deleted first; used with the
//     JobDataPresent / DataLeastLoaded baseline, as in
//     Ranganathan-Foster.
//
// The paper "marks files for deletion" after each sub-batch and
// guarantees "each node has as much storage space as required to
// execute at least a single task". A literal minimal reclamation
// would shrink every subsequent sub-batch to a handful of tasks, so —
// consistent with the bulk marking the paper describes — both policies
// here reclaim down to a retention budget: each node keeps at most
// KeepFraction of its capacity occupied by its most valuable copies
// (most popular / most recently used), and always at least enough
// free space for the largest pending task.
package eviction

import (
	"sort"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/obs/journal"
)

// KeepFraction is the default retained share of each node's disk
// after an eviction round.
const KeepFraction = 0.25

// copyRef identifies one file copy on one compute node with its
// eviction priority (lower value = evicted earlier).
type copyRef struct {
	node  int
	file  batch.FileID
	value float64
}

// Popularity frees disk using the §4.3 policy with the default
// retention budget.
func Popularity(st *core.State, pending []batch.TaskID) {
	PopularityKeep(st, pending, KeepFraction)
}

// PopularityKeep frees disk using the §4.3 policy, keeping at most
// keep·capacity of the most popular copies per node.
func PopularityKeep(st *core.State, pending []batch.TaskID, keep float64) {
	evictTo(st, pending, keep, "popularity", func(n int, f batch.FileID) float64 {
		copies := st.NumCopies(f)
		if copies == 0 {
			return 0
		}
		return float64(st.AccessFreq(f)) * float64(st.P.Batch.FileSize(f)) / float64(copies)
	})
}

// LRU frees disk evicting least-recently-used copies first, with the
// default retention budget.
func LRU(st *core.State, pending []batch.TaskID) {
	LRUKeep(st, pending, KeepFraction)
}

// LRUKeep is LRU with an explicit retention budget.
func LRUKeep(st *core.State, pending []batch.TaskID, keep float64) {
	evictTo(st, pending, keep, "lru", func(n int, f batch.FileID) float64 {
		return st.LastUse(n, f)
	})
}

// evictTo deletes copies per node, lowest value first, until the node
// holds at most keep·capacity of cached bytes and has room for the
// largest pending task. Values are computed once per round (Numcopies
// drift within a round is second-order).
func evictTo(st *core.State, pending []batch.TaskID, keep float64, policy string, value func(int, batch.FileID) float64) {
	minFree := st.MaxPendingTaskBytes(pending)
	for n := 0; n < st.P.Platform.NumCompute(); n++ {
		cap := st.P.Platform.Compute[n].DiskSpace
		if cap <= 0 {
			continue // unlimited
		}
		budget := int64(float64(cap) * keep)
		if cap-budget < minFree {
			budget = cap - minFree
		}
		if budget < 0 {
			budget = 0
		}
		if st.Used(n) <= budget {
			continue
		}
		var copies []copyRef
		for f := 0; f < st.P.Batch.NumFiles(); f++ {
			fid := batch.FileID(f)
			if st.Holds(n, fid) {
				copies = append(copies, copyRef{node: n, file: fid, value: value(n, fid)})
			}
		}
		sort.Slice(copies, func(i, j int) bool {
			if copies[i].value != copies[j].value {
				return copies[i].value < copies[j].value
			}
			return copies[i].file < copies[j].file
		})
		for _, c := range copies {
			if st.Used(n) <= budget {
				break
			}
			if st.J.Enabled() {
				st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindEvict, Round: st.JRound,
					Evict: &journal.Evict{Node: c.node, File: int(c.file),
						Bytes: st.P.Batch.FileSize(c.file), Score: c.value, Policy: policy}})
			}
			st.Evict(c.node, c.file)
		}
	}
}

// EvictAll clears every compute-node cache (used by ablation benches).
func EvictAll(st *core.State) {
	for n := 0; n < st.P.Platform.NumCompute(); n++ {
		for f := 0; f < st.P.Batch.NumFiles(); f++ {
			st.Evict(n, batch.FileID(f))
		}
	}
}
