package mip

import (
	"math"
	"math/rand"
	"testing"
)

// randomKnapsack builds a 0-1 knapsack with values/weights drawn from
// the given seed. Random float coefficients make objective ties
// measure-zero, so the optimum vector is unique.
func randomKnapsack(seed int64, items int) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	m.SetMaximize()
	var terms []Term
	var total float64
	for j := 0; j < items; j++ {
		m.AddBinary("x", 1+rng.Float64()*9)
		w := 1 + rng.Float64()*5
		total += w
		terms = append(terms, Term{Var: j, Coef: w})
	}
	m.AddRow("cap", terms, LE, total*0.4)
	return m
}

// randomAssignment builds a makespan-minimization assignment model
// (tasks × nodes binaries plus a continuous makespan variable).
func randomAssignment(seed int64, tasks, nodes int) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	z := m.AddVar("z", 0, math.Inf(1), 1, false)
	x := make([][]int, tasks)
	loads := make([][]float64, tasks)
	for k := range x {
		x[k] = make([]int, nodes)
		loads[k] = make([]float64, nodes)
		var row []Term
		for i := range x[k] {
			x[k][i] = m.AddBinary("x", 0)
			loads[k][i] = 1 + rng.Float64()*4
			row = append(row, Term{Var: x[k][i], Coef: 1})
		}
		m.AddRow("assign", row, EQ, 1)
	}
	for i := 0; i < nodes; i++ {
		terms := []Term{{Var: z, Coef: -1}}
		for k := 0; k < tasks; k++ {
			terms = append(terms, Term{Var: x[k][i], Coef: loads[k][i]})
		}
		m.AddRow("load", terms, LE, 0)
	}
	return m
}

// TestPortfolioMatchesSequentialOptimum proves the portfolio reaches
// the same optimum as the sequential solver when both run to
// completion, on a fixed instance set.
func TestPortfolioMatchesSequentialOptimum(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		m := randomKnapsack(seed, 24)
		seq, err := m.Solve(Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := m.Solve(Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Status != Optimal || par.Status != Optimal {
			t.Fatalf("seed %d: status seq=%v par=%v", seed, seq.Status, par.Status)
		}
		if math.Abs(seq.Obj-par.Obj) > 1e-9 {
			t.Fatalf("seed %d: obj seq=%v par=%v", seed, seq.Obj, par.Obj)
		}
		for j := range seq.X {
			if math.Round(seq.X[j]) != math.Round(par.X[j]) {
				t.Fatalf("seed %d: solutions differ at var %d", seed, j)
			}
		}
	}
}

// TestPortfolioNeverWorseWithinBudget proves the parallel solve's
// incumbent is never worse than the sequential one under the same
// deterministic node budget: worker 0 runs the exact sequential dive,
// so the merged incumbent can only improve on it.
func TestPortfolioNeverWorseWithinBudget(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, build := range []func() *Model{
			func() *Model { return randomKnapsack(seed*11, 40) },
			func() *Model { return randomAssignment(seed*13, 12, 4) },
		} {
			m := build()
			budget := Options{NodeLimit: 400}
			seq, err := m.Solve(Options{NodeLimit: budget.NodeLimit, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := m.Solve(Options{NodeLimit: budget.NodeLimit, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Status == NoSolution {
				continue // nothing to compare against
			}
			if par.Status == NoSolution {
				t.Fatalf("seed %d: portfolio found nothing where sequential found %v", seed, seq.Obj)
			}
			// Internal direction is minimization for these models except
			// the maximize knapsack; compare in model direction.
			worse := par.Obj < seq.Obj-1e-9
			if !m.maximize {
				worse = par.Obj > seq.Obj+1e-9
			}
			if worse {
				t.Errorf("seed %d: portfolio incumbent %v worse than sequential %v", seed, par.Obj, seq.Obj)
			}
		}
	}
}

// TestPortfolioDeterministic runs the same parallel solve twice and
// demands identical results: the merge is by worker index, not by
// which goroutine finished first.
func TestPortfolioDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		m := randomAssignment(seed*7, 10, 3)
		a, err := m.Solve(Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Solve(Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status || math.Abs(a.Obj-b.Obj) > 1e-12 {
			t.Fatalf("seed %d: runs differ: (%v, %v) vs (%v, %v)", seed, a.Status, a.Obj, b.Status, b.Obj)
		}
		for j := range a.X {
			if math.Abs(a.X[j]-b.X[j]) > 1e-9 {
				t.Fatalf("seed %d: solution vectors differ at %d", seed, j)
			}
		}
	}
}

// TestPortfolioWarmStartRespected checks every worker is seeded with
// the warm incumbent (a budget of zero nodes must still return it).
func TestPortfolioWarmStartRespected(t *testing.T) {
	m := randomKnapsack(3, 20)
	warm := make([]float64, m.NumVars())
	sol, err := m.Solve(Options{Workers: 4, NodeLimit: 1, WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == NoSolution {
		t.Fatalf("warm start lost: %v", sol.Status)
	}
	if sol.Obj < -1e-9 {
		t.Fatalf("warm objective %v, want ≥ 0", sol.Obj)
	}
}
