// Command benchjson converts `go test -bench` output on stdin into a
// JSON document, so CI can archive benchmark trajectories (per-scheme
// ns/op, allocs/op, simulated makespan) as machine-readable artifacts.
//
// Usage:
//
//	go test -bench=BenchmarkSchedulers -benchmem -benchtime=1x | benchjson -o BENCH_schedulers.json
//
// Non-benchmark lines (goos/goarch headers, PASS, ok) pass through
// untouched to stdout so the human-readable output survives the pipe.
// Each benchmark line becomes one entry:
//
//	{"name": "BenchmarkSchedulers/IP-8", "iterations": 1,
//	 "metrics": {"ns/op": 1.2e8, "B/op": 3.4e6, "allocs/op": 5678, "makespan_s": 2.95}}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one parsed benchmark result line.
type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write the JSON document to this file (default stdout only)")
	flag.Parse()

	entries, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc, err := json.MarshalIndent(map[string]any{"benchmarks": entries}, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse reads benchmark output from r, echoing every line to echo and
// collecting the parsed results. A benchmark line has the shape
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   10 allocs/op   1.5 makespan_s
//
// i.e. a name starting with "Benchmark", an iteration count, then
// value-unit pairs. Lines that do not parse are passed through only.
func parse(r interface{ Read([]byte) (int, error) }, echo interface {
	Write([]byte) (int, error)
}) ([]entry, error) {
	entries := []entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if e, ok := parseLine(line); ok {
			entries = append(entries, e)
		}
	}
	return entries, sc.Err()
}

// parseLine parses one benchmark result line; ok=false for any other
// line.
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return entry{}, false
	}
	return e, true
}
