package hypergraph

import (
	"math/rand"
	"sort"
)

// coarsenOnce performs one level of heavy-connectivity matching: each
// unmatched vertex pairs with the unmatched neighbour it shares the
// largest total net weight with (net weight scaled by 1/(size−1), the
// usual heavy-connectivity strength), and matched pairs collapse into
// coarse vertices. Nets are re-pinned onto coarse vertices; nets that
// collapse to a single pin are removed from the net list with their
// weight absorbed into the coarse vertex's ExtraVWeight (the paper's
// PaToH modification for BINW accounting); identical nets merge,
// summing weights.
//
// It returns the coarse hypergraph and the fine→coarse vertex map.
func coarsenOnce(h *Hypergraph, rng *rand.Rand) (*Hypergraph, []int32) {
	match := make([]int32, h.NumV)
	for i := range match {
		match[i] = -1
	}
	strength := make(map[int32]float64)
	order := h.shuffledVertices(rng)
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		for k := range strength {
			delete(strength, k)
		}
		for _, n := range h.VertexNets(int(v)) {
			pins := h.NetPins(int(n))
			if len(pins) < 2 {
				continue
			}
			s := float64(h.NWeight[n]) / float64(len(pins)-1)
			for _, u := range pins {
				if u != v && match[u] < 0 {
					strength[u] += s
				}
			}
		}
		best := int32(-1)
		bestS := 0.0
		//schedlint:allow detrange argmax with total-order tie-break (u < best) is iteration-order independent
		for u, s := range strength {
			if s > bestS || (s == bestS && best >= 0 && u < best) {
				best, bestS = u, s
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v // singleton
		}
	}

	// Assign coarse ids.
	coarseOf := make([]int32, h.NumV)
	for i := range coarseOf {
		coarseOf[i] = -1
	}
	nc := 0
	for v := 0; v < h.NumV; v++ {
		if coarseOf[v] >= 0 {
			continue
		}
		coarseOf[v] = int32(nc)
		if m := match[v]; m != int32(v) && m >= 0 {
			coarseOf[m] = int32(nc)
		}
		nc++
	}

	cb := NewBuilder()
	for c := 0; c < nc; c++ {
		cb.AddVertex(0)
	}
	cw := make([]int64, nc)
	cextra := make([]int64, nc)
	for v := 0; v < h.NumV; v++ {
		cw[coarseOf[v]] += h.VWeight[v]
		cextra[coarseOf[v]] += h.ExtraVWeight[v]
	}

	// Re-pin nets, dropping size-1 nets into extra weight and merging
	// duplicates.
	type netKey string
	merged := make(map[netKey]int)
	var pinsBuf []int32
	for n := 0; n < h.NumN; n++ {
		pinsBuf = pinsBuf[:0]
		for _, v := range h.NetPins(n) {
			pinsBuf = append(pinsBuf, coarseOf[v])
		}
		sort.Slice(pinsBuf, func(i, j int) bool { return pinsBuf[i] < pinsBuf[j] })
		uniq := pinsBuf[:0]
		var last int32 = -1
		for _, c := range pinsBuf {
			if c != last {
				uniq = append(uniq, c)
				last = c
			}
		}
		if len(uniq) <= 1 {
			if len(uniq) == 1 {
				cextra[uniq[0]] += h.NWeight[n]
			}
			continue
		}
		key := make([]byte, 0, len(uniq)*4)
		for _, c := range uniq {
			key = append(key, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		if idx, ok := merged[netKey(key)]; ok {
			cb.nweights[idx] += h.NWeight[n]
			continue
		}
		ints := make([]int, len(uniq))
		for i, c := range uniq {
			ints[i] = int(c)
		}
		idx := cb.AddNet(h.NWeight[n], ints)
		merged[netKey(key)] = idx
	}
	copy(cb.vweights, cw)
	copy(cb.extra, cextra)
	ch, err := cb.Build()
	if err != nil {
		panic(err) // construction is internally consistent
	}
	return ch, coarseOf
}

// coarsenTo repeatedly coarsens until the vertex count drops to at
// most target or progress stalls. It returns the level stack (finest
// first) and the fine→coarse maps between consecutive levels.
func coarsenTo(h *Hypergraph, target int, rng *rand.Rand) (levels []*Hypergraph, maps [][]int32) {
	levels = []*Hypergraph{h}
	for levels[len(levels)-1].NumV > target {
		cur := levels[len(levels)-1]
		ch, m := coarsenOnce(cur, rng)
		if ch.NumV >= cur.NumV || float64(ch.NumV) > 0.95*float64(cur.NumV) {
			break
		}
		levels = append(levels, ch)
		maps = append(maps, m)
	}
	return levels, maps
}
