package mip

import (
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/simplex"
)

// search carries the branch-and-bound state. Bounds are mutated in
// place on the shared LP with undo on backtrack (depth-first), keeping
// memory flat.
type search struct {
	m   *Model
	lp  *simplex.LP
	opt Options

	start   time.Time
	nodes   int
	bestObj float64 // internal (minimization) direction; +Inf = none
	bestX   []float64

	// Portfolio diversification (nil/false on the sequential solver
	// and on worker 0, which keeps the canonical dive order).
	// jitter perturbs the most-fractional branching score per variable;
	// flipDive explores the away-from-LP rounding first.
	jitter   []float64
	flipDive bool
	// shared, when non-nil, is the portfolio-wide incumbent objective:
	// workers prune against it and publish improvements to it, while
	// bestObj/bestX stay private so the final merge is deterministic.
	shared *sharedBound
	// rootBound is the root LP relaxation value (internal direction);
	// -Inf until solved. With depth-first search this is the bound we
	// report (children only tighten it locally).
	rootBound  float64
	rootSolved bool
	hitLimit   bool

	// tr/widx: observability only (per-worker incumbent instants on
	// the worker's solver track); never consulted for search decisions.
	tr   obs.Tracer
	widx int

	// ws reuses the simplex solver's allocations across the thousands
	// of node relaxations this dive solves. Lazily created; each search
	// (one per portfolio worker) owns its own, so dives never share.
	ws *simplex.Workspace
}

func (s *search) timeUp() bool {
	//schedlint:allow nowallclock,tracepurity enforces Options.TimeLimit, the documented wall-clock budget (DESIGN §7)
	return s.opt.TimeLimit > 0 && time.Since(s.start) >= s.opt.TimeLimit
}

func (s *search) setIncumbent(x []float64, objInternal float64) {
	if objInternal < s.bestObj-1e-12 {
		s.bestObj = objInternal
		s.bestX = append(s.bestX[:0], x[:len(s.m.obj)]...)
		if s.shared != nil {
			s.shared.update(objInternal)
		}
		if s.tr != nil && s.tr.Enabled() {
			obj := objInternal
			if s.m.maximize {
				obj = -obj
			}
			s.tr.Instant(obs.SolverTrack(s.widx), "solver", "incumbent",
				obs.A("obj", obj), obs.A("nodes", s.nodes))
		}
	}
}

// pruned reports whether a node with LP relaxation value obj can be
// cut. Against the private incumbent the usual tie-inclusive margin
// applies. Against the portfolio-wide bound the margin is flipped to
// strictly-worse-only: a subtree whose best possible value exactly
// ties the global incumbent must still be explored, otherwise whether
// a worker keeps its canonical solution would depend on when another
// goroutine happened to publish the tie — and the merged result would
// no longer be deterministic. (Symmetric scheduling models tie
// exactly, so this is the common case, not a corner.)
func (s *search) pruned(obj float64) bool {
	if obj >= s.bestObj-1e-9 {
		return true
	}
	return s.shared != nil && obj >= s.shared.load()+1e-9
}

// run performs DFS branch and bound.
func (s *search) run() {
	s.rootBound = math.Inf(-1)
	if s.opt.TimeLimit > 0 && s.opt.LP.Deadline.IsZero() {
		// Individual LP solves must also respect the global deadline,
		// or a single long root relaxation blows through the budget.
		s.opt.LP.Deadline = s.start.Add(s.opt.TimeLimit)
	}
	s.dfs(0)
}

type fixing struct {
	v     int
	oldLo float64
	oldHi float64
}

// dfs explores the subtree under the current bound state.
func (s *search) dfs(depth int) {
	if s.timeUp() || s.nodes >= s.opt.NodeLimit {
		s.hitLimit = true
		return
	}
	s.nodes++
	if s.ws == nil {
		s.ws = new(simplex.Workspace)
	}
	// Workspace-backed solve: res.X aliases s.ws and is consumed fully
	// (branch value read, incumbent copied) before the next node's
	// solve or recursion below.
	res, err := simplex.SolveWS(s.ws, s.lp, s.opt.LP)
	if err != nil {
		// Structural model errors surface on the root solve via
		// Model.Solve; per-node errors cannot occur (bounds-only
		// changes). Treat defensively as a pruned node.
		s.hitLimit = true
		return
	}
	if depth == 0 {
		s.rootSolved = res.Status == simplex.Optimal
		if s.rootSolved {
			s.rootBound = res.Obj
		}
	}
	switch res.Status {
	case simplex.Infeasible:
		return
	case simplex.Optimal:
		// fall through
	case simplex.Unbounded:
		// A bounded-variable MIP relaxation can only be unbounded via
		// free continuous variables; give up on bounding this subtree.
		s.hitLimit = true
		return
	default: // IterLimit, Singular: no valid bound; keep diving blind
		// only if we have no incumbent yet, otherwise prune to stay
		// within budget.
		if !math.IsInf(s.bestObj, 1) {
			s.hitLimit = true
			return
		}
	}
	if res.Status == simplex.Optimal && s.pruned(res.Obj) {
		return // bound prune
	}
	// Find the most fractional integer variable (portfolio workers
	// perturb the score so their dives take different branch orders).
	branchVar := -1
	worst := 0.0
	for j := 0; j < len(s.m.obj); j++ {
		if !s.m.integer[j] {
			continue
		}
		f := res.X[j] - math.Floor(res.X[j])
		frac := math.Min(f, 1-f)
		if frac <= s.opt.IntTol {
			continue
		}
		score := frac
		if s.jitter != nil {
			score = frac * (0.5 + s.jitter[j])
		}
		if branchVar < 0 || score > worst {
			worst = score
			branchVar = j
		}
	}
	if branchVar < 0 {
		// Integral: candidate incumbent. Round integer vars exactly
		// and re-verify (guards against tolerance drift).
		x := append([]float64(nil), res.X...)
		for j := range x {
			if j < len(s.m.integer) && s.m.integer[j] {
				x[j] = math.Round(x[j])
			}
		}
		if obj, ok := s.m.CheckFeasible(x[:len(s.m.obj)], 1e-6); ok {
			s.setIncumbent(x, s.internalObj(obj))
		}
		return
	}
	// Dive toward the LP value first: explore the rounding of the
	// fractional value before its alternative.
	v := res.X[branchVar]
	first := math.Round(v)
	second := 1 - first
	if first < 0 || first > 1 {
		first, second = math.Floor(v), math.Ceil(v)
	}
	if s.flipDive {
		first, second = second, first
	}
	for _, val := range []float64{first, second} {
		if s.timeUp() || s.nodes >= s.opt.NodeLimit {
			s.hitLimit = true
			return
		}
		f := fixing{v: branchVar, oldLo: s.lp.Lower[branchVar], oldHi: s.lp.Upper[branchVar]}
		s.lp.Lower[branchVar] = val
		s.lp.Upper[branchVar] = val
		s.dfs(depth + 1)
		s.lp.Lower[branchVar] = f.oldLo
		s.lp.Upper[branchVar] = f.oldHi
	}
}

func (s *search) solution() *Solution {
	sol := &Solution{Nodes: s.nodes}
	toModel := func(v float64) float64 {
		if s.m.maximize {
			return -v
		}
		return v
	}
	haveIncumbent := !math.IsInf(s.bestObj, 1)
	if haveIncumbent {
		sol.Obj = toModel(s.bestObj)
		sol.X = s.bestX
	}
	bound := s.rootBound
	if !s.hitLimit {
		// Search exhausted: the incumbent is optimal (or the model is
		// infeasible).
		if haveIncumbent {
			sol.Status = Optimal
			sol.Bound = sol.Obj
			return sol
		}
		sol.Status = Infeasible
		return sol
	}
	if haveIncumbent {
		sol.Status = Feasible
		if s.rootSolved {
			sol.Bound = toModel(bound)
			sol.Gap = math.Abs(s.bestObj-bound) / math.Max(1, math.Abs(s.bestObj))
			if sol.Gap <= 1e-9 {
				sol.Status = Optimal
			}
		} else {
			sol.Bound = toModel(math.Inf(-1))
			sol.Gap = math.Inf(1)
		}
		return sol
	}
	sol.Status = NoSolution
	return sol
}
