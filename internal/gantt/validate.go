package gantt

import (
	"fmt"
	"strings"
)

// This file is the runtime half of the determinism/correctness
// contract: where cmd/schedlint proves properties of the code, the
// Schedule validator proves properties of an actual schedule the
// executor produced. The two layers cover each other — a solver bug
// the static checks cannot see (a capacity miscount, a task started
// before its inputs arrive) surfaces here, and vice versa.

// StageEvent records one file arrival on a compute node, in sub-batch
// relative time.
type StageEvent struct {
	File int
	Node int
	// Avail is when the file's transfer completes (the earliest time a
	// task may read it).
	Avail float64
	// Size in bytes, for disk accounting.
	Size int64
}

// TaskEvent records one task execution, in sub-batch relative time.
type TaskEvent struct {
	Task  int
	Node  int
	Start float64
	End   float64
	// Inputs are the file IDs the task reads.
	Inputs []int
}

// Schedule is a complete post-hoc record of one sub-batch: every port
// timeline plus the staging and execution events, with enough initial
// state to re-check the paper's standing invariants.
type Schedule struct {
	// Storage and Compute hold one single-port timeline per node; Link
	// is the optional shared inter-cluster link.
	Storage []*Timeline
	Compute []*Timeline
	Link    *Timeline

	Stages []StageEvent
	Tasks  []TaskEvent

	// DiskCap[n] is compute node n's disk capacity in bytes (<= 0
	// means unlimited).
	DiskCap []int64
	// InitUsed[n] is the bytes already resident on node n when the
	// sub-batch starts.
	InitUsed []int64
	// InitHeld[n] lists the files already resident on node n when the
	// sub-batch starts.
	InitHeld [][]int
}

// Validate checks the schedule's invariants and returns one message
// per violation (empty means the schedule is sound):
//
//  1. every port timeline is sorted and overlap-free with non-negative
//     durations (no port carries two reservations at once — the
//     paper's single-port model);
//  2. no compute node's disk ever holds more bytes than its capacity;
//  3. every input file of every task is resident — initially held or
//     staged with Avail ≤ task start — before the task begins.
func (s *Schedule) Validate() []string {
	var v []string
	for i, tl := range s.Storage {
		v = appendTimelineViolations(v, fmt.Sprintf("storage[%d]", i), tl)
	}
	for i, tl := range s.Compute {
		v = appendTimelineViolations(v, fmt.Sprintf("compute[%d]", i), tl)
	}
	if s.Link != nil {
		v = appendTimelineViolations(v, "link", s.Link)
	}

	// Disk capacity: within a sub-batch files are only added (eviction
	// runs between sub-batches), so the high-water mark per node is the
	// initial usage plus every distinct staged file.
	type nodeFile struct{ node, file int }
	staged := map[nodeFile]bool{}
	used := make([]int64, len(s.Compute))
	copy(used, s.InitUsed)
	for _, st := range s.Stages {
		if st.Node < 0 || st.Node >= len(s.Compute) {
			v = append(v, fmt.Sprintf("stage of file %d targets unknown node %d", st.File, st.Node))
			continue
		}
		if st.Avail < 0 {
			v = append(v, fmt.Sprintf("stage of file %d on node %d completes at negative time %g", st.File, st.Node, st.Avail))
		}
		key := nodeFile{st.Node, st.File}
		if staged[key] {
			v = append(v, fmt.Sprintf("file %d staged twice onto node %d", st.File, st.Node))
			continue
		}
		staged[key] = true
		used[st.Node] += st.Size
	}
	for n, cap := range s.DiskCap {
		if cap > 0 && used[n] > cap {
			v = append(v, fmt.Sprintf("compute[%d] disk over capacity: %d B used of %d B", n, used[n], cap))
		}
	}

	// Input availability: build the per-(node, file) availability time
	// from initial holdings and stagings, then check every task.
	avail := map[nodeFile]float64{}
	for n, files := range s.InitHeld {
		for _, f := range files {
			avail[nodeFile{n, f}] = 0
		}
	}
	for _, st := range s.Stages {
		avail[nodeFile{st.Node, st.File}] = st.Avail
	}
	for _, t := range s.Tasks {
		if t.End < t.Start {
			v = append(v, fmt.Sprintf("task %d on compute[%d] ends (%g) before it starts (%g)", t.Task, t.Node, t.End, t.Start))
		}
		for _, f := range t.Inputs {
			at, ok := avail[nodeFile{t.Node, f}]
			if !ok {
				v = append(v, fmt.Sprintf("task %d starts on compute[%d] without input file %d ever staged there", t.Task, t.Node, f))
			} else if at > t.Start+overlapEps {
				v = append(v, fmt.Sprintf("task %d starts at %g on compute[%d] but input file %d only arrives at %g", t.Task, t.Start, t.Node, f, at))
			}
		}
	}
	return v
}

// Err wraps Validate into a single error (nil when sound).
func (s *Schedule) Err() error {
	if v := s.Validate(); len(v) > 0 {
		return fmt.Errorf("gantt: invalid schedule:\n  %s", strings.Join(v, "\n  "))
	}
	return nil
}

// appendTimelineViolations checks one timeline's ordering and overlap
// invariants, independently of the Reserve-time panics (so a corrupted
// or hand-built timeline is still diagnosed rather than trusted).
func appendTimelineViolations(v []string, name string, t *Timeline) []string {
	ivs := t.Intervals()
	for i, iv := range ivs {
		if iv.End < iv.Start {
			v = append(v, fmt.Sprintf("%s interval %d has negative duration [%g,%g)", name, i, iv.Start, iv.End))
		}
		if iv.Start < 0 {
			v = append(v, fmt.Sprintf("%s interval %d starts at negative time %g", name, i, iv.Start))
		}
		if i > 0 {
			prev := ivs[i-1]
			if iv.Start < prev.Start {
				v = append(v, fmt.Sprintf("%s intervals out of order: [%g,%g) after [%g,%g)", name, iv.Start, iv.End, prev.Start, prev.End))
			}
			if prev.End > iv.Start+overlapEps {
				v = append(v, fmt.Sprintf("%s reservations overlap: [%g,%g) and [%g,%g)", name, prev.Start, prev.End, iv.Start, iv.End))
			}
		}
	}
	return v
}

// NewTimelineFromIntervals builds a timeline directly from a list of
// intervals with no checking or normalization whatsoever — for
// reconstructing recorded schedules and for exercising Validate on
// deliberately broken input. Slot queries on an unsorted or
// overlapping timeline are meaningless; run Validate first.
func NewTimelineFromIntervals(ivs []Interval) *Timeline {
	t := &Timeline{}
	for len(ivs) > 0 {
		n := len(ivs)
		if n > chunkTarget {
			n = chunkTarget
		}
		c := chunk{ivs: append([]Interval(nil), ivs[:n]...)}
		c.recalcGap()
		t.chunks = append(t.chunks, c)
		t.n += n
		ivs = ivs[n:]
	}
	t.recalcMetasFrom(0)
	return t
}
