package introspect

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
)

var (
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]+)"\})? (\S+)$`)
)

// TestMetricsEndpointParsesAsPrometheus is the acceptance criterion:
// every /metrics line must be a valid Prometheus text-format TYPE
// declaration or sample, histograms cumulative.
func TestMetricsEndpointParsesAsPrometheus(t *testing.T) {
	m := obs.NewMetrics()
	m.Count("remote_transfers", 7)
	m.SetGauge("makespan_s", 12.5)
	for i := 1; i <= 16; i++ {
		m.Observe("plan_ms", float64(i))
	}
	srv := httptest.NewServer(New(Options{Metrics: m}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	declared := map[string]string{}
	lastBucket := map[string]float64{}
	samples := map[string]float64{}
	for ln, line := range strings.Split(strings.TrimRight(body.String(), "\n"), "\n") {
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			declared[m[1]] = m[2]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d not valid prometheus text: %q", ln+1, line)
		}
		name, le, raw := m[1], m[3], m[4]
		v := 0.0
		if raw != "+Inf" {
			var err error
			if v, err = strconv.ParseFloat(raw, 64); err != nil {
				t.Fatalf("line %d: bad value %q", ln+1, raw)
			}
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && declared[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := declared[base]; !ok {
			t.Fatalf("line %d: sample %q has no # TYPE", ln+1, name)
		}
		if le != "" {
			if v < lastBucket[base] {
				t.Fatalf("histogram %s buckets not cumulative", base)
			}
			lastBucket[base] = v
		}
		samples[name] = v
	}
	if samples["remote_transfers"] != 7 || samples["makespan_s"] != 12.5 || samples["plan_ms_count"] != 16 {
		t.Fatalf("samples wrong: %v", samples)
	}
}

func TestEndpointsWithoutSinks404(t *testing.T) {
	srv := httptest.NewServer(New(Options{}).Handler())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/events", "/journal", "/gantt"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without sink: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestJournalEndpointRoundTrips(t *testing.T) {
	rec := journal.New()
	rec.Emit(journal.Event{Kind: journal.KindRunStart, Run: &journal.Run{Sched: "MinMin", Tasks: 3}})
	rec.Emit(journal.Event{T: 1.5, Kind: journal.KindExec, Exec: &journal.Exec{Task: 0, Node: 1, Start: 0, End: 1.5}})
	srv := httptest.NewServer(New(Options{Journal: rec}).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs, err := journal.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Run.Sched != "MinMin" || evs[1].Exec.Node != 1 {
		t.Fatalf("journal round-trip: %+v", evs)
	}
}

// TestEventsStreamReplaysAndFollows: an SSE client must receive the
// already-recorded events, then live ones, each exactly once.
func TestEventsStreamReplaysAndFollows(t *testing.T) {
	rec := journal.New()
	rec.Emit(journal.Event{Kind: journal.KindRunStart, Run: &journal.Run{Sched: "x"}})
	s := New(Options{Journal: rec})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}

	events := make(chan journal.Event, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var ev journal.Event
				if json.Unmarshal([]byte(data), &ev) == nil {
					//schedlint:allow mergeorder single reader goroutine relaying a stream in arrival order
					events <- ev
				}
			}
		}
		close(events)
	}()

	read := func(wantKind string) journal.Event {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream closed early")
			}
			if ev.Kind != wantKind {
				t.Fatalf("got %q event, want %q", ev.Kind, wantKind)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %q event", wantKind)
			panic("unreachable")
		}
	}
	read(journal.KindRunStart) // replay
	rec.Emit(journal.Event{T: 2, Kind: journal.KindExec, Exec: &journal.Exec{Task: 4, Node: 0, Start: 1, End: 2}})
	live := read(journal.KindExec) // live via the tap/bus
	if live.Exec.Task != 4 {
		t.Fatalf("live event payload: %+v", live.Exec)
	}
	// No duplicates: nothing further is pending.
	select {
	case ev := <-events:
		t.Fatalf("unexpected extra event: %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestBusDropsWhenSlow: a full subscriber buffer must drop events and
// count them rather than block the publisher (the Recorder tap runs
// under the Recorder's lock).
func TestBusDropsWhenSlow(t *testing.T) {
	b := newBus()
	sub, cancel := b.subscribe()
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < subBuffer+50; i++ {
			b.publish(journal.Event{Seq: i, Kind: journal.KindExec})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}
	if got := sub.takeDropped(); got != 50 {
		t.Fatalf("dropped = %d, want 50", got)
	}
	if len(sub.ch) != subBuffer {
		t.Fatalf("buffered = %d, want %d", len(sub.ch), subBuffer)
	}
}

func TestGanttEndpointServesASCII(t *testing.T) {
	tr := obs.New()
	tid := tr.AllocTrack(obs.DomainSim, "compute 0")
	tr.SimSpan(tid, "exec", "task 0", 0, 2)
	srv := httptest.NewServer(New(Options{Trace: tr}).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/gantt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
