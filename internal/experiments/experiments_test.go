package experiments

import (
	"reflect"
	"testing"
	"time"
)

// quick returns the smallest-possible options for smoke tests.
func quick() Options {
	return Options{Quick: true, Seed: 3, IPBudget: time.Second, SkipIP: true}
}

func TestFig5aQuick(t *testing.T) {
	tables, err := Fig5a(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("unexpected table shape: %+v", tables)
	}
	// Replication must not be slower than no-replication on the
	// shared-link platform.
	for _, row := range tables[0].Rows {
		with, without := row.Values[0], row.Values[1]
		if with > without*1.02 {
			t.Errorf("%s: replication (%v) slower than none (%v)", row.Label, with, without)
		}
	}
}

func TestFig5bQuick(t *testing.T) {
	tables, err := Fig5b(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Batch time must grow with batch size for every scheduler.
	for c := range tables[0].Columns {
		for i := 1; i < len(rows); i++ {
			if rows[i].Values[c] <= rows[i-1].Values[c] {
				t.Errorf("column %s not increasing at row %s", tables[0].Columns[c], rows[i].Label)
			}
		}
	}
}

func TestFig3QuickShape(t *testing.T) {
	tables, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("panels = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 3 {
			t.Fatalf("%s rows = %d", tb.Title, len(tb.Rows))
		}
		// Low overlap must not be cheaper than high overlap (more data
		// to move) for the BiPartition column.
		if tb.Rows[2].Values[0] < tb.Rows[0].Values[0] {
			t.Errorf("%s: low overlap cheaper than high", tb.Title)
		}
	}
}

func TestChaosQuick(t *testing.T) {
	tables, err := Chaos(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("panels = %d, want 3 (makespan, degradation, recovery)", len(tables))
	}
	mk, deg, rec := tables[0], tables[1], tables[2]
	// 6 scenario×spec rows; degradation carries a wasted-compute row
	// per faulty scenario; recovery covers harsh and harsh+spec.
	if len(mk.Rows) != 6 || len(deg.Rows) != 8 || len(rec.Rows) != 2*len(mk.Columns) {
		t.Fatalf("table shapes: mk=%d deg=%d rec=%d", len(mk.Rows), len(deg.Rows), len(rec.Rows))
	}
	// Faults cost time: each scheduler's harsh makespan must exceed its
	// fault-free control, and some recovery activity must be recorded.
	// The none+spec control must reproduce the fault-free row exactly —
	// without an injector the speculation policy is inert.
	for c := range mk.Columns {
		if mk.Rows[4].Values[c] <= mk.Rows[0].Values[c] {
			t.Errorf("%s: harsh makespan %g not above fault-free %g",
				mk.Columns[c], mk.Rows[4].Values[c], mk.Rows[0].Values[c])
		}
		if mk.Rows[1].Values[c] != mk.Rows[0].Values[c] {
			t.Errorf("%s: none+spec makespan %g differs from fault-free %g",
				mk.Columns[c], mk.Rows[1].Values[c], mk.Rows[0].Values[c])
		}
	}
	var activity float64
	for _, v := range rec.Rows[0].Values {
		activity += v
	}
	if activity == 0 {
		t.Error("harsh scenario recorded no recovery activity at all")
	}
}

// TestChaosWorkerInvariance is the acceptance property at the matrix
// level: identical fault seeds must yield byte-identical tables at any
// worker count.
func TestChaosWorkerInvariance(t *testing.T) {
	o1 := quick()
	o1.Workers = 1
	seq, err := Chaos(o1)
	if err != nil {
		t.Fatal(err)
	}
	o4 := quick()
	o4.Workers = 4
	par, err := Chaos(o4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("chaos matrix differs across worker counts:\n  1: %+v\n  4: %+v", seq, par)
	}
}

func TestFig6QuickIncludesOverheadPanel(t *testing.T) {
	tables, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("panels = %d", len(tables))
	}
	if len(tables[1].Rows) != 5 {
		t.Fatalf("node sweep rows = %d", len(tables[1].Rows))
	}
}
