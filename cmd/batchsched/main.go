// Command batchsched runs one scheduling experiment: it generates a
// workload, builds a platform, runs the chosen scheduler through the
// full three-stage pipeline on the simulator, and reports the result.
//
// Usage:
//
//	batchsched -app sat|image -tasks 100 -overlap high|medium|low
//	           -platform xio|osumed -compute 4 -storage 4
//	           -sched ip|bipartition|minmin|jdp [-disk-gb 40]
//	           [-no-replication] [-ip-budget 20s] [-seed 1] [-v]
//	           [-workers N] [-faults SCENARIO] [-speculate POLICY]
//	           [-obs-trace out.json] [-obs-metrics out.json] [-obs-gantt]
//	           [-journal out.jsonl] [-listen :8080 [-serve-for 10m]]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// -faults injects a deterministic failure scenario into the simulated
// run ("chaos mode"): a preset (mild, harsh), key=value pairs
// (seed, mttf, linkp, stragp, stragf, retries, budget, backoff, cap),
// or a preset with overrides, e.g. -faults harsh,seed=7. Failed
// transfers retry with capped exponential backoff (preferring a
// surviving replica), crashed nodes lose their disk cache and their
// unfinished tasks are re-queued; a run whose retry budgets are
// exhausted ends with status Degraded. The same scenario spec always
// reproduces the identical schedule.
//
// -speculate arms the straggler watchdog (internal/spec): never (the
// default), fixed-factor[:F] (fork a duplicate once a task has run F×
// its fault-free duration, default 2), or single-fork[:Q] (fork at
// the Q-quantile of the scenario's straggler slowdown distribution,
// default 0.9; alias single-fork-at-t*). The first finisher wins, the
// loser is cancelled deterministically and its started port time is
// burnt as wasted compute. Only meaningful together with -faults —
// without an injector the threshold is never exceeded.
//
// -workers sets the parallelism of the scheduler's solver (the IP
// branch-and-bound portfolio, the hypergraph partitioner); 0 uses
// every CPU, 1 forces the sequential solver. The schedule for a fixed
// seed does not depend on the worker count (for the IP scheduler,
// whenever its solves finish within budget).
//
// -obs-trace records every pipeline phase and simulated reservation
// as Chrome trace-event JSON (open in Perfetto: ui.perfetto.dev);
// -obs-metrics snapshots the run's counters/histograms as JSON;
// -obs-gantt prints an ASCII Gantt of the simulated schedule.
// -journal records every pipeline decision (placement rationale,
// staging source choices, evictions, faults) as a JSONL provenance
// journal for schedexplain; for a fixed seed its bytes are identical
// at any -workers count.
// -listen starts the live introspection server (internal/obs/
// introspect): /metrics in Prometheus text format, /events streaming
// the journal as server-sent events, /journal, /gantt, and the pprof
// mux. After the run the process keeps serving until interrupted, or
// for -serve-for if set.
// -cpuprofile/-memprofile/-trace write the standard Go profiles.
// Observation is write-only: the schedule is identical with or
// without these flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/introspect"
	"repro/internal/obs/journal"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
	"repro/internal/sched/ipsched"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/sched/shard"
	"repro/internal/spec"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "image", "workload: sat or image")
	tasks := flag.Int("tasks", 100, "batch size")
	overlapName := flag.String("overlap", "high", "file sharing: high, medium, low")
	platName := flag.String("platform", "xio", "storage system: xio or osumed")
	computeN := flag.Int("compute", 4, "compute nodes")
	storageN := flag.Int("storage", 4, "storage nodes")
	schedName := flag.String("sched", "bipartition", "scheduler: ip, bipartition, minmin, jdp")
	diskGB := flag.Float64("disk-gb", 0, "per-node compute disk in GB (0 = unlimited)")
	noRep := flag.Bool("no-replication", false, "forbid compute-to-compute replication")
	ipBudget := flag.Duration("ip-budget", 20*time.Second, "time budget per IP solve")
	seed := flag.Int64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "print workload statistics")
	workers := flag.Int("workers", 0, "solver parallelism (0 = all CPUs, 1 = sequential)")
	useShard := flag.Bool("shard", false, "plan file-sharing components concurrently (-workers deep; unlimited disk only, falls back otherwise)")
	faultSpec := flag.String("faults", "", "failure scenario: none, mild, harsh, or key=value pairs (e.g. harsh,seed=7)")
	specSpec := flag.String("speculate", "", "speculation policy: never, fixed-factor[:F], or single-fork[:Q] (needs -faults)")
	obsTrace := flag.String("obs-trace", "", "write a Chrome trace-event JSON of the run (view in Perfetto)")
	obsMetrics := flag.String("obs-metrics", "", "write a JSON snapshot of the run's metrics")
	obsGantt := flag.Bool("obs-gantt", false, "print an ASCII Gantt of the simulated schedule")
	journalPath := flag.String("journal", "", "write a decision-provenance journal (JSONL) for schedexplain")
	listen := flag.String("listen", "", "serve live introspection (/metrics, /events, /gantt, pprof) on this address, e.g. :8080")
	serveFor := flag.Duration("serve-for", 0, "with -listen: keep serving this long after the run finishes (0 = until interrupted)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	runtimeTrace := flag.String("trace", "", "write a Go runtime trace to this file")
	flag.Parse()

	stopProf, err := obs.Profiles{CPU: *cpuProfile, Mem: *memProfile, Runtime: *runtimeTrace}.Start()
	if err != nil {
		fatal("%v", err)
	}

	var tracer *obs.Trace
	ob := core.Observer{}
	if *obsTrace != "" || *obsGantt {
		tracer = obs.New()
		ob.Trace = tracer
	}
	if *obsMetrics != "" {
		ob.Metrics = obs.NewMetrics()
	}
	if *journalPath != "" || *listen != "" {
		ob.Journal = journal.New()
	}
	if *listen != "" {
		// The live plane wants every sink populated, flags or not.
		if tracer == nil {
			tracer = obs.New()
			ob.Trace = tracer
		}
		if ob.Metrics == nil {
			ob.Metrics = obs.NewMetrics()
		}
		srv := introspect.New(introspect.Options{Metrics: ob.Metrics, Journal: ob.Journal, Trace: tracer})
		go func() {
			err := srv.ListenAndServe(*listen, func(addr net.Addr) {
				fmt.Fprintf(os.Stderr, "introspection: serving http://%s/ (/metrics, /events, /journal, /gantt, /debug/pprof/)\n", addr)
			})
			fatal("introspect: %v", err)
		}()
	}

	var overlap workload.Overlap
	switch strings.ToLower(*overlapName) {
	case "high":
		overlap = workload.HighOverlap
	case "medium", "med":
		overlap = workload.MediumOverlap
	case "low":
		overlap = workload.LowOverlap
	default:
		fatal("unknown overlap %q", *overlapName)
	}

	var b *batch.Batch
	switch strings.ToLower(*app) {
	case "sat":
		b, err = workload.Sat(workload.SatConfig{NumTasks: *tasks, Overlap: overlap, NumStorage: *storageN, Seed: *seed})
	case "image":
		b, err = workload.Image(workload.ImageConfig{NumTasks: *tasks, Overlap: overlap, NumStorage: *storageN, Seed: *seed})
	default:
		fatal("unknown app %q", *app)
	}
	if err != nil {
		fatal("workload: %v", err)
	}

	disk := int64(*diskGB * float64(platform.GB))
	var pf *platform.Platform
	switch strings.ToLower(*platName) {
	case "xio":
		pf = platform.XIO(*computeN, *storageN, disk)
	case "osumed":
		pf = platform.OSUMED(*computeN, *storageN, disk)
	default:
		fatal("unknown platform %q", *platName)
	}

	var sched core.Scheduler
	switch strings.ToLower(*schedName) {
	case "ip":
		ip := ipsched.New(*seed)
		ip.AllocBudget = *ipBudget
		ip.SelectBudget = *ipBudget / 2
		ip.Workers = *workers
		ip.Trace = ob.Trace
		sched = ip
	case "bipartition", "bipart":
		bp := bipart.New(*seed)
		bp.Workers = *workers
		bp.Trace = ob.Trace
		sched = bp
	case "minmin":
		sched = minmin.New()
	case "jdp", "jobdatapresent":
		sched = jdp.New()
	default:
		fatal("unknown scheduler %q", *schedName)
	}
	if *useShard {
		sched = shard.New(sched, *workers)
	}

	p := &core.Problem{Batch: b, Platform: pf, DisableReplication: *noRep}
	if err := p.Validate(); err != nil {
		fatal("problem: %v", err)
	}
	if *verbose {
		st := b.ComputeStats()
		fmt.Printf("workload: %d tasks, %d files, %.2f GB unique, %.1f files/task, %.0f%% overlap\n",
			st.NumTasks, st.NumFiles, float64(st.TotalBytes)/float64(platform.GB), st.MeanFilesPerTask, st.Overlap*100)
	}

	fp, err := faults.Parse(*faultSpec)
	if err != nil {
		fatal("faults: %v", err)
	}
	sp, err := spec.Parse(*specSpec)
	if err != nil {
		fatal("speculate: %v", err)
	}
	if sp.Active() && fp == nil {
		fmt.Fprintln(os.Stderr, "speculate: no fault scenario (-faults); the watchdog threshold is never exceeded and the policy is inert")
	}

	res, err := core.RunWith(p, sched, core.RunOptions{Obs: ob, Faults: fp, Spec: sp})
	if err != nil {
		fatal("run: %v", err)
	}
	fmt.Printf("scheduler:            %s\n", res.Scheduler)
	fmt.Printf("batch execution time: %.2f s (simulated)\n", res.Makespan)
	fmt.Printf("scheduling overhead:  %v (%.3f ms/task)\n", res.SchedulingTime.Round(time.Millisecond), res.SchedulingMSPerTask())
	fmt.Printf("sub-batches:          %d\n", res.SubBatches)
	fmt.Printf("remote transfers:     %d (%.2f GB)\n", res.RemoteTransfers, float64(res.RemoteBytes)/float64(platform.GB))
	fmt.Printf("replications:         %d (%.2f GB)\n", res.ReplicaTransfers, float64(res.ReplicaBytes)/float64(platform.GB))
	fmt.Printf("evictions:            %d\n", res.Evictions)
	if fp != nil {
		fmt.Printf("status:               %s", res.Status)
		if res.DegradedTasks > 0 {
			fmt.Printf(" (%d task(s) abandoned)", res.DegradedTasks)
		}
		fmt.Println()
		fmt.Printf("fault scenario:       %s\n", fp.String())
		fmt.Printf("transfer failures:    %d (%d retries, %d recovered via replicas)\n",
			res.TransferFailures, res.TransferRetries, res.ReplicaRecoveries)
		fmt.Printf("node crashes:         %d (%d tasks re-queued)\n", res.Crashes, res.RequeuedTasks)
		fmt.Printf("stragglers:           %d\n", res.Stragglers)
		fmt.Printf("wasted port time:     %.2f s\n", res.WastedSeconds)
	}
	if sp.Active() {
		fmt.Printf("speculation:          %s\n", sp)
		fmt.Printf("twins launched:       %d (%d twin wins, %d crash rescues)\n",
			res.SpecLaunches, res.SpecWins, res.SpecSaved)
		fmt.Printf("cancelled attempts:   %d (%.2f s of port time burnt)\n",
			res.SpecCancels, res.SpecWastedSeconds)
	}

	if *obsGantt {
		fmt.Println()
		if err := tracer.WriteASCIIGantt(os.Stdout, 100); err != nil {
			fatal("gantt: %v", err)
		}
	}
	if *obsTrace != "" {
		if err := writeFile(*obsTrace, tracer.WriteChrome); err != nil {
			fatal("obs-trace: %v", err)
		}
	}
	if *obsMetrics != "" {
		if err := writeFile(*obsMetrics, ob.Metrics.Snapshot().WriteJSON); err != nil {
			fatal("obs-metrics: %v", err)
		}
	}
	if *journalPath != "" {
		if err := writeFile(*journalPath, ob.Journal.WriteJSONL); err != nil {
			fatal("journal: %v", err)
		}
	}
	if err := stopProf(); err != nil {
		fatal("profile: %v", err)
	}
	if *listen != "" {
		if *serveFor > 0 {
			fmt.Fprintf(os.Stderr, "introspection: serving for another %v\n", *serveFor)
			time.Sleep(*serveFor)
		} else {
			fmt.Fprintln(os.Stderr, "introspection: run finished; serving until interrupted (Ctrl-C)")
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt)
			<-sig
		}
	}
}

// writeFile creates path and streams write into it, reporting the
// first error from either.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
