// Package spec holds the speculative-execution policies of the §6
// runtime: when a running task's elapsed simulated time exceeds a
// policy threshold, the runtime launches a duplicate attempt (a twin)
// on another compute node, the first finisher wins, and the loser is
// cancelled. The policy only answers "at what elapsed time should the
// watchdog fork a twin?" — candidate choice, cancellation and
// accounting live in internal/core.
//
// The three policies follow Wang–Joshi–Wornell ("Efficient Task
// Replication for Fast Response Times in Parallel Computation"):
// never (the control), fixed-factor (fork when the task has run F×
// its fault-free duration), and single-fork-at-t* (fork at the
// quantile of the injector's straggler distribution where waiting
// longer stops paying — a single well-timed fork rather than blind
// replication).
//
// Determinism: a Policy is pure configuration. Thresholds are
// arithmetic over the task's fault-free duration and the fault plan's
// straggler distribution; no clock, no RNG, no state. The package is
// part of schedlint's deterministic path set.
package spec

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/faults"
)

// Kind enumerates the speculation policies.
type Kind int

const (
	// Never disables speculation; the runtime takes the exact
	// pre-speculation code paths.
	Never Kind = iota
	// FixedFactor forks a twin once a task has been running Factor
	// times its fault-free duration.
	FixedFactor
	// SingleFork forks a twin at t* = base duration × the Quantile
	// point of the straggler slowdown distribution: the single
	// fork time that separates "probably about to finish" from
	// "probably stuck in the tail" (Wang–Joshi–Wornell).
	SingleFork
)

// Policy is one speculation configuration. The zero value (and nil)
// never speculates.
type Policy struct {
	Kind Kind
	// Factor is the FixedFactor threshold multiple (> 1; default 2).
	Factor float64
	// Quantile is the SingleFork fork point in the straggler slowdown
	// CDF (in (0, 1); default 0.9).
	Quantile float64
}

// Active reports whether this policy can ever fork a twin. Nil and
// Never policies are inactive: the runtime must take its pre-existing
// code paths unchanged.
func (p *Policy) Active() bool { return p != nil && p.Kind != Never }

// Threshold returns the watchdog's elapsed-time threshold t* for a
// task whose fault-free execution would take baseDur seconds: a twin
// is forked if the task is still running t* seconds after it started.
// Inactive policies return +Inf (the watchdog never fires). The
// threshold is never below baseDur — a task on schedule is not
// speculated.
func (p *Policy) Threshold(baseDur float64, d faults.StragglerDist) float64 {
	if !p.Active() || baseDur <= 0 {
		return math.Inf(1)
	}
	switch p.Kind {
	case FixedFactor:
		f := p.Factor
		if f <= 1 {
			f = 2
		}
		return f * baseDur
	case SingleFork:
		q := p.Quantile
		if q <= 0 || q >= 1 {
			q = 0.9
		}
		m := d.Quantile(q)
		if m <= 1 {
			// Degenerate distribution (no stragglers configured): a twin
			// could never beat the primary, so never fork.
			return math.Inf(1)
		}
		return m * baseDur
	}
	return math.Inf(1)
}

// String renders the policy as a spec Parse accepts.
func (p *Policy) String() string {
	if p == nil || p.Kind == Never {
		return "never"
	}
	switch p.Kind {
	case FixedFactor:
		f := p.Factor
		if f <= 1 {
			f = 2
		}
		return fmt.Sprintf("fixed-factor:%g", f)
	case SingleFork:
		q := p.Quantile
		if q <= 0 || q >= 1 {
			q = 0.9
		}
		return fmt.Sprintf("single-fork:%g", q)
	}
	return "never"
}

// Parse builds a Policy from a CLI spec: "never" (or ""), which
// parses to a nil (inactive) policy; "fixed-factor[:F]" with F > 1
// (default 2); or "single-fork[:Q]" (alias "single-fork-at-t*") with
// quantile Q in (0, 1) (default 0.9).
func Parse(s string) (*Policy, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "never" || s == "none" {
		return nil, nil
	}
	name, arg, hasArg := strings.Cut(s, ":")
	switch name {
	case "fixed-factor", "fixedfactor":
		p := &Policy{Kind: FixedFactor, Factor: 2}
		if hasArg {
			f, err := strconv.ParseFloat(arg, 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f <= 1 {
				return nil, fmt.Errorf("spec: fixed-factor wants a finite factor > 1, got %q", arg)
			}
			p.Factor = f
		}
		return p, nil
	case "single-fork", "singlefork", "single-fork-at-t*":
		p := &Policy{Kind: SingleFork, Quantile: 0.9}
		if hasArg {
			q, err := strconv.ParseFloat(arg, 64)
			if err != nil || math.IsNaN(q) || q <= 0 || q >= 1 {
				return nil, fmt.Errorf("spec: single-fork wants a quantile in (0,1), got %q", arg)
			}
			p.Quantile = q
		}
		return p, nil
	}
	return nil, fmt.Errorf("spec: unknown policy %q (want never, fixed-factor[:F], or single-fork[:Q])", s)
}
