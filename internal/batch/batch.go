// Package batch defines the task/file model used throughout the
// reproduction: a batch of independent sequential tasks, each of which
// reads a set of input files, where files may be shared by many tasks
// (the paper's "batch-shared I/O" behaviour).
//
// The package also provides the derived indexes the schedulers need
// (file → requiring tasks, sharing statistics) and the file
// equivalence-class reduction used to shrink the 0-1 IP formulations.
package batch

import (
	"fmt"
	"sort"
)

// FileID identifies a file within a Batch. IDs are dense: 0..NumFiles-1.
type FileID int32

// TaskID identifies a task within a Batch. IDs are dense: 0..NumTasks-1.
type TaskID int32

// File is a unit of I/O transfer between the storage cluster and the
// compute cluster. Tasks read whole files.
type File struct {
	ID   FileID
	Name string
	// Size is the file size in bytes.
	Size int64
	// Home is the index of the storage node that initially holds the
	// file. The paper assumes every file starts resident on exactly one
	// storage node (declustered across the storage cluster).
	Home int
}

// Task is an independent sequential program. It must run on exactly one
// compute node, and every file in Files must be staged to that node's
// local disk before it starts.
type Task struct {
	ID   TaskID
	Name string
	// Compute is the pure computation time of the task in seconds
	// (the paper's Comp_k).
	Compute float64
	// Files lists the input files the task reads (the paper's Access_k).
	// No duplicates; order is not significant.
	Files []FileID
}

// Batch is a set of tasks plus the universe of files they access.
type Batch struct {
	Tasks []Task
	Files []File

	// require[f] lists the tasks that access file f (the paper's
	// Require_l). Built lazily by Finalize.
	require [][]TaskID
}

// New creates an empty batch.
func New() *Batch { return &Batch{} }

// AddFile appends a file and returns its ID. Home is assigned later by
// the platform declustering step if left at zero.
func (b *Batch) AddFile(name string, size int64, home int) FileID {
	id := FileID(len(b.Files))
	b.Files = append(b.Files, File{ID: id, Name: name, Size: size, Home: home})
	return id
}

// AddTask appends a task and returns its ID. files must contain no
// duplicates and refer to already-added files.
func (b *Batch) AddTask(name string, compute float64, files []FileID) TaskID {
	id := TaskID(len(b.Tasks))
	fs := make([]FileID, len(files))
	copy(fs, files)
	b.Tasks = append(b.Tasks, Task{ID: id, Name: name, Compute: compute, Files: fs})
	b.require = nil // invalidate
	return id
}

// NumTasks returns the number of tasks in the batch.
func (b *Batch) NumTasks() int { return len(b.Tasks) }

// NumFiles returns the number of distinct files accessed by the batch.
func (b *Batch) NumFiles() int { return len(b.Files) }

// Finalize validates the batch and builds the derived indexes. It must
// be called after construction and before Require/Sharers is used.
func (b *Batch) Finalize() error {
	nf := len(b.Files)
	b.require = make([][]TaskID, nf)
	for ti := range b.Tasks {
		t := &b.Tasks[ti]
		seen := make(map[FileID]bool, len(t.Files))
		for _, f := range t.Files {
			if int(f) < 0 || int(f) >= nf {
				return fmt.Errorf("batch: task %d references unknown file %d", ti, f)
			}
			if seen[f] {
				return fmt.Errorf("batch: task %d lists file %d twice", ti, f)
			}
			seen[f] = true
			b.require[f] = append(b.require[f], TaskID(ti))
		}
		if t.Compute < 0 {
			return fmt.Errorf("batch: task %d has negative compute time", ti)
		}
	}
	for fi := range b.Files {
		if b.Files[fi].Size <= 0 {
			return fmt.Errorf("batch: file %d has non-positive size", fi)
		}
	}
	return nil
}

// Require returns the tasks that access file f (the paper's Require_l).
// The returned slice must not be modified.
func (b *Batch) Require(f FileID) []TaskID {
	if b.require == nil {
		if err := b.Finalize(); err != nil {
			panic(err)
		}
	}
	return b.require[f]
}

// FileSize returns the size in bytes of file f.
func (b *Batch) FileSize(f FileID) int64 { return b.Files[f].Size }

// TaskBytes returns the total input bytes of task t.
func (b *Batch) TaskBytes(t TaskID) int64 {
	var sum int64
	for _, f := range b.Tasks[t].Files {
		sum += b.Files[f].Size
	}
	return sum
}

// TotalUniqueBytes returns the space needed to hold one copy of every
// file accessed by the given tasks (all tasks when ts is nil). This is
// the paper's "aggregate data requirement" of a (sub-)batch.
func (b *Batch) TotalUniqueBytes(ts []TaskID) int64 {
	if ts == nil {
		var sum int64
		for i := range b.Files {
			sum += b.Files[i].Size
		}
		return sum
	}
	seen := make(map[FileID]bool)
	var sum int64
	for _, t := range ts {
		for _, f := range b.Tasks[t].Files {
			if !seen[f] {
				seen[f] = true
				sum += b.Files[f].Size
			}
		}
	}
	return sum
}

// Stats summarises the file-sharing structure of a batch.
type Stats struct {
	NumTasks         int
	NumFiles         int
	TotalBytes       int64 // one copy of every file
	AccessBytes      int64 // sum over tasks of their input bytes
	MeanFilesPerTask float64
	MeanSharers      float64 // mean |Require_l|
	MaxSharers       int
	// Overlap is the paper's overlap measure: 1 - unique/total file
	// accesses, i.e. the fraction of file accesses that hit a file some
	// other task also accesses at least once.
	Overlap float64
}

// ComputeStats derives sharing statistics for the batch.
func (b *Batch) ComputeStats() Stats {
	s := Stats{NumTasks: len(b.Tasks), NumFiles: len(b.Files)}
	var accesses int
	for ti := range b.Tasks {
		accesses += len(b.Tasks[ti].Files)
		s.AccessBytes += b.TaskBytes(TaskID(ti))
	}
	for fi := range b.Files {
		s.TotalBytes += b.Files[fi].Size
		n := len(b.Require(FileID(fi)))
		if n > s.MaxSharers {
			s.MaxSharers = n
		}
		s.MeanSharers += float64(n)
	}
	if s.NumFiles > 0 {
		s.MeanSharers /= float64(s.NumFiles)
	}
	if s.NumTasks > 0 {
		s.MeanFilesPerTask = float64(accesses) / float64(s.NumTasks)
	}
	if accesses > 0 {
		s.Overlap = 1 - float64(s.NumFiles)/float64(accesses)
	}
	return s
}

// AllTasks returns the IDs of every task, in order.
func (b *Batch) AllTasks() []TaskID {
	ts := make([]TaskID, len(b.Tasks))
	for i := range ts {
		ts[i] = TaskID(i)
	}
	return ts
}

// SortedCopy returns a sorted copy of ts (ascending ID). Used by
// schedulers that need deterministic iteration over task sets.
func SortedCopy(ts []TaskID) []TaskID {
	out := make([]TaskID, len(ts))
	copy(out, ts)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
