// Command schedlint statically enforces the repository's determinism
// contract: fixed seed ⇒ identical schedules at any worker count. It
// loads every package of the module with go/parser + go/types (no
// external dependencies, no subprocesses), builds a module-local call
// graph, and reports violations of seven project-specific rules —
// detrange, nowallclock, mergeorder, floataccum, tracepurity,
// ordertaint, lockorder — with file:line:col positions. Individual
// lines are waived with
//
//	//schedlint:allow <check>[,<check>...] <reason>
//
// on the offending line or the line above; -strict audits the waivers
// themselves (stale entries, typo'd check names). Output is -format
// text (default, line-oriented), json, or sarif (for CI annotation).
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	dir := flag.String("dir", ".", "module root to analyze (directory containing go.mod)")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list registered checks and exit")
	quiet := flag.Bool("q", false, "suppress the summary line")
	strict := flag.Bool("strict", false, "audit allow annotations too: flag stale entries and unregistered check names")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	outPath := flag.String("o", "", "write the report to this file instead of stdout (exit status still reflects findings)")
	flag.Parse()

	if *list {
		for _, name := range analysis.CheckNames() {
			fmt.Println(name)
		}
		return
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}

	cfg := analysis.Config{Strict: *strict}
	if *checks != "" {
		cfg.Checks = strings.Split(*checks, ",")
	}
	findings := analysis.Run(pkgs, cfg)

	var out io.Writer = os.Stdout
	var file *os.File
	if *outPath != "" {
		file, err = os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		out = bufio.NewWriter(file)
	}
	switch *format {
	case "text":
		err = analysis.WriteText(out, findings, root)
	case "json":
		err = analysis.WriteJSON(out, findings, root)
	case "sarif":
		err = analysis.WriteSARIF(out, findings, root)
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, json, or sarif)", *format))
	}
	if err != nil {
		fatal(err)
	}
	if file != nil {
		if err := out.(*bufio.Writer).Flush(); err != nil {
			fatal(err)
		}
		if err := file.Close(); err != nil {
			fatal(err)
		}
	}
	if len(findings) > 0 {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "schedlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "schedlint: %d package(s) clean\n", len(pkgs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedlint:", err)
	os.Exit(2)
}
