// Package mip is a 0-1 mixed-integer programming solver built on the
// internal/simplex LP engine: an lp_solve replacement for the paper's
// integer-programming-based scheduler. It offers a small model-builder
// API (variables, linear rows, min/max objective), LP-relaxation-based
// branch and bound with depth-first diving, most-fractional branching,
// warm-start incumbents, and node/time limits with gap reporting.
package mip

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/simplex"
)

// Sense is a row's comparison operator.
type Sense int8

// Row senses.
const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

// Term is one coefficient of a row or the objective.
type Term struct {
	Var  int
	Coef float64
}

// Model is a MIP under construction.
type Model struct {
	maximize bool
	obj      []float64
	lower    []float64
	upper    []float64
	integer  []bool
	names    []string

	rows     [][]Term
	senses   []Sense
	rhs      []float64
	rowNames []string
}

// NewModel returns an empty minimization model.
func NewModel() *Model { return &Model{} }

// SetMaximize flips the objective direction to maximization.
func (m *Model) SetMaximize() { m.maximize = true }

// AddVar appends a variable and returns its index.
func (m *Model) AddVar(name string, lb, ub, objCoef float64, integer bool) int {
	m.names = append(m.names, name)
	m.lower = append(m.lower, lb)
	m.upper = append(m.upper, ub)
	m.obj = append(m.obj, objCoef)
	m.integer = append(m.integer, integer)
	return len(m.obj) - 1
}

// AddBinary appends a 0-1 variable.
func (m *Model) AddBinary(name string, objCoef float64) int {
	return m.AddVar(name, 0, 1, objCoef, true)
}

// AddRow appends a linear constraint Σ terms (sense) rhs.
func (m *Model) AddRow(name string, terms []Term, sense Sense, rhs float64) {
	t := make([]Term, len(terms))
	copy(t, terms)
	m.rows = append(m.rows, t)
	m.senses = append(m.senses, sense)
	m.rhs = append(m.rhs, rhs)
	m.rowNames = append(m.rowNames, name)
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.obj) }

// NumRows returns the number of constraints added so far.
func (m *Model) NumRows() int { return len(m.rows) }

// Status describes the solve outcome.
type Status int

// Solve outcomes.
const (
	// Optimal: proven optimal within tolerances.
	Optimal Status = iota
	// Feasible: a feasible incumbent exists but optimality was not
	// proven (limit hit).
	Feasible
	// Infeasible: no feasible solution exists.
	Infeasible
	// NoSolution: limits hit before any feasible solution was found.
	NoSolution
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Options bounds the search.
type Options struct {
	// TimeLimit caps wall-clock solve time (0 = no limit).
	TimeLimit time.Duration
	// NodeLimit caps branch-and-bound nodes per portfolio worker
	// (0 = default 100000).
	NodeLimit int
	// Workers is the number of concurrent branch-and-bound dives the
	// portfolio runs (0 = runtime.GOMAXPROCS(0), 1 = the sequential
	// solver). Worker 0 follows the canonical most-fractional dive;
	// the others use deterministically jittered branching orders, all
	// sharing one incumbent bound, so within the same budget the
	// portfolio's incumbent is never worse than the sequential one.
	Workers int
	// WarmStart, when non-nil, is a feasible assignment used as the
	// initial incumbent (checked; ignored if infeasible).
	WarmStart []float64
	// LP tunes the underlying simplex solves.
	LP simplex.Options
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Trace, when non-nil, receives per-worker dive spans and
	// incumbent-improvement instants. Observability only: the search
	// never reads it for decisions.
	Trace obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.NodeLimit == 0 {
		o.NodeLimit = 100000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Solution reports the best-known answer.
type Solution struct {
	Status Status
	// Obj is the incumbent objective in the model's own direction.
	Obj float64
	X   []float64
	// Bound is the best proven bound on the optimum (model direction).
	Bound float64
	// Gap is |Obj−Bound| / max(1,|Obj|); zero when proven optimal.
	Gap   float64
	Nodes int
}

// Solve runs branch and bound: a single depth-first dive when
// Workers=1, otherwise a multi-start portfolio of concurrent dives
// (see portfolio.go).
func (m *Model) Solve(opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	if opt.Workers > 1 {
		return m.solvePortfolio(opt)
	}
	lp, err := m.toLP()
	if err != nil {
		return nil, err
	}
	tr := obs.OrNop(opt.Trace)
	//schedlint:allow nowallclock,tracepurity anchors Options.TimeLimit, the documented wall-clock budget (DESIGN §7)
	s := &search{m: m, lp: lp, opt: opt, start: time.Now(), bestObj: math.Inf(1), tr: tr}
	if opt.WarmStart != nil {
		if obj, ok := m.CheckFeasible(opt.WarmStart, 1e-6); ok {
			s.setIncumbent(opt.WarmStart, s.internalObj(obj))
		}
	}
	tr.NameTrack(obs.DomainReal, obs.SolverTrack(0), "mip worker 0")
	end := tr.Span(obs.SolverTrack(0), "solver", "b&b dive",
		obs.A("vars", len(m.obj)), obs.A("workers", 1))
	s.run()
	end(obs.A("nodes", s.nodes), obs.A("hit_limit", s.hitLimit))
	return s.solution(), nil
}

// internalObj converts a model-direction objective to the internal
// minimization direction.
func (s *search) internalObj(obj float64) float64 {
	if s.m.maximize {
		return -obj
	}
	return obj
}

// CheckFeasible verifies an assignment against bounds, integrality and
// rows; it returns the model-direction objective and validity.
func (m *Model) CheckFeasible(x []float64, tol float64) (float64, bool) {
	if len(x) != len(m.obj) {
		return 0, false
	}
	for j := range x {
		if x[j] < m.lower[j]-tol || x[j] > m.upper[j]+tol {
			return 0, false
		}
		if m.integer[j] && math.Abs(x[j]-math.Round(x[j])) > tol {
			return 0, false
		}
	}
	for r := range m.rows {
		var lhs float64
		for _, t := range m.rows[r] {
			lhs += t.Coef * x[t.Var]
		}
		switch m.senses[r] {
		case LE:
			if lhs > m.rhs[r]+tol*(1+math.Abs(m.rhs[r])) {
				return 0, false
			}
		case GE:
			if lhs < m.rhs[r]-tol*(1+math.Abs(m.rhs[r])) {
				return 0, false
			}
		case EQ:
			if math.Abs(lhs-m.rhs[r]) > tol*(1+math.Abs(m.rhs[r])) {
				return 0, false
			}
		}
	}
	var obj float64
	for j := range x {
		obj += m.obj[j] * x[j]
	}
	return obj, true
}

// toLP converts the model to equality standard form, appending one
// slack column per inequality row. Objective is always minimization
// internally.
func (m *Model) toLP() (*simplex.LP, error) {
	n := len(m.obj)
	lp := &simplex.LP{NumRows: len(m.rows)}
	lp.Cost = make([]float64, n)
	for j := range m.obj {
		if m.maximize {
			lp.Cost[j] = -m.obj[j]
		} else {
			lp.Cost[j] = m.obj[j]
		}
	}
	lp.Lower = append([]float64(nil), m.lower...)
	lp.Upper = append([]float64(nil), m.upper...)
	lp.B = append([]float64(nil), m.rhs...)
	lp.Cols = make([][]simplex.Entry, n)
	for r, row := range m.rows {
		for _, t := range row {
			if t.Var < 0 || t.Var >= n {
				return nil, fmt.Errorf("mip: row %d references unknown variable %d", r, t.Var)
			}
			if t.Coef == 0 {
				continue
			}
			lp.Cols[t.Var] = append(lp.Cols[t.Var], simplex.Entry{Row: int32(r), Val: t.Coef})
		}
	}
	// Slack columns.
	for r := range m.rows {
		switch m.senses[r] {
		case LE:
			lp.Cost = append(lp.Cost, 0)
			lp.Lower = append(lp.Lower, 0)
			lp.Upper = append(lp.Upper, math.Inf(1))
			lp.Cols = append(lp.Cols, []simplex.Entry{{Row: int32(r), Val: 1}})
		case GE:
			lp.Cost = append(lp.Cost, 0)
			lp.Lower = append(lp.Lower, 0)
			lp.Upper = append(lp.Upper, math.Inf(1))
			lp.Cols = append(lp.Cols, []simplex.Entry{{Row: int32(r), Val: -1}})
		}
	}
	return lp, nil
}
