package analysis

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// engine holds the interprocedural state shared by all checks of one
// Run invocation: the call graph and the lazily-computed fixpoints
// over it. Everything is deterministic — nodes are visited in
// (package path, position) order and every merge keeps the
// minimum-position witness.
type engine struct {
	pkgs []*Package
	sup  map[*Package]*suppressions

	cg *callGraph

	// readers caches, per check name, the set of module functions
	// that transitively reach an unsuppressed wall-clock (or, for
	// nowallclock, global-rand) read, with the underlying read as
	// witness.
	readers map[string]map[*cgNode]extCall

	// summaries holds the converged order-taint summaries.
	summaries map[*cgNode]*taintSummary

	// lockKeyCache interns lock identities once per Run: edges compare
	// *lockKey by pointer, so every caller must see the same instances.
	lockKeyCache map[types.Object]*lockKey
	acqCache     map[*cgNode]map[*lockKey]lockWitness
}

func newEngine(pkgs []*Package, sup map[*Package]*suppressions) *engine {
	return &engine{pkgs: pkgs, sup: sup, readers: map[string]map[*cgNode]extCall{}}
}

// graph builds the call graph on first use.
func (e *engine) graph() *callGraph {
	if e.cg == nil {
		e.cg = buildCallGraph(e.pkgs)
	}
	return e.cg
}

// clockReaders returns the transitive clock-reader set gated by the
// given check's allow annotations: a direct time.Now/Since/Until call
// seeds its function unless the site carries //schedlint:allow <check>
// (the justification then covers every transitive caller too), and
// internal/obs — the designated clock boundary — never seeds nor
// carries. With includeRand set, unsuppressed global math/rand draws
// seed as well (the nowallclock variant).
func (e *engine) clockReaders(check string, includeRand bool) map[*cgNode]extCall {
	if m, ok := e.readers[check]; ok {
		return m
	}
	cg := e.graph()
	m := map[*cgNode]extCall{}
	adopt := func(n *cgNode, r extCall) bool {
		if w, ok := m[n]; !ok || r.pos < w.pos {
			m[n] = r
			return true
		}
		return false
	}
	for _, n := range cg.nodes {
		if isObsPackage(n.pkg.Path) {
			continue
		}
		seeds := n.clockReads
		if includeRand {
			seeds = append(append([]extCall{}, seeds...), n.randReads...)
		}
		for _, r := range seeds {
			if e.sup[n.pkg].allows(n.pkg.Fset.Position(r.pos), check) {
				continue
			}
			adopt(n, r)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range cg.nodes {
			if isObsPackage(n.pkg.Path) {
				continue
			}
			for _, c := range n.calls {
				if c.node == nil || isObsPackage(c.node.pkg.Path) {
					continue
				}
				if w, ok := m[c.node]; ok && adopt(n, w) {
					changed = true
				}
			}
		}
	}
	e.readers[check] = m
	return m
}

// lockWitness records where (and through which immediate callee) a
// node may acquire a lock.
type lockWitness struct {
	pos token.Pos
	// via is the immediate module-local callee the acquisition is
	// reached through; nil when the node locks directly.
	via *cgNode
}

// acquires computes, for every node, the set of lock identities it may
// acquire transitively (direct Lock/RLock plus anything its
// module-local callees acquire).
func (e *engine) acquires() map[*cgNode]map[*lockKey]lockWitness {
	if e.acqCache != nil {
		return e.acqCache
	}
	cg := e.graph()
	acq := map[*cgNode]map[*lockKey]lockWitness{}
	add := func(n *cgNode, k *lockKey, w lockWitness) bool {
		s := acq[n]
		if s == nil {
			s = map[*lockKey]lockWitness{}
			acq[n] = s
		}
		if old, ok := s[k]; !ok || w.pos < old.pos {
			s[k] = w
			return true
		}
		return false
	}
	keys := e.lockKeys()
	for _, n := range cg.nodes {
		for _, op := range n.lockOps {
			if op.acquire {
				add(n, keys[op.obj], lockWitness{pos: op.pos})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range cg.nodes {
			for _, c := range n.calls {
				if c.node == nil {
					continue
				}
				// The witness keeps the original Lock position but
				// names the first hop from this node's point of view.
				for k, w := range acq[c.node] {
					if add(n, k, lockWitness{pos: w.pos, via: c.node}) {
						changed = true
					}
				}
			}
		}
	}
	e.acqCache = acq
	return acq
}

// lockKey is the canonical identity of one lock (class-level: a struct
// field covers every instance).
type lockKey struct {
	name string // display name, e.g. "Metrics.mu"
}

// lockKeys interns the lock identities found anywhere in the module so
// the same field/var maps to one *lockKey, across every caller of one
// Run.
func (e *engine) lockKeys() map[types.Object]*lockKey {
	if e.lockKeyCache != nil {
		return e.lockKeyCache
	}
	cg := e.graph()
	keys := map[types.Object]*lockKey{}
	for _, n := range cg.nodes {
		for _, op := range n.lockOps {
			if keys[op.obj] == nil {
				keys[op.obj] = &lockKey{name: op.name}
			}
		}
	}
	e.lockKeyCache = keys
	return keys
}

// taintSummaries converges the per-function order-taint summaries over
// the call graph.
func (e *engine) taintSummaries() map[*cgNode]*taintSummary {
	if e.summaries != nil {
		return e.summaries
	}
	cg := e.graph()
	e.summaries = map[*cgNode]*taintSummary{}
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, n := range cg.nodes {
			s := newTaintState(e, n).run()
			old := e.summaries[n]
			if old == nil || *old != s {
				cp := s
				e.summaries[n] = &cp
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return e.summaries
}

// nodesOf returns the engine's call-graph nodes belonging to one
// package, in position order.
func (e *engine) nodesOf(pkg *Package) []*cgNode {
	var out []*cgNode
	for _, n := range e.graph().nodes {
		if n.pkg == pkg {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// isDeterministicPkg reports whether the package path falls under the
// configured deterministic prefixes.
func isDeterministicPkg(path string, prefixes []string) bool {
	return isDeterministicPath(strings.TrimSuffix(path, ".test"), prefixes)
}
