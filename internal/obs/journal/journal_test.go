package journal

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sample() []Event {
	return []Event{
		{Kind: KindRunStart, Run: &Run{Sched: "MinMin", Tasks: 2}},
		{Kind: KindPlace, Round: 0, Place: &Place{
			Task: 0, Node: 1, Policy: "minmin-ect", Score: 3.5,
			Candidates: []Candidate{{Node: 0, Score: 4.0, Fits: true}, {Node: 1, Score: 3.5, Fits: true}},
		}},
		{Kind: KindStage, T: 0, Round: 0, Stage: &Stage{
			File: 0, Dest: 1, Src: -1, Home: 0, Kind: "remote",
			Start: 0, End: 2.5, Bytes: 1 << 20, Cause: "task", Task: 0,
			Alternatives: []SourceAlt{{Src: -1, TCT: 2.5}},
		}},
		{Kind: KindExec, T: 2.5, Round: 0, Exec: &Exec{Task: 0, Node: 1, Start: 2.5, End: 5, Inputs: []int{0}}},
		{Kind: KindEvict, T: 5, Round: 0, Evict: &Evict{Node: 1, File: 0, Bytes: 1 << 20, Score: 0.5, Policy: "popularity"}},
		{Kind: KindFault, T: 5, Round: 1, Fault: &Fault{Class: FaultCrash, Node: 1, Task: -1, File: -1}},
		{Kind: KindRunEnd, T: 9, Run: &Run{Sched: "MinMin", Status: "Complete", Makespan: 9, SubBatches: 2}},
	}
}

func TestRoundTrip(t *testing.T) {
	r := New()
	for _, ev := range sample() {
		r.Emit(ev)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != r.Len() {
		t.Fatalf("got %d lines, want %d", n, r.Len())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r.Events()) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, r.Events())
	}
}

func TestSeqAssignment(t *testing.T) {
	r := New()
	for _, ev := range sample() {
		r.Emit(ev)
	}
	for i, ev := range r.Events() {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Emit(Event{Kind: KindExec})
	r.SetTap(func(Event) {})
	r.Merge(New())
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder not empty")
	}
}

func TestMergeReseqsDeterministically(t *testing.T) {
	build := func() (*Recorder, *Recorder) {
		a, b := New(), New()
		a.Emit(Event{Kind: KindRunStart, Run: &Run{Sched: "A"}})
		a.Emit(Event{Kind: KindRunEnd, Run: &Run{Sched: "A"}})
		b.Emit(Event{Kind: KindRunStart, Run: &Run{Sched: "B"}})
		return a, b
	}
	a1, b1 := build()
	m1 := New()
	m1.Merge(a1)
	m1.Merge(b1)
	a2, b2 := build()
	m2 := New()
	m2.Merge(a2)
	m2.Merge(b2)
	var w1, w2 bytes.Buffer
	if err := m1.WriteJSONL(&w1); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteJSONL(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("index-order merges differ")
	}
	evs := m1.Events()
	if len(evs) != 3 {
		t.Fatalf("merged %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("merged event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[2].Run.Sched != "B" {
		t.Fatalf("merge order violated: %+v", evs[2])
	}
}

func TestTapSeesEventsInOrder(t *testing.T) {
	r := New()
	var seen []int
	r.SetTap(func(ev Event) { seen = append(seen, ev.Seq) })
	for _, ev := range sample() {
		r.Emit(ev)
	}
	r.SetTap(nil)
	r.Emit(Event{Kind: KindRunEnd})
	if len(seen) != len(sample()) {
		t.Fatalf("tap saw %d events, want %d", len(seen), len(sample()))
	}
	for i, s := range seen {
		if s != i {
			t.Fatalf("tap order: %v", seen)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"seq\":0}\nnot json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank lines: %v %v", evs, err)
	}
}
