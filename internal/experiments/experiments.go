// Package experiments reproduces every figure of the paper's
// evaluation (§7): the workload and platform configuration of each
// experiment, the schedulers it compares, and runners that regenerate
// the same rows/series the paper plots. Both cmd/paperfigs and the
// repository's benchmark suite drive these runners.
//
// Calibration notes (see EXPERIMENTS.md): simulated platforms use the
// paper's published bandwidths; the Figure 5(b) per-node disk is
// scaled so the requirement/capacity ratio of the sweep matches the
// paper's (their 40 GB nodes against a ~330 GB peak requirement ⇒ our
// 12 GB nodes against the emulator's ~113-230 GB peak); IP solves are
// time-budgeted (the paper's lp_solve runs were minutes-to-hours at
// this scale; our branch and bound returns its best incumbent at the
// deadline).
package experiments

import (
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/sched/bipart"
	"repro/internal/sched/ipsched"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/spec"
	"repro/internal/workload"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks workloads ~10× and IP budgets for smoke runs and
	// benchmarks; figures keep their shape but absolute values shrink.
	Quick bool
	// IPBudget caps each IP allocation solve (default 20 s, quick 3 s).
	IPBudget time.Duration
	// Seed varies the generated workloads.
	Seed int64
	// SkipIP drops the IP scheduler from figures that include it.
	SkipIP bool
	// Workers bounds the parallelism of a figure run: the independent
	// (row × scheduler) cells of each figure fan out across this many
	// goroutines, and each scheduler's own solver (IP portfolio,
	// hypergraph partitioner) inherits the same setting. 0 means
	// runtime.GOMAXPROCS(0); 1 reproduces the fully sequential run.
	// Table rows are merged in fixed order and every cell re-derives
	// its inputs from Seed, so Workers never changes the rows.
	Workers int
	// Obs attaches optional observability sinks to every cell run. The
	// tracer is shared across cells (its export sorts canonically);
	// metrics are recorded into a private per-cell registry and merged
	// into Obs.Metrics in cell-index order, so the aggregate snapshot
	// is identical at any worker count.
	Obs core.Observer
	// Faults injects the given failure scenario into every figure run
	// (nil = fault-free). The Chaos experiment ignores this and runs
	// its own scenario sweep.
	Faults *faults.FaultPlan
	// Spec forks speculative duplicates of straggling executions in
	// every figure run (nil = no speculation). The Chaos experiment
	// ignores this and runs its own {no-spec, spec} sweep.
	Spec *spec.Policy
}

func (o Options) withDefaults() Options {
	if o.IPBudget == 0 {
		if o.Quick {
			o.IPBudget = 3 * time.Second
		} else {
			o.IPBudget = 20 * time.Second
		}
	}
	return o
}

func (o Options) tasks(full int) int {
	if o.Quick {
		n := full / 10
		if n < 8 {
			n = 8
		}
		return n
	}
	return full
}

// run executes one (problem, scheduler) pair under the cell's
// observer (zero Observer = unobserved, same schedule either way),
// optional fault scenario (nil = fault-free fast path), and optional
// speculation policy (nil = no duplicate attempts).
func run(p *core.Problem, s core.Scheduler, ob core.Observer, fp *faults.FaultPlan, sp *spec.Policy) (*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return core.RunWith(p, s, core.RunOptions{Obs: ob, Faults: fp, Spec: sp})
}

// schedSpec names one scheduler column and builds fresh instances of
// it, so concurrent cells never share a scheduler value.
type schedSpec struct {
	name string
	isIP bool
	make func() core.Scheduler
}

// schedulerSet builds the figure-3/4 scheduler lineup.
func schedulerSet(o Options) []schedSpec {
	ss := []schedSpec{}
	if !o.SkipIP {
		ss = append(ss, schedSpec{name: "IP", isIP: true, make: func() core.Scheduler {
			ip := ipsched.New(o.Seed + 100)
			ip.AllocBudget = o.IPBudget
			ip.SelectBudget = o.IPBudget / 2
			ip.Workers = o.Workers
			ip.Trace = o.Obs.Trace
			return ip
		}})
	}
	ss = append(ss,
		schedSpec{name: "BiPartition", make: func() core.Scheduler {
			bp := bipart.New(o.Seed + 200)
			bp.Workers = o.Workers
			bp.Trace = o.Obs.Trace
			return bp
		}},
		schedSpec{name: "MinMin", make: func() core.Scheduler { return minmin.New() }},
		schedSpec{name: "JobDataPresent", make: func() core.Scheduler { return jdp.New() }},
	)
	return ss
}

func columnNames(ss []schedSpec) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.name
	}
	return names
}

// makeImage builds an IMAGE batch for the given overlap.
func makeImage(o Options, tasks, storage int, ov workload.Overlap) (*batch.Batch, error) {
	return workload.Image(workload.ImageConfig{
		NumTasks: tasks, Overlap: ov, NumStorage: storage, Seed: o.Seed + int64(ov)*7,
	})
}

// makeSat builds a SAT batch for the given overlap.
func makeSat(o Options, tasks, storage int, ov workload.Overlap) (*batch.Batch, error) {
	return workload.Sat(workload.SatConfig{
		NumTasks: tasks, Overlap: ov, NumStorage: storage, Seed: o.Seed + int64(ov)*13,
	})
}

// overlapFigure renders one panel of Figure 3/4: batch execution time
// for the three overlap classes under every scheduler.
func overlapFigure(o Options, app string, pf func() *platform.Platform,
	gen func(ov workload.Overlap) (*batch.Batch, error)) (*report.Table, error) {
	ss := schedulerSet(o)
	t := &report.Table{
		Title:   fmt.Sprintf("%s: batch execution time (s), %s", pf().Name, app),
		XLabel:  "overlap",
		YLabel:  "batch execution time (s)",
		Columns: columnNames(ss),
	}
	overlaps := []workload.Overlap{workload.HighOverlap, workload.MediumOverlap, workload.LowOverlap}
	vals := make([][]float64, len(overlaps))
	for r := range vals {
		vals[r] = make([]float64, len(ss))
	}
	// One cell per (overlap row × scheduler column); each regenerates
	// its workload from the seed, so cells share no state.
	err := forEachCellObserved(o.Workers, len(overlaps)*len(ss), o.Obs, func(i int, ob core.Observer) error {
		r, c := i/len(ss), i%len(ss)
		ov := overlaps[r]
		b, err := gen(ov)
		if err != nil {
			return err
		}
		res, err := run(&core.Problem{Batch: b, Platform: pf()}, ss[c].make(), ob, o.Faults, o.Spec)
		if err != nil {
			return fmt.Errorf("%s/%s/%v: %w", app, ss[c].name, ov, err)
		}
		vals[r][c] = res.Makespan
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r, ov := range overlaps {
		t.AddRow(ov.String(), vals[r]...)
	}
	if !o.SkipIP {
		t.Notes = append(t.Notes, fmt.Sprintf("IP solves budgeted at %v per sub-batch (best incumbent used)", o.IPBudget))
	}
	return t, nil
}

// Fig3 reproduces Figure 3: IMAGE on (a) OSUMED and (b) XIO storage,
// 100 tasks, 4 compute + 4 storage nodes, three overlap classes.
func Fig3(o Options) ([]*report.Table, error) {
	o = o.withDefaults()
	n := o.tasks(100)
	gen := func(ov workload.Overlap) (*batch.Batch, error) { return makeImage(o, n, 4, ov) }
	a, err := overlapFigure(o, fmt.Sprintf("IMAGE %d tasks", n), func() *platform.Platform { return platform.OSUMED(4, 4, 0) }, gen)
	if err != nil {
		return nil, err
	}
	a.Title = "Fig 3(a) " + a.Title
	bt, err := overlapFigure(o, fmt.Sprintf("IMAGE %d tasks", n), func() *platform.Platform { return platform.XIO(4, 4, 0) }, gen)
	if err != nil {
		return nil, err
	}
	bt.Title = "Fig 3(b) " + bt.Title
	return []*report.Table{a, bt}, nil
}

// Fig4 reproduces Figure 4: SAT on (a) OSUMED and (b) XIO storage.
func Fig4(o Options) ([]*report.Table, error) {
	o = o.withDefaults()
	n := o.tasks(100)
	gen := func(ov workload.Overlap) (*batch.Batch, error) { return makeSat(o, n, 4, ov) }
	a, err := overlapFigure(o, fmt.Sprintf("SAT %d tasks", n), func() *platform.Platform { return platform.OSUMED(4, 4, 0) }, gen)
	if err != nil {
		return nil, err
	}
	a.Title = "Fig 4(a) " + a.Title
	bt, err := overlapFigure(o, fmt.Sprintf("SAT %d tasks", n), func() *platform.Platform { return platform.XIO(4, 4, 0) }, gen)
	if err != nil {
		return nil, err
	}
	bt.Title = "Fig 4(b) " + bt.Title
	return []*report.Table{a, bt}, nil
}

// Fig5a reproduces Figure 5(a): the benefit of compute-to-compute
// replication over no replication, on 8 compute + 4 OSUMED storage
// nodes with 100-task high-overlap batches of both applications.
func Fig5a(o Options) ([]*report.Table, error) {
	o = o.withDefaults()
	n := o.tasks(100)
	t := &report.Table{
		Title:   "Fig 5(a) replication vs no replication (batch execution time, s)",
		XLabel:  "application",
		YLabel:  "batch execution time (s)",
		Columns: []string{"Replication", "NoReplication"},
	}
	apps := []string{"IMAGE", "SAT"}
	vals := make([][]float64, len(apps))
	for r := range vals {
		vals[r] = make([]float64, 2)
	}
	// One cell per (application × replication mode).
	err := forEachCellObserved(o.Workers, len(apps)*2, o.Obs, func(i int, ob core.Observer) error {
		r, c := i/2, i%2
		var b *batch.Batch
		var err error
		if apps[r] == "IMAGE" {
			// Four hot groups, as in the SAT workload: with more
			// compute nodes (8) than hot spots, tasks sharing files
			// necessarily span nodes and replication has room to help.
			b, err = workload.Image(workload.ImageConfig{
				NumTasks: n, Overlap: workload.HighOverlap, NumStorage: 4,
				Seed: o.Seed + 31, HotGroups: 4,
			})
		} else {
			b, err = makeSat(o, n, 4, workload.HighOverlap)
		}
		if err != nil {
			return err
		}
		s := bipart.New(o.Seed + 300)
		s.Workers = o.Workers
		s.Trace = o.Obs.Trace
		res, err := run(&core.Problem{Batch: b, Platform: platform.OSUMED(8, 4, 0), DisableReplication: c == 1}, s, ob, o.Faults, o.Spec)
		if err != nil {
			return err
		}
		vals[r][c] = res.Makespan
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r, app := range apps {
		t.AddRow(app, vals[r]...)
	}
	t.Notes = append(t.Notes, "scheduler: BiPartition; platform: 8 compute + 4 OSUMED storage nodes")
	return []*report.Table{t}, nil
}

// Fig5bDiskPerNode is the per-node compute disk of the Figure 5(b)
// sweep. The paper used 40 GB nodes (160 GB aggregate) against a
// 40→330 GB requirement sweep, i.e. the batch grows from comfortably
// fitting to ≈2× over-subscribed. The emulator's requirement sweep is
// ≈6→47 GB, so 6 GB nodes (24 GB aggregate) preserve that
// requirement/capacity trajectory (fits at 500 tasks, ≈2× at 4000).
const Fig5bDiskPerNode = 6 * platform.GB

// Fig5b reproduces Figure 5(b): batch execution time versus batch
// size under disk pressure (4 compute + 4 XIO storage nodes,
// high-overlap IMAGE).
func Fig5b(o Options) ([]*report.Table, error) {
	o = o.withDefaults()
	sizes := []int{500, 1000, 2000, 4000}
	disk := int64(Fig5bDiskPerNode)
	if o.Quick {
		sizes = []int{50, 100, 200, 400}
		disk /= 10
	}
	ss := []schedSpec{
		{name: "BiPartition", make: func() core.Scheduler {
			bp := bipart.New(o.Seed + 400)
			bp.Workers = o.Workers
			bp.Trace = o.Obs.Trace
			return bp
		}},
		{name: "MinMin", make: func() core.Scheduler { return minmin.New() }},
		{name: "JobDataPresent", make: func() core.Scheduler { return jdp.New() }},
	}
	t := &report.Table{
		Title:   "Fig 5(b) batch execution time vs batch size (IMAGE high overlap, limited disk)",
		XLabel:  "tasks",
		YLabel:  "batch execution time (s)",
		Columns: columnNames(ss),
	}
	vals := make([][]float64, len(sizes))
	for r := range vals {
		vals[r] = make([]float64, len(ss))
	}
	err := forEachCellObserved(o.Workers, len(sizes)*len(ss), o.Obs, func(i int, ob core.Observer) error {
		r, c := i/len(ss), i%len(ss)
		n := sizes[r]
		b, err := makeImage(o, n, 4, workload.HighOverlap)
		if err != nil {
			return err
		}
		res, err := run(&core.Problem{Batch: b, Platform: platform.XIO(4, 4, disk)}, ss[c].make(), ob, o.Faults, o.Spec)
		if err != nil {
			return fmt.Errorf("fig5b %s n=%d: %w", ss[c].name, n, err)
		}
		vals[r][c] = res.Makespan
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r, n := range sizes {
		t.AddRow(fmt.Sprintf("%d", n), vals[r]...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-node disk %.0f GB (see EXPERIMENTS.md calibration); IP omitted as in the paper (prohibitive scheduling overhead)", float64(disk)/float64(platform.GB)))
	return []*report.Table{t}, nil
}

// Fig6 reproduces Figure 6: (a) batch execution time and (b) per-task
// scheduling time while the compute cluster scales 2→32 nodes
// (1000-task high-overlap IMAGE, 8 XIO storage nodes). The IP
// scheduler joins only the node counts where its model stays
// tractable, mirroring the paper's observation.
func Fig6(o Options) ([]*report.Table, error) {
	o = o.withDefaults()
	n := o.tasks(1000)
	nodes := []int{2, 4, 8, 16, 32}
	ipMaxNodes := 4 // IP measured only on the small configurations
	ss := schedulerSet(o)
	ta := &report.Table{
		Title:   "Fig 6(a) batch execution time vs compute nodes (IMAGE high overlap)",
		XLabel:  "nodes",
		YLabel:  "batch execution time (s)",
		Columns: columnNames(ss),
	}
	tb := &report.Table{
		Title:   "Fig 6(b) scheduling time per task (ms) vs compute nodes",
		XLabel:  "nodes",
		YLabel:  "scheduling ms per task",
		Columns: columnNames(ss),
	}
	valsA := make([][]float64, len(nodes))
	valsB := make([][]float64, len(nodes))
	miss := make([][]bool, len(nodes))
	for r := range nodes {
		valsA[r] = make([]float64, len(ss))
		valsB[r] = make([]float64, len(ss))
		miss[r] = make([]bool, len(ss))
	}
	err := forEachCellObserved(o.Workers, len(nodes)*len(ss), o.Obs, func(i int, ob core.Observer) error {
		r, c := i/len(ss), i%len(ss)
		C := nodes[r]
		if ss[c].isIP && C > ipMaxNodes {
			miss[r][c] = true
			return nil
		}
		b, err := makeImage(o, n, 8, workload.HighOverlap)
		if err != nil {
			return err
		}
		res, err := run(&core.Problem{Batch: b, Platform: platform.XIO(C, 8, 0)}, ss[c].make(), ob, o.Faults, o.Spec)
		if err != nil {
			return fmt.Errorf("fig6 %s C=%d: %w", ss[c].name, C, err)
		}
		valsA[r][c] = res.Makespan
		valsB[r][c] = res.SchedulingMSPerTask()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r, C := range nodes {
		label := fmt.Sprintf("%d", C)
		ta.AddRowMissing(label, valsA[r], miss[r])
		tb.AddRowMissing(label, valsB[r], miss[r])
	}
	if !o.SkipIP {
		note := fmt.Sprintf("IP measured only up to %d nodes (budget %v per solve); beyond that its overhead is prohibitive, as the paper reports", ipMaxNodes, o.IPBudget)
		ta.Notes = append(ta.Notes, note)
		tb.Notes = append(tb.Notes, note)
	}
	return []*report.Table{ta, tb}, nil
}

// All runs every figure.
func All(o Options) ([]*report.Table, error) {
	var out []*report.Table
	for _, f := range []func(Options) ([]*report.Table, error){Fig3, Fig4, Fig5a, Fig5b, Fig6} {
		ts, err := f(o)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}
