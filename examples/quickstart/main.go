// Quickstart: build a small batch of file-sharing tasks by hand, run
// it through the BiPartition scheduler on a simulated coupled
// storage/compute cluster, and inspect the result.
package main

import (
	"fmt"
	"log"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
)

func main() {
	// A dataset of six 100 MB files spread over two storage nodes.
	b := batch.New()
	var files []batch.FileID
	for i := 0; i < 6; i++ {
		f := b.AddFile(fmt.Sprintf("chunk-%d", i), 100*platform.MB, i%2)
		files = append(files, f)
	}
	// Eight tasks; consecutive tasks share most of their inputs
	// (batch-shared I/O).
	for i := 0; i < 8; i++ {
		in := []batch.FileID{files[i%5], files[(i+1)%5], files[(i+2)%5]}
		b.AddTask(fmt.Sprintf("analysis-%d", i), 0.3 /* seconds of compute */, in)
	}

	// A toy platform: 3 compute nodes with 1 GB local caches, 2
	// storage nodes, 50 MB/s remote paths, 500 MB/s compute fabric.
	pf := platform.Uniform(3, 2, platform.GB, 50*platform.MB, 500*platform.MB)

	problem := &core.Problem{Batch: b, Platform: pf}
	result, err := core.Run(problem, bipart.New(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduler:        %s\n", result.Scheduler)
	fmt.Printf("batch time:       %.2f s (simulated)\n", result.Makespan)
	fmt.Printf("remote transfers: %d\n", result.RemoteTransfers)
	fmt.Printf("replications:     %d\n", result.ReplicaTransfers)
	fmt.Printf("sub-batches:      %d\n", result.SubBatches)
}
