// Package floataccum is a schedlint golden-test fixture for the
// floataccum check: float += in map-iteration order triggers, sorted
// or slice-ordered accumulation does not.
package floataccum

import "sort"

// badSum accumulates floats in map order: the rounding error depends
// on the randomized iteration order. One finding.
func badSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// badSub is the subtraction variant. One finding.
func badSub(m map[string]float64, total float64) float64 {
	for _, v := range m {
		total -= v
	}
	return total
}

// goodSortedKeys accumulates over sorted keys — a fixed order, so the
// rounding is reproducible. Clean (the range is over a slice).
func goodSortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// goodLoopLocal accumulates into a variable scoped to the loop body —
// it cannot carry order effects across iterations. Clean.
func goodLoopLocal(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		if rowSum > 1 {
			n++
		}
	}
	return n
}

// suppressedSum carries an allow annotation — no finding.
func suppressedSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //schedlint:allow floataccum fixture: tolerance-insensitive statistic
	}
	return sum
}
