// Package faults is the deterministic failure model of the runtime
// stage: a seeded scenario specification (FaultPlan) compiled into an
// Injector that answers, in simulated time, whether a node crashes,
// whether a transfer attempt fails, and how much a task execution is
// slowed by a straggling node.
//
// Determinism contract: every decision is a pure function of the plan
// seed and a stable event identity (node index, sub-batch round, file,
// destination, attempt number) hashed through SplitMix64 — never of
// call order, wall-clock time, goroutine scheduling, or map iteration.
// A fixed FaultPlan therefore reproduces byte-identical failure
// sequences, recovery schedules, and metrics at any worker count, and
// the package is part of schedlint's deterministic path set (no wall
// clock, no global rand).
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// FaultPlan is a complete chaos scenario: who fails, how often, and
// what the recovery budgets are. The zero value (and nil) injects
// nothing — Enabled reports false and the runtime takes its fault-free
// fast path. All times and rates are in simulated seconds.
type FaultPlan struct {
	// Seed drives every random decision in the scenario.
	Seed int64 `json:"seed"`

	// NodeMTTF is the mean time to failure of each compute node
	// (exponential inter-crash times); 0 disables crashes. A crashed
	// node loses its disk cache and its unfinished tasks, then rejoins
	// empty at the next sub-batch boundary.
	NodeMTTF float64 `json:"node_mttf,omitempty"`
	// PerNodeMTTF optionally overrides NodeMTTF per compute node
	// (index = node; 0 entries fall back to NodeMTTF).
	PerNodeMTTF []float64 `json:"per_node_mttf,omitempty"`

	// LinkFailProb is the probability that any single transfer attempt
	// (remote or replica) fails partway through.
	LinkFailProb float64 `json:"link_fail_prob,omitempty"`

	// StragglerProb is the probability that a task execution is slowed;
	// StragglerFactor is the maximum slowdown multiplier (the factor is
	// drawn uniformly from [1, StragglerFactor]).
	StragglerProb   float64 `json:"straggler_prob,omitempty"`
	StragglerFactor float64 `json:"straggler_factor,omitempty"`

	// MaxTransferRetries bounds the attempts for one file staging
	// within one task commit (default 4). Exhaustion re-queues the
	// task.
	MaxTransferRetries int `json:"max_transfer_retries,omitempty"`
	// TaskRetryBudget bounds how many times one task may be re-queued
	// (crash or staging failure) before it is abandoned as Degraded
	// (default 3).
	TaskRetryBudget int `json:"task_retry_budget,omitempty"`

	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between transfer attempts: attempt a retries no earlier than
	// failure time + min(BackoffCap, BackoffBase·2^(a-1)).
	// Defaults: 0.5 s base, 30 s cap.
	BackoffBase float64 `json:"backoff_base,omitempty"`
	BackoffCap  float64 `json:"backoff_cap,omitempty"`
}

// Enabled reports whether the plan injects any fault at all. Nil and
// zero-valued plans are disabled, which is the runtime's fast path.
func (p *FaultPlan) Enabled() bool {
	if p == nil {
		return false
	}
	if p.NodeMTTF > 0 || p.LinkFailProb > 0 || p.StragglerProb > 0 {
		return true
	}
	for _, m := range p.PerNodeMTTF {
		if m > 0 {
			return true
		}
	}
	return false
}

// WithDefaults returns a copy with the budget/backoff fields filled in
// where unset. The failure-rate fields are never defaulted: absent
// rates mean "this fault does not occur".
func (p FaultPlan) WithDefaults() FaultPlan {
	if p.MaxTransferRetries <= 0 {
		p.MaxTransferRetries = 4
	}
	if p.TaskRetryBudget <= 0 {
		p.TaskRetryBudget = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 0.5
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 30
	}
	if p.StragglerFactor < 1 {
		p.StragglerFactor = 1
	}
	return p
}

// Validate rejects plans outside the model's domain.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	if p.NodeMTTF < 0 {
		return fmt.Errorf("faults: NodeMTTF must be >= 0, got %g", p.NodeMTTF)
	}
	for i, m := range p.PerNodeMTTF {
		if m < 0 {
			return fmt.Errorf("faults: PerNodeMTTF[%d] must be >= 0, got %g", i, m)
		}
	}
	if p.LinkFailProb < 0 || p.LinkFailProb > 1 {
		return fmt.Errorf("faults: LinkFailProb must be in [0,1], got %g", p.LinkFailProb)
	}
	if p.StragglerProb < 0 || p.StragglerProb > 1 {
		return fmt.Errorf("faults: StragglerProb must be in [0,1], got %g", p.StragglerProb)
	}
	if p.StragglerFactor < 0 {
		return fmt.Errorf("faults: StragglerFactor must be >= 0, got %g", p.StragglerFactor)
	}
	for _, x := range []float64{p.NodeMTTF, p.LinkFailProb, p.StragglerProb,
		p.StragglerFactor, p.BackoffBase, p.BackoffCap} {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("faults: plan contains non-finite fields")
		}
	}
	for i, m := range p.PerNodeMTTF {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("faults: PerNodeMTTF[%d] is non-finite", i)
		}
	}
	if p.BackoffBase < 0 || p.BackoffCap < 0 {
		return fmt.Errorf("faults: backoff fields must be >= 0")
	}
	// Negative retry counts have no meaning of their own (WithDefaults
	// treats <= 0 as unset), and permitting them would make Spec()
	// non-canonical: -4 and 0 are the same plan with different specs.
	if p.MaxTransferRetries < 0 || p.TaskRetryBudget < 0 {
		return fmt.Errorf("faults: retry counts must be >= 0")
	}
	return nil
}

// StragglerDist is the marginal distribution of a plan's execution
// slowdown factor: 1 (no slowdown) with probability 1−Prob, otherwise
// uniform on [1, Factor]. Speculation policies derive their watchdog
// thresholds from its quantiles.
type StragglerDist struct {
	Prob   float64
	Factor float64
}

// Quantile returns the q-quantile of the slowdown factor (q clamped
// to [0, 1]). Degenerate distributions (no stragglers, or factor ≤ 1)
// answer 1 for every q. For q above the no-slowdown mass the quantile
// interpolates linearly through the uniform tail:
//
//	Quantile(q) = 1 + (Factor−1) · (q − (1−Prob)) / Prob.
func (d StragglerDist) Quantile(q float64) float64 {
	if d.Prob <= 0 || d.Factor <= 1 {
		return 1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if q <= 1-d.Prob {
		return 1
	}
	return 1 + (d.Factor-1)*(q-(1-d.Prob))/d.Prob
}

// StragglerDist returns the plan's slowdown distribution (zero-valued
// for nil plans).
func (p *FaultPlan) StragglerDist() StragglerDist {
	if p == nil {
		return StragglerDist{}
	}
	return StragglerDist{Prob: p.StragglerProb, Factor: p.StragglerFactor}
}

// Presets returns the names of the built-in scenarios, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// presets are the built-in scenarios of the chaos matrix. "none" is
// the fault-free control; "mild" models an occasional flaky link and
// a rare crash; "harsh" models a cluster losing nodes every few
// thousand simulated seconds with a 10% flaky link.
var presets = map[string]FaultPlan{
	"none": {},
	"mild": {
		NodeMTTF:      50_000,
		LinkFailProb:  0.02,
		StragglerProb: 0.05, StragglerFactor: 2,
	},
	"harsh": {
		NodeMTTF:      4_000,
		LinkFailProb:  0.10,
		StragglerProb: 0.15, StragglerFactor: 4,
	},
}

// Parse builds a FaultPlan from a CLI scenario spec: either a preset
// name ("none", "mild", "harsh"), a comma-separated key=value list
// (seed, mttf, pernode, linkp, stragp, stragf, retries, budget,
// backoff, cap — pernode takes colon-separated per-node MTTFs), or a
// preset followed by overrides ("harsh,seed=7,linkp=0.2").
// The empty string parses to a nil (disabled) plan.
func Parse(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var p FaultPlan
	parts := strings.Split(spec, ",")
	start := 0
	if base, ok := presets[strings.ToLower(parts[0])]; ok {
		p = base
		start = 1
	} else if !strings.Contains(parts[0], "=") {
		return nil, fmt.Errorf("faults: unknown scenario %q (presets: %s, or key=value pairs)",
			parts[0], strings.Join(Presets(), ", "))
	}
	for _, kv := range parts[start:] {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faults: malformed spec entry %q (want key=value)", kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			p.Seed = n
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("faults: bad retries %q: %v", val, err)
			}
			p.MaxTransferRetries = n
		case "budget":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("faults: bad budget %q: %v", val, err)
			}
			p.TaskRetryBudget = n
		case "pernode":
			var ms []float64
			for _, part := range strings.Split(val, ":") {
				m, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
				if err != nil {
					return nil, fmt.Errorf("faults: bad pernode entry %q: %v", part, err)
				}
				ms = append(ms, m)
			}
			p.PerNodeMTTF = ms
		case "mttf", "linkp", "stragp", "stragf", "backoff", "cap":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s %q: %v", key, val, err)
			}
			switch key {
			case "mttf":
				p.NodeMTTF = f
			case "linkp":
				p.LinkFailProb = f
			case "stragp":
				p.StragglerProb = f
			case "stragf":
				p.StragglerFactor = f
			case "backoff":
				p.BackoffBase = f
			case "cap":
				p.BackoffCap = f
			}
		default:
			return nil, fmt.Errorf("faults: unknown spec key %q (want seed, mttf, pernode, linkp, stragp, stragf, retries, budget, backoff, cap)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Spec renders the plan as its canonical spec string: Parse(p.Spec())
// yields a plan identical to p for every enabled plan (disabled plans
// render as "none", which parses to nil — behaviorally the same
// injector). Each non-zero field is emitted independently: the old
// String dropped StragglerFactor whenever StragglerProb was zero and
// always dropped the backoff shape, so round-tripping a partially-set
// plan silently changed it.
func (p *FaultPlan) Spec() string {
	if !p.Enabled() {
		return "none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	if p.NodeMTTF > 0 {
		fmt.Fprintf(&b, ",mttf=%g", p.NodeMTTF)
	}
	if len(p.PerNodeMTTF) > 0 {
		b.WriteString(",pernode=")
		for i, m := range p.PerNodeMTTF {
			if i > 0 {
				b.WriteByte(':')
			}
			fmt.Fprintf(&b, "%g", m)
		}
	}
	if p.LinkFailProb > 0 {
		fmt.Fprintf(&b, ",linkp=%g", p.LinkFailProb)
	}
	if p.StragglerProb > 0 {
		fmt.Fprintf(&b, ",stragp=%g", p.StragglerProb)
	}
	if p.StragglerFactor > 0 {
		fmt.Fprintf(&b, ",stragf=%g", p.StragglerFactor)
	}
	if p.MaxTransferRetries > 0 {
		fmt.Fprintf(&b, ",retries=%d", p.MaxTransferRetries)
	}
	if p.TaskRetryBudget > 0 {
		fmt.Fprintf(&b, ",budget=%d", p.TaskRetryBudget)
	}
	if p.BackoffBase > 0 {
		fmt.Fprintf(&b, ",backoff=%g", p.BackoffBase)
	}
	if p.BackoffCap > 0 {
		fmt.Fprintf(&b, ",cap=%g", p.BackoffCap)
	}
	return b.String()
}

// String renders the plan as a spec string Parse accepts.
func (p *FaultPlan) String() string { return p.Spec() }
