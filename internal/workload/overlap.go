package workload

import (
	"math/rand"

	"repro/internal/batch"
)

// overlapGenerator produces task file sets with a target shared-access
// fraction from an ordered pool of files (ordered so that nearby pool
// indices are spatially/temporally adjacent).
//
// The pool is divided into `groups` disjoint hot-spot regions
// (mirroring the paper's 4 disjoint SAT query sets: "across the sets,
// there was no overlap between the queries"). Within a group, every
// task takes the group's core window (sharedFrac × filesPerTask
// contiguous files at the region anchor) and fills the remainder with
// files sampled from the region's neighborhood, so the achieved
// within-group overlap tracks sharedFrac.
type overlapGenerator struct {
	rng          *rand.Rand
	pool         []batch.FileID
	groups       int
	filesPerTask int
	sharedFrac   float64
}

// taskFileSets generates file sets for n tasks, assigning tasks to
// hot-spot groups round-robin. Within a group, tasks are overlapping
// sliding windows over the region's (locality-ordered) files — the
// shape of spatio-temporal window queries aimed at the same hot spot:
// consecutive queries share most of their files, but the group as a
// whole spans more data than any single query, so no clean
// task-partition exists and schedulers must reason about affinity.
//
// The window stride is (1−sharedFrac)·filesPerTask, which makes the
// achieved shared-access fraction track sharedFrac. Low-overlap
// workloads (sharedFrac < 0.3) drop the hot spots entirely — windows
// stride across the whole dataset, leaving only incidental sharing
// (the minimum the dataset size permits; see EXPERIMENTS.md on how
// this access-level metric maps to the paper's pairwise one).
func (g *overlapGenerator) taskFileSets(n int) [][]batch.FileID {
	groups := g.groups
	if g.sharedFrac < 0.3 {
		// Low overlap means no hot spots at all: queries stride over
		// the whole dataset, so sharing is incidental.
		groups = 1
	}
	regionLen := len(g.pool) / groups
	span := regionLen - g.filesPerTask
	if span < 1 {
		span = 1
	}
	step := int(float64(g.filesPerTask)*(1-g.sharedFrac) + 0.5)
	if step < 1 && g.sharedFrac < 0.999 {
		step = 1
	}
	// Each group anchors at a random offset inside its region (a hot
	// spot is not necessarily the region's first file): without this,
	// IMAGE groups would always start at a patient's first study and
	// never touch the rest, collapsing the per-group working set.
	offset := make([]int, groups)
	for gi := range offset {
		offset[gi] = g.rng.Intn(regionLen)
	}
	perGroup := make([]int, groups)
	sets := make([][]batch.FileID, n)
	for ti := 0; ti < n; ti++ {
		grp := ti % groups
		base := grp * regionLen
		start := offset[grp] + (perGroup[grp]*step)%span
		perGroup[grp]++
		fs := make([]batch.FileID, 0, g.filesPerTask)
		for o := 0; o < g.filesPerTask && o < regionLen; o++ {
			fs = append(fs, g.pool[base+(start+o)%regionLen])
		}
		sets[ti] = fs
	}
	return sets
}

// compact rebuilds a batch keeping only the files some task actually
// accesses (emulated datasets are much larger than any one batch's
// working set; schedulers and disk accounting must only ever see the
// accessed files).
func compact(b *batch.Batch) (*batch.Batch, error) {
	used := make([]bool, b.NumFiles())
	for ti := range b.Tasks {
		for _, f := range b.Tasks[ti].Files {
			used[f] = true
		}
	}
	nb := batch.New()
	remap := make([]batch.FileID, b.NumFiles())
	for fi := range b.Files {
		if !used[fi] {
			continue
		}
		f := &b.Files[fi]
		remap[fi] = nb.AddFile(f.Name, f.Size, f.Home)
	}
	for ti := range b.Tasks {
		t := &b.Tasks[ti]
		fs := make([]batch.FileID, len(t.Files))
		for i, f := range t.Files {
			fs[i] = remap[f]
		}
		nb.AddTask(t.Name, t.Compute, fs)
	}
	if err := nb.Finalize(); err != nil {
		return nil, err
	}
	return nb, nil
}

// Random generates a fully random batch for tests: numTasks tasks each
// accessing filesPerTask files drawn uniformly from numFiles files of
// the given size, homes round-robin across numStorage nodes.
func Random(seed int64, numTasks, numFiles, filesPerTask, numStorage int, fileSize int64, computeFactor float64) *batch.Batch {
	rng := rand.New(rand.NewSource(seed))
	b := batch.New()
	for f := 0; f < numFiles; f++ {
		b.AddFile("", fileSize, f%numStorage)
	}
	if filesPerTask > numFiles {
		filesPerTask = numFiles
	}
	for t := 0; t < numTasks; t++ {
		perm := rng.Perm(numFiles)[:filesPerTask]
		fs := make([]batch.FileID, filesPerTask)
		var bytes int64
		for i, p := range perm {
			fs[i] = batch.FileID(p)
			bytes += fileSize
		}
		b.AddTask("", computeFactor*float64(bytes), fs)
	}
	if err := b.Finalize(); err != nil {
		panic(err)
	}
	return b
}
