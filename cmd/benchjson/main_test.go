package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkSchedulers/IP-8   1   123456789 ns/op   2048 B/op   17 allocs/op   2.950 makespan_s")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if e.Name != "BenchmarkSchedulers/IP-8" || e.Iterations != 1 {
		t.Fatalf("got %+v", e)
	}
	want := map[string]float64{"ns/op": 123456789, "B/op": 2048, "allocs/op": 17, "makespan_s": 2.95}
	for k, v := range want {
		if e.Metrics[k] != v {
			t.Errorf("metric %s = %g, want %g", k, e.Metrics[k], v)
		}
	}
}

func TestParseSkipsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"PASS",
		"ok  \trepro\t1.234s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}

func TestParseEchoes(t *testing.T) {
	in := "goos: linux\nBenchmarkX-4 2 50 ns/op\nPASS\n"
	var out strings.Builder
	entries, env, err := parse(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != in {
		t.Errorf("echo mismatch:\n%q\nwant\n%q", out.String(), in)
	}
	if len(entries) != 1 || entries[0].Name != "BenchmarkX-4" || entries[0].Metrics["ns/op"] != 50 {
		t.Fatalf("entries = %+v", entries)
	}
	if env["goos"] != "linux" {
		t.Fatalf("env = %v, want goos captured", env)
	}
}

// TestNameParams: key=value sub-benchmark segments and the GOMAXPROCS
// suffix become queryable params; plain names carry none.
func TestNameParams(t *testing.T) {
	e, ok := parseLine("BenchmarkSchedulers/IP/tasks=100-8   1   123 ns/op   17 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if e.Params["tasks"] != "100" || e.Params["gomaxprocs"] != "8" {
		t.Fatalf("params = %v", e.Params)
	}
	if e.Metrics["allocs/op"] != 17 {
		t.Fatalf("metrics = %v", e.Metrics)
	}

	if p := nameParams("BenchmarkWorkloadGeneration"); p != nil {
		t.Fatalf("plain name params = %v, want nil", p)
	}
	if p := nameParams("BenchmarkMIPSolve/workers=2-16"); p["workers"] != "2" || p["gomaxprocs"] != "16" {
		t.Fatalf("params = %v", p)
	}
}
