package shard

import (
	"bytes"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/obs/journal"
	"repro/internal/platform"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/workload"
)

// multiComponentBatch builds `groups` independent file-sharing
// clusters: tasks within a group share that group's files, and no file
// crosses groups, so the sharding layer must find exactly `groups`
// components.
func multiComponentBatch(groups, tasksPer, sharedPer int) *batch.Batch {
	b := batch.New()
	for g := 0; g < groups; g++ {
		shared := make([]batch.FileID, sharedPer)
		for i := range shared {
			shared[i] = b.AddFile("", int64(8+g)*platform.MB, g%2)
		}
		for t := 0; t < tasksPer; t++ {
			priv := b.AddFile("", 4*platform.MB, g%2)
			files := append([]batch.FileID{priv}, shared[t%sharedPer], shared[(t+1)%sharedPer])
			b.AddTask("", 0.5+0.1*float64(t), files)
		}
	}
	return b
}

func TestComponentsSplit(t *testing.T) {
	b := multiComponentBatch(5, 6, 3)
	comps := components(b, b.AllTasks())
	if len(comps) != 5 {
		t.Fatalf("got %d components, want 5", len(comps))
	}
	seen := map[batch.TaskID]bool{}
	for ci, comp := range comps {
		for i, k := range comp {
			if seen[k] {
				t.Fatalf("task %d appears in two components", k)
			}
			seen[k] = true
			if i > 0 && comp[i-1] >= k {
				t.Fatalf("component %d not in ascending task order", ci)
			}
		}
		if ci > 0 && comps[ci-1][0] >= comp[0] {
			t.Fatal("components not ordered by smallest member")
		}
	}
	if len(seen) != b.NumTasks() {
		t.Fatalf("components cover %d of %d tasks", len(seen), b.NumTasks())
	}
}

// runSharded executes a full pipeline under the sharded scheduler and
// returns the journal bytes and result.
func runSharded(t *testing.T, inner core.Scheduler, workers int, b *batch.Batch, disk int64) ([]byte, *core.Result) {
	t.Helper()
	p := &core.Problem{Batch: b, Platform: platform.XIO(6, 2, disk)}
	rec := journal.New()
	res, err := core.RunWith(p, New(inner, workers), core.RunOptions{Checked: true, Obs: core.Observer{Journal: rec}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestWorkerInvariance is the tentpole determinism contract: journal
// bytes and results must be identical at any worker count, because
// per-component journals merge in component-index order.
func TestWorkerInvariance(t *testing.T) {
	b := multiComponentBatch(7, 5, 2)
	for _, inner := range []core.Scheduler{minmin.New(), jdp.New()} {
		refJ, refR := runSharded(t, inner, 1, b, 0)
		for _, w := range []int{2, 4, 8} {
			gotJ, gotR := runSharded(t, inner, w, b, 0)
			if !bytes.Equal(refJ, gotJ) {
				t.Fatalf("%s: journal bytes differ between workers=1 and workers=%d", inner.Name(), w)
			}
			if refR.Makespan != gotR.Makespan || refR.SubBatches != gotR.SubBatches {
				t.Fatalf("%s: results differ between workers=1 and workers=%d", inner.Name(), w)
			}
		}
	}
}

// TestShardCoversAllTasks checks the merged plan executes the whole
// batch under unlimited disk (Checked mode validates the schedule).
func TestShardCoversAllTasks(t *testing.T) {
	b := multiComponentBatch(4, 8, 3)
	_, res := runSharded(t, minmin.New(), 4, b, 0)
	if res.TaskCount != b.NumTasks() {
		t.Fatalf("ran %d of %d tasks", res.TaskCount, b.NumTasks())
	}
	if res.SubBatches != 1 {
		t.Fatalf("unlimited disk should need 1 sub-batch, got %d", res.SubBatches)
	}
}

// TestShardFallsBackUnderDiskPressure pins the delegation rule: when
// the problem is disk-limited, sharded planning must be byte-identical
// to the inner scheduler alone (the wrapper steps aside entirely).
func TestShardFallsBackUnderDiskPressure(t *testing.T) {
	b := workload.Random(3, 40, 30, 4, 2, 12*platform.MB, platform.PaperComputeFactor)
	disk := int64(90) * platform.MB
	shardJ, shardR := runSharded(t, minmin.New(), 4, b, disk)

	p := &core.Problem{Batch: b, Platform: platform.XIO(6, 2, disk)}
	rec := journal.New()
	res, err := core.RunWith(p, minmin.New(), core.RunOptions{Checked: true, Obs: core.Observer{Journal: rec}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// The wrapper contributes only its name to run/plan metadata; after
	// normalizing it, every decision byte must match.
	norm := bytes.ReplaceAll(shardJ, []byte(`"MinMin+shard"`), []byte(`"MinMin"`))
	if !bytes.Equal(norm, buf.Bytes()) {
		t.Fatal("disk-limited sharded run is not byte-identical to the inner scheduler")
	}
	if shardR.Makespan != res.Makespan {
		t.Fatal("disk-limited sharded makespan differs from inner scheduler")
	}
}
