package batch

import (
	"fmt"
	"sort"
)

// Merged is a batch whose files have been collapsed into equivalence
// classes: two files are equivalent when they are required by exactly
// the same set of tasks. Equivalent files are interchangeable in the
// paper's 0-1 IP formulations — every feasible solution assigns them
// identical X/Y/R patterns in some optimal solution — so they can be
// merged into one "super-file" whose size is the sum of the class,
// shrinking the variable and constraint counts dramatically on
// high-overlap workloads.
//
// A super-file inherits the storage Home of its first member; the
// expansion step (Expand) restores per-member homes for the runtime
// stage, which is what actually moves bytes.
type Merged struct {
	// B is the reduced batch (same tasks, merged files).
	B *Batch
	// Members[f] lists the original FileIDs folded into reduced file f.
	Members [][]FileID
	// Orig maps each original file to its reduced file.
	Orig []FileID
}

// MergeEquivalentFiles builds the file equivalence-class reduction of b.
// Tasks keep their IDs, computes, and names; each task's file list is
// rewritten in terms of the reduced files.
func MergeEquivalentFiles(b *Batch) (*Merged, error) {
	if err := b.Finalize(); err != nil {
		return nil, err
	}
	type class struct {
		id      FileID
		members []FileID
		size    int64
	}
	classes := make(map[string]*class)
	order := make([]*class, 0)
	orig := make([]FileID, len(b.Files))
	for fi := range b.Files {
		f := FileID(fi)
		key := requireKey(b.Require(f))
		c, ok := classes[key]
		if !ok {
			c = &class{id: FileID(len(order))}
			classes[key] = c
			order = append(order, c)
		}
		c.members = append(c.members, f)
		c.size += b.Files[fi].Size
		orig[fi] = c.id
	}

	rb := New()
	for _, c := range order {
		first := b.Files[c.members[0]]
		name := first.Name
		if len(c.members) > 1 {
			name = fmt.Sprintf("class(%s+%d)", first.Name, len(c.members)-1)
		}
		rb.AddFile(name, c.size, first.Home)
	}
	for ti := range b.Tasks {
		t := &b.Tasks[ti]
		seen := make(map[FileID]bool)
		var fs []FileID
		for _, f := range t.Files {
			rf := orig[f]
			if !seen[rf] {
				seen[rf] = true
				fs = append(fs, rf)
			}
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
		rb.AddTask(t.Name, t.Compute, fs)
	}
	if err := rb.Finalize(); err != nil {
		return nil, err
	}
	m := &Merged{B: rb, Orig: orig}
	m.Members = make([][]FileID, len(order))
	for i, c := range order {
		m.Members[i] = c.members
	}
	return m, nil
}

// Expand translates a set of reduced files back to original files.
func (m *Merged) Expand(fs []FileID) []FileID {
	var out []FileID
	for _, f := range fs {
		out = append(out, m.Members[f]...)
	}
	return out
}

func requireKey(ts []TaskID) string {
	// Require lists are built in ascending task order by Finalize, so
	// the raw byte encoding is canonical.
	buf := make([]byte, 0, len(ts)*4)
	for _, t := range ts {
		buf = append(buf, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
	}
	return string(buf)
}

// SubBatch returns a new batch containing only the given tasks (IDs are
// renumbered densely) and only the files they access. The returned
// mapping slices translate new IDs back to the originals.
func SubBatch(b *Batch, ts []TaskID) (sub *Batch, taskOrig []TaskID, fileOrig []FileID) {
	sub = New()
	fileNew := make(map[FileID]FileID)
	for _, t := range ts {
		for _, f := range b.Tasks[t].Files {
			if _, ok := fileNew[f]; !ok {
				nf := sub.AddFile(b.Files[f].Name, b.Files[f].Size, b.Files[f].Home)
				fileNew[f] = nf
				fileOrig = append(fileOrig, f)
			}
		}
	}
	for _, t := range ts {
		tk := &b.Tasks[t]
		fs := make([]FileID, len(tk.Files))
		for i, f := range tk.Files {
			fs[i] = fileNew[f]
		}
		sub.AddTask(tk.Name, tk.Compute, fs)
		taskOrig = append(taskOrig, t)
	}
	if err := sub.Finalize(); err != nil {
		panic(err) // b was already validated; sub-batch cannot be invalid
	}
	return sub, taskOrig, fileOrig
}
