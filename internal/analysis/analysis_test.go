package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the expect.txt golden files")

// loadFixture type-checks one fixture package under testdata/src and
// runs a single check on it, returning the findings formatted exactly
// as the golden files store them (basename:line:col: check: msg).
func loadFixture(t *testing.T, name string, cfg Config) []string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir("fixture/"+name, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s holds no package", name)
	}
	findings := Run([]*Package{pkg}, cfg)
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = fmt.Sprintf("%s:%d:%d: %s: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
	}
	return out
}

// TestGolden runs each check against its fixture package — which holds
// true positives, every documented sound exemption, and a suppressed
// case — and compares the findings line-for-line with expect.txt.
// Regenerate with: go test ./internal/analysis -run TestGolden -update
func TestGolden(t *testing.T) {
	for _, check := range CheckNames() {
		t.Run(check, func(t *testing.T) {
			got := loadFixture(t, check, Config{
				Checks:             []string{check},
				DeterministicPaths: []string{"fixture/" + check},
			})
			golden := filepath.Join("testdata", "src", check, "expect.txt")
			if *update {
				data := strings.Join(got, "\n")
				if len(got) > 0 {
					data += "\n"
				}
				if err := os.WriteFile(golden, []byte(data), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			raw, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			var want []string
			for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
				if line != "" {
					want = append(want, line)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("finding count mismatch: got %d, want %d\ngot:\n  %s\nwant:\n  %s",
					len(got), len(want), strings.Join(got, "\n  "), strings.Join(want, "\n  "))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("finding %d:\n  got:  %s\n  want: %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestDeterministicScoping proves the package-scoping rules: the three
// deterministicOnly checks stay silent outside the configured paths,
// while mergeorder fires everywhere.
func TestDeterministicScoping(t *testing.T) {
	// Same fixtures, but the deterministic set names some other path.
	for _, check := range []string{"detrange", "nowallclock", "floataccum"} {
		got := loadFixture(t, check, Config{
			Checks:             []string{check},
			DeterministicPaths: []string{"fixture/elsewhere"},
		})
		if len(got) != 0 {
			t.Errorf("%s fired outside deterministic paths:\n  %s", check, strings.Join(got, "\n  "))
		}
	}
	got := loadFixture(t, "mergeorder", Config{
		Checks:             []string{"mergeorder"},
		DeterministicPaths: []string{"fixture/elsewhere"},
	})
	if len(got) == 0 {
		t.Error("mergeorder must fire regardless of deterministic-path scoping")
	}
}

// TestAllSuppression proves the "all" wildcard: a fixture loaded with
// every check enabled reports nothing on lines carrying an allow-all
// annotation.
func TestAllSuppression(t *testing.T) {
	got := loadFixture(t, "allow_all", Config{
		DeterministicPaths: []string{"fixture/allow_all"},
	})
	if len(got) != 0 {
		t.Errorf("schedlint:allow all left findings:\n  %s", strings.Join(got, "\n  "))
	}
}

// TestTracePurityObsExempt proves internal/obs is the designated clock
// boundary: the fixture that yields findings under any other import
// path yields none when loaded as the obs package itself.
func TestTracePurityObsExempt(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("repro/internal/obs", filepath.Join("testdata", "src", "tracepurity"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, Config{Checks: []string{"tracepurity"}})
	for _, f := range findings {
		t.Errorf("tracepurity fired inside the obs package: %s", f)
	}
}

// TestRepoIsClean is the acceptance gate behind `make lint`: the
// analyzer, in strict mode with the default configuration, reports
// zero findings on the repository itself — no rule violations, and
// every remaining allow annotation both names a real check and
// suppresses something.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages")
	}
	findings := Run(pkgs, Config{Strict: true})
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestOrderTaintCatchesWhatDetrangeMisses pins the motivating gap: on
// the ordertaint fixture — whose bugs hide the map iteration behind a
// function boundary, a channel, or the RNG — the per-line detrange
// pattern match reports nothing, while the interprocedural taint check
// reports every one (the golden file holds the exact findings).
func TestOrderTaintCatchesWhatDetrangeMisses(t *testing.T) {
	cfg := Config{
		Checks:             []string{"detrange"},
		DeterministicPaths: []string{"fixture/ordertaint"},
	}
	if got := loadFixture(t, "ordertaint", cfg); len(got) != 0 {
		t.Errorf("detrange unexpectedly fired on the cross-function fixture:\n  %s", strings.Join(got, "\n  "))
	}
	cfg.Checks = []string{"ordertaint"}
	if got := loadFixture(t, "ordertaint", cfg); len(got) == 0 {
		t.Error("ordertaint reported nothing on its own fixture")
	}
}

// TestStrictHygiene audits the suppression annotations themselves: a
// used block-comment allow passes silently, a stale allow and a typo'd
// check name are each reported once, and the typo'd annotation fails
// to suppress the finding beneath it.
func TestStrictHygiene(t *testing.T) {
	got := loadFixture(t, "stricthygiene", Config{
		Checks:             []string{"detrange"},
		DeterministicPaths: []string{"fixture/stricthygiene"},
		Strict:             true,
	})
	count := map[string]int{}
	for _, line := range got {
		for _, check := range []string{"allowstale", "allowunknown", "detrange"} {
			if strings.Contains(line, " "+check+": ") {
				count[check]++
			}
		}
	}
	if len(got) != 3 || count["allowstale"] != 1 || count["allowunknown"] != 1 || count["detrange"] != 1 {
		t.Errorf("want exactly one allowstale, one allowunknown, one detrange; got:\n  %s",
			strings.Join(got, "\n  "))
	}
	for _, line := range got {
		if strings.Contains(line, ":13:") || strings.Contains(line, ":12:") {
			t.Errorf("the used block-comment allow leaked a finding: %s", line)
		}
	}
}
