package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// ganttGlyphs maps event categories to the fill character used in the
// ASCII Gantt; unknown categories render as '*'.
var ganttGlyphs = map[string]byte{
	"exec":     '#', // task execution
	"remote":   '=', // remote (wide-area) transfer
	"replica":  '~', // intra-cluster replica transfer
	"prestage": '+', // pre-staged transfer
	"fault":    'x', // preempted/burned reservation (failed transfer, killed task)
	"batch":    'B',
}

// WriteASCIIGantt renders the simulated-time (DomainSim) events as one
// text row per track, scaled to width columns, for terminal
// inspection without leaving the shell. Real-time events are ignored:
// they live on a different clock and belong in the Chrome trace.
func (t *Trace) WriteASCIIGantt(w io.Writer, width int) error {
	if width < 20 {
		width = 20
	}
	t.mu.Lock()
	events := make([]event, 0, len(t.events))
	for _, ev := range t.events {
		if ev.domain == DomainSim && ev.phase == 'X' {
			events = append(events, ev)
		}
	}
	names := make(map[int]string, len(t.names[DomainSim]))
	for k, v := range t.names[DomainSim] {
		names[k] = v
	}
	t.mu.Unlock()

	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(no simulated-time events recorded)")
		return err
	}

	var horizon float64
	tracks := map[int][]event{}
	for _, ev := range events {
		tracks[ev.tid] = append(tracks[ev.tid], ev)
		if end := ev.ts + ev.dur; end > horizon {
			horizon = end
		}
	}
	if horizon <= 0 {
		horizon = 1
	}

	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	labelW := 0
	for _, tid := range tids {
		if n := len(trackLabel(names, tid)); n > labelW {
			labelW = n
		}
	}

	scale := float64(width) / horizon
	for _, tid := range tids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		evs := tracks[tid]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })
		for _, ev := range evs {
			glyph, ok := ganttGlyphs[ev.cat]
			if !ok {
				glyph = '*'
			}
			from := int(ev.ts * scale)
			to := int((ev.ts + ev.dur) * scale)
			if to <= from {
				to = from + 1 // even instant-short reservations get one cell
			}
			for i := from; i < to && i < width; i++ {
				row[i] = glyph
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelW, trackLabel(names, tid), row); err != nil {
			return err
		}
	}
	endLabel := fmt.Sprintf("%.1fs", horizon/1e6)
	pad := width - len(endLabel) - 2
	if pad < 0 {
		pad = 0
	}
	_, err := fmt.Fprintf(w, "%-*s  0s%s%s  (# exec, = remote, ~ replica, + prestage, x fault)\n",
		labelW, "", strings.Repeat(" ", pad), endLabel)
	return err
}

func trackLabel(names map[int]string, tid int) string {
	if n, ok := names[tid]; ok {
		return n
	}
	return fmt.Sprintf("track %d", tid)
}
