package explain_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs/explain"
	"repro/internal/obs/journal"
	"repro/internal/platform"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/workload"
)

// recoveryJournal runs a seeded crash-recovery scenario (the same
// shape as the recorded crash_recovery fixture: mid-batch crash,
// empty reboot, replica re-staging) with a journal attached and
// returns both.
func recoveryJournal(t *testing.T, s core.Scheduler) (*explain.Journal, *core.Result) {
	t.Helper()
	b, err := workload.Sat(workload.SatConfig{NumTasks: 24, Overlap: workload.HighOverlap, NumStorage: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{Batch: b, Platform: platform.XIO(3, 2, 0)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	base, err := core.Run(p, s)
	if err != nil {
		t.Fatal(err)
	}
	rec := journal.New()
	res, err := core.RunWith(p, s, core.RunOptions{
		Checked: true,
		Faults:  &faults.FaultPlan{Seed: 2, NodeMTTF: base.Makespan / 2, LinkFailProb: 0.2, TaskRetryBudget: 50},
		Obs:     core.Observer{Journal: rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 || res.TransferFailures == 0 {
		t.Fatalf("scenario injected no faults (crashes %d, failures %d)", res.Crashes, res.TransferFailures)
	}
	return explain.FromEvents(rec.Events()), res
}

// TestPlacementAnswersEveryTask is the acceptance criterion: the
// placement query must produce a decision record — with at least one
// placement and, for completed tasks, an execution — for every task
// of the crash-recovery run.
func TestPlacementAnswersEveryTask(t *testing.T) {
	j, res := recoveryJournal(t, minmin.New())
	tasks := j.Tasks()
	if len(tasks) != res.TaskCount {
		t.Fatalf("journal mentions %d tasks, run had %d", len(tasks), res.TaskCount)
	}
	for _, task := range tasks {
		p := j.Placement(task)
		if p == nil {
			t.Fatalf("task %d: no placement record", task)
		}
		if len(p.Places) == 0 {
			t.Errorf("task %d: no placement decisions", task)
		}
		for _, ev := range p.Places {
			if ev.Place.Policy == "" || ev.Place.Reason == "" {
				t.Errorf("task %d: placement missing policy/reason: %+v", task, ev.Place)
			}
		}
		if res.Status == core.StatusComplete && len(p.Execs) == 0 {
			t.Errorf("task %d: complete run but no execution recorded", task)
		}
		if txt := p.Text(); txt == "" {
			t.Errorf("task %d: empty text rendering", task)
		}
	}
}

// TestFileHistoryAnswersReplicationAndEviction checks the file query
// over a run with daemon replication (JDP) and LRU eviction under
// limited disk.
func TestFileHistoryAnswersReplicationAndEviction(t *testing.T) {
	b, err := workload.Sat(workload.SatConfig{NumTasks: 30, Overlap: workload.HighOverlap, NumStorage: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	total := b.TotalUniqueBytes(nil)
	p := &core.Problem{Batch: b, Platform: platform.XIO(3, 2, total/4)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rec := journal.New()
	if _, err := core.RunWith(p, jdp.New(), core.RunOptions{Checked: true, Obs: core.Observer{Journal: rec}}); err != nil {
		t.Fatal(err)
	}
	j := explain.FromEvents(rec.Events())
	var sawEvict, sawReplicate bool
	for _, f := range j.Files() {
		h := j.FileHistory(f, -1)
		if h == nil {
			t.Fatalf("file %d listed but has no history", f)
		}
		for _, ev := range h.Events {
			if ev.Evict != nil {
				sawEvict = true
				// The per-node query must find the same eviction.
				hn := j.FileHistory(f, ev.Evict.Node)
				if hn == nil {
					t.Fatalf("file %d: node-scoped history lost the eviction on node %d", f, ev.Evict.Node)
				}
			}
			if ev.Replicate != nil {
				sawReplicate = true
			}
		}
		if txt := h.Text(); txt == "" {
			t.Errorf("file %d: empty text rendering", f)
		}
	}
	if !sawEvict {
		t.Error("limited-disk run journaled no evictions")
	}
	if !sawReplicate {
		t.Error("JDP run journaled no daemon replication decisions")
	}
}

// TestCriticalPath checks the walk-back: the chain must end at the
// makespan, be chronologically ordered, contiguous, and start with a
// step that has no binding predecessor.
func TestCriticalPath(t *testing.T) {
	j, res := recoveryJournal(t, minmin.New())
	cp := j.CriticalPath()
	if cp == nil || len(cp.Steps) == 0 {
		t.Fatal("no critical path")
	}
	if math.Abs(cp.Makespan-res.Makespan) > 1e-6 {
		t.Fatalf("critical path makespan %g, run makespan %g", cp.Makespan, res.Makespan)
	}
	endOf := func(s explain.PathStep) float64 {
		if s.Event.Exec != nil {
			return s.Event.Exec.End
		}
		return s.Event.Stage.End
	}
	startOf := func(s explain.PathStep) float64 {
		if s.Event.Exec != nil {
			return s.Event.Exec.Start
		}
		return s.Event.Stage.Start
	}
	last := cp.Steps[len(cp.Steps)-1]
	if math.Abs(endOf(last)-cp.Makespan) > 1e-6 {
		t.Fatalf("last step ends at %g, not the makespan %g", endOf(last), cp.Makespan)
	}
	if cp.Steps[0].Why != "" {
		t.Errorf("first step carries a predecessor rationale: %q", cp.Steps[0].Why)
	}
	for i := 1; i < len(cp.Steps); i++ {
		if cp.Steps[i].Why == "" {
			t.Errorf("step %d has no binding rationale", i)
		}
		if gap := startOf(cp.Steps[i]) - endOf(cp.Steps[i-1]); math.Abs(gap) > 1e-6 {
			t.Errorf("step %d not contiguous with predecessor (gap %g)", i, gap)
		}
	}
	if txt := cp.Text(); txt == "" {
		t.Error("empty text rendering")
	}
}
