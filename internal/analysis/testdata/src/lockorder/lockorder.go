// Package lockorder is a schedlint golden-test fixture: each function
// participates in a lock-acquisition cycle the check must flag, or in
// one of the clean orderings it must stay silent on. Line numbers are
// pinned by expect.txt.
package lockorder

import "sync"

// server carries two locks with no global acquisition order.
type server struct {
	a sync.Mutex
	b sync.Mutex
}

// abPath locks a then b; together with baPath this is the classic ABBA
// cycle. One finding at the inner acquisition.
func (s *server) abPath() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	s.b.Unlock()
}

// baPath locks b then a — the reverse order. One finding.
func (s *server) baPath() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	s.a.Unlock()
}

// goodSequential releases a before taking b: nothing is held at the
// second acquisition — no edge, no finding.
func (s *server) goodSequential() {
	s.a.Lock()
	s.a.Unlock()
	s.b.Lock()
	s.b.Unlock()
}

// pool and stats form a cycle through a call: drain holds pool.mu and
// calls bump, which acquires stats.mu; flush holds stats.mu and
// acquires pool.mu directly.
type pool struct {
	mu sync.Mutex
	st *stats
}

type stats struct {
	mu sync.Mutex
}

// drain inherits bump's acquisition while holding pool.mu. One finding
// at the call site.
func (p *pool) drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.st.bump()
}

func (s *stats) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// flush closes the cycle in the reverse direction. One finding.
func (s *stats) flush(p *pool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}

// registry reproduces the Metrics.Merge hazard: both instances' locks
// held in argument order.
type registry struct {
	mu   sync.Mutex
	vals map[string]int
}

// badMerge self-edges registry.mu: concurrent a.badMerge(b) and
// b.badMerge(a) deadlock. One finding.
func (r *registry) badMerge(o *registry) {
	o.mu.Lock()
	defer o.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range o.vals {
		r.vals[k] = v
	}
}

// goodMerge snapshots under o's lock, releases it, then folds under
// r's lock: the two instances are never held together — no finding.
func (r *registry) goodMerge(o *registry) {
	o.mu.Lock()
	snap := make(map[string]int, len(o.vals))
	for k, v := range o.vals {
		snap[k] = v
	}
	o.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range snap {
		r.vals[k] = v
	}
}

// queue always takes head before tail: a one-way edge is not a cycle —
// no finding.
type queue struct {
	head sync.Mutex
	tail sync.Mutex
}

func (q *queue) push() {
	q.head.Lock()
	defer q.head.Unlock()
	q.tail.Lock()
	defer q.tail.Unlock()
}

func (q *queue) pop() {
	q.head.Lock()
	defer q.head.Unlock()
	q.tail.Lock()
	q.tail.Unlock()
}

// cache documents an intentional nested same-class acquisition: the
// allow sits on the inner Lock, next to the ordering argument — no
// finding.
type cache struct {
	mu sync.Mutex
}

func (c *cache) adopt(o *cache) {
	o.mu.Lock()
	defer o.mu.Unlock()
	//schedlint:allow lockorder fixture: callers order instances by id before nesting
	c.mu.Lock()
	defer c.mu.Unlock()
}
