// Package hilbert implements the 2-D Hilbert space-filling curve used
// to decluster satellite data chunks across storage nodes, following
// the Faloutsos-Roseman secondary-key-retrieval scheme the paper cites
// for its SAT dataset distribution.
package hilbert

// D2XY converts a distance d along the Hilbert curve of order
// log2(n) (n a power of two) to (x, y) coordinates in the n×n grid.
func D2XY(n int, d int) (x, y int) {
	rx, ry := 0, 0
	t := d
	for s := 1; s < n; s *= 2 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		x, y = rot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// XY2D converts (x, y) coordinates in the n×n grid (n a power of two)
// to the distance along the Hilbert curve.
func XY2D(n int, x, y int) int {
	d := 0
	for s := n / 2; s > 0; s /= 2 {
		rx, ry := 0, 0
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		x, y = rot(n, x, y, rx, ry)
	}
	return d
}

// rot rotates/flips a quadrant appropriately.
func rot(n, x, y, rx, ry int) (int, int) {
	if ry == 0 {
		if rx == 1 {
			x = n - 1 - x
			y = n - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// Decluster assigns each cell of a w×h grid to one of numNodes storage
// nodes by walking the Hilbert curve of the smallest enclosing
// power-of-two square and dealing cells round-robin in curve order.
// Spatially adjacent cells therefore land on different nodes, which is
// the property the Hilbert declustering method is used for: a
// spatio-temporal window query touches many storage nodes at once,
// spreading I/O load.
func Decluster(w, h, numNodes int) [][]int {
	n := 1
	for n < w || n < h {
		n *= 2
	}
	assign := make([][]int, h)
	for y := range assign {
		assign[y] = make([]int, w)
	}
	idx := 0
	for d := 0; d < n*n; d++ {
		x, y := D2XY(n, d)
		if x < w && y < h {
			assign[y][x] = idx % numNodes
			idx++
		}
	}
	return assign
}
