// Package jdp implements the paper's second baseline: a batch-mode
// variant of Ranganathan and Foster's decoupled scheme, combining the
// Job Data Present scheduling policy with the Data Least Loaded
// replication heuristic (§3).
//
// Scheduling (Job Data Present, batch-adapted): tasks are taken in
// order of least expected earliest completion time (the paper's
// adaptation — a plain FIFO is meaningless when the whole batch
// arrives at once) and each is assigned to the node expected to stage
// its data cheapest — the node holding the largest fraction of its
// input bytes; ties go to the least-loaded node.
//
// Replication (Data Least Loaded, decoupled): the daemon tracks file
// popularity (pending accesses); when a file's popularity exceeds a
// threshold, a replica is pushed to the least-loaded compute node.
// These replicas are expressed as PreStage operations, executed by the
// runtime stage before task-driven staging.
//
// Eviction is LRU, as the paper specifies for this baseline.
//
// Two implementations share this file. The reference (Naive: true)
// evaluates the copy-location scan from scratch on every staging-cost
// probe, making it O(T·C²·F). The default replaces that scan with a
// first-holder index maintained at every holds-matrix write — exact,
// because holds are never cleared within a plan, so the minimum holder
// index can only decrease, matching the ascending scan's answer — and
// precomputes per-task input bytes. Both paths perform the identical
// float operations in the identical order; the equivalence test pins
// their journals byte-for-byte.
package jdp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/eviction"
	"repro/internal/obs/journal"
)

// Scheduler is the JobDataPresent + DataLeastLoaded baseline.
type Scheduler struct {
	// PopularityThreshold is the pending-access count beyond which the
	// replication daemon copies a file (default 3).
	PopularityThreshold int
	// MaxReplicasPerRound caps daemon replications per sub-batch so
	// pre-staging cannot flood the cluster (default 8).
	MaxReplicasPerRound int
	// Naive selects the reference O(T·C²·F) implementation; the
	// equivalence tests pin the indexed path against it byte-for-byte.
	Naive bool
}

// New returns a JDP scheduler with the default daemon settings.
func New() *Scheduler { return &Scheduler{PopularityThreshold: 3, MaxReplicasPerRound: 8} }

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return "JobDataPresent" }

// Evict implements core.Scheduler with LRU, per the paper.
func (s *Scheduler) Evict(st *core.State, pending []batch.TaskID) {
	eviction.LRU(st, pending)
}

// PlanSubBatch implements core.Scheduler.
func (s *Scheduler) PlanSubBatch(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	if s.Naive {
		return s.planNaive(st, pending)
	}
	return s.planIndexed(st, pending)
}

// planNaive is the reference implementation, kept verbatim as the
// equivalence baseline for the first-holder index.
func (s *Scheduler) planNaive(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	p := st.P
	b := p.Batch
	C := p.Platform.NumCompute()

	holds := st.PresentMatrix()
	free := make([]int64, C)
	load := make([]float64, C)
	for i := 0; i < C; i++ {
		free[i] = st.Free(i)
	}
	bwRemote := make([]float64, C)
	for i := 0; i < C; i++ {
		bw := math.Inf(1)
		for sn := range p.Platform.Storage {
			bw = math.Min(bw, p.Platform.RemoteBW(sn, i))
		}
		bwRemote[i] = bw
	}
	bwReplica := p.Platform.MinReplicaBW()

	// stageCost estimates the data transfer time for task k on node i
	// plus the new bytes the node must hold.
	anyCopy := func(f batch.FileID) int {
		for i := 0; i < C; i++ {
			if holds[i][f] {
				return i
			}
		}
		return -1
	}
	stageCost := func(k batch.TaskID, i int) (float64, int64) {
		cost := 0.0
		var extra int64
		for _, f := range b.Tasks[k].Files {
			if holds[i][f] {
				continue
			}
			size := b.FileSize(f)
			extra += size
			if src := anyCopy(f); src >= 0 && !p.DisableReplication {
				cost += float64(size) / bwReplica
			} else {
				cost += float64(size) / bwRemote[i]
			}
		}
		return cost, extra
	}
	execTime := func(k batch.TaskID, i int) float64 {
		return float64(b.TaskBytes(k))/p.Platform.Compute[i].LocalReadBW + b.Tasks[k].Compute
	}

	// Order tasks once by their static least expected completion time
	// (the paper's batch adaptation of the FIFO queue).
	order := append([]batch.TaskID(nil), pending...)
	key := make(map[batch.TaskID]float64, len(order))
	for _, k := range order {
		best := math.Inf(1)
		for i := 0; i < C; i++ {
			c, _ := stageCost(k, i)
			if v := c + execTime(k, i); v < best {
				best = v
			}
		}
		key[k] = best
	}
	sort.Slice(order, func(a, z int) bool {
		if key[order[a]] != key[order[z]] {
			return key[order[a]] < key[order[z]]
		}
		return order[a] < order[z]
	})

	plan := &core.SubPlan{Node: make(map[batch.TaskID]int)}

	// Data Least Loaded daemon: replicate popular files before
	// assignment. Load is still zero here, so "least loaded" means the
	// emptiest disk at this point; popularity counts pending accesses.
	replicas := 0
	if !p.DisableReplication && s.MaxReplicasPerRound > 0 {
		type pop struct {
			f batch.FileID
			n int
		}
		var pops []pop
		for f := 0; f < b.NumFiles(); f++ {
			fid := batch.FileID(f)
			if n := st.AccessFreq(fid); n > s.PopularityThreshold {
				pops = append(pops, pop{fid, n})
			}
		}
		sort.Slice(pops, func(a, z int) bool {
			if pops[a].n != pops[z].n {
				return pops[a].n > pops[z].n
			}
			return pops[a].f < pops[z].f
		})
		for _, pe := range pops {
			if replicas >= s.MaxReplicasPerRound {
				break
			}
			// Least-loaded node not yet holding the file, with space.
			dest := -1
			for i := 0; i < C; i++ {
				if holds[i][pe.f] || free[i] < b.FileSize(pe.f) {
					continue
				}
				if dest < 0 || free[i] > free[dest] {
					dest = i
				}
			}
			if dest < 0 {
				continue
			}
			op := core.Staging{File: pe.f, Dest: dest, Kind: core.Remote}
			if src := anyCopy(pe.f); src >= 0 {
				op.Kind = core.Replica
				op.Src = src
			}
			plan.PreStage = append(plan.PreStage, op)
			if st.J.Enabled() {
				src := -1
				if op.Kind == core.Replica {
					src = op.Src
				}
				st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindReplicate, Round: st.JRound,
					Replicate: &journal.Replicate{File: int(pe.f), Dest: dest, Src: src,
						Policy: "data-least-loaded", Popularity: pe.n, Threshold: s.PopularityThreshold,
						Reason: "pending accesses exceed threshold; replica pushed to emptiest eligible disk"}})
			}
			holds[dest][pe.f] = true
			free[dest] -= b.FileSize(pe.f)
			replicas++
		}
	}

	for _, k := range order {
		// Job Data Present: choose the node with the cheapest expected
		// staging; ties go to the least loaded.
		best, bestCost, bestLoad := -1, math.Inf(1), math.Inf(1)
		var cands []journal.Candidate
		if st.J.Enabled() {
			cands = make([]journal.Candidate, 0, C)
		}
		for i := 0; i < C; i++ {
			c, extra := stageCost(k, i)
			if cands != nil {
				cands = append(cands, journal.Candidate{Node: i, Score: c, Fits: extra <= free[i]})
			}
			if extra > free[i] {
				continue
			}
			if c < bestCost-1e-12 || (c < bestCost+1e-12 && load[i] < bestLoad) {
				best, bestCost, bestLoad = i, c, load[i]
			}
		}
		if best < 0 {
			continue // does not fit this round; later sub-batch
		}
		plan.Tasks = append(plan.Tasks, k)
		plan.Node[k] = best
		if st.J.Enabled() {
			st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindPlace, Round: st.JRound,
				Place: &journal.Place{Task: int(k), Node: best, Policy: "jdp-data-present",
					Score: bestCost, Candidates: cands,
					Reason: "cheapest expected staging cost (most input bytes present); ties to least-loaded node"}})
		}
		_, extra := stageCost(k, best)
		free[best] -= extra
		load[best] += bestCost + execTime(k, best)
		for _, f := range b.Tasks[k].Files {
			holds[best][f] = true
		}
	}
	if len(plan.Tasks) == 0 {
		return nil, fmt.Errorf("jdp: no pending task fits any node (pending %d)", len(pending))
	}
	return plan, nil
}

// planIndexed is the production implementation: identical decision
// sequence and float arithmetic to planNaive, with the O(C) copy scan
// replaced by a first-holder index and per-task bytes precomputed.
func (s *Scheduler) planIndexed(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	p := st.P
	b := p.Batch
	C := p.Platform.NumCompute()
	F := b.NumFiles()

	holds := st.PresentMatrix()
	free := make([]int64, C)
	load := make([]float64, C)
	for i := 0; i < C; i++ {
		free[i] = st.Free(i)
	}
	bwRemote := make([]float64, C)
	for i := 0; i < C; i++ {
		bw := math.Inf(1)
		for sn := range p.Platform.Storage {
			bw = math.Min(bw, p.Platform.RemoteBW(sn, i))
		}
		bwRemote[i] = bw
	}
	bwReplica := p.Platform.MinReplicaBW()

	// firstHolder[f] is the least node index holding f, or -1. Holds
	// are never cleared inside a plan, so every write is holds[x][f] =
	// true and the minimum can only decrease: maintaining it at each
	// write reproduces the ascending anyCopy scan exactly.
	firstHolder := make([]int32, F)
	for f := range firstHolder {
		firstHolder[f] = -1
	}
	for i := C - 1; i >= 0; i-- {
		row := holds[i]
		for f := 0; f < F; f++ {
			if row[f] {
				firstHolder[f] = int32(i)
			}
		}
	}
	setHold := func(i int, f batch.FileID) {
		holds[i][f] = true
		if firstHolder[f] < 0 || int32(i) < firstHolder[f] {
			firstHolder[f] = int32(i)
		}
	}

	stageCost := func(k batch.TaskID, i int) (float64, int64) {
		cost := 0.0
		var extra int64
		for _, f := range b.Tasks[k].Files {
			if holds[i][f] {
				continue
			}
			size := b.FileSize(f)
			extra += size
			if firstHolder[f] >= 0 && !p.DisableReplication {
				cost += float64(size) / bwReplica
			} else {
				cost += float64(size) / bwRemote[i]
			}
		}
		return cost, extra
	}
	taskBytes := make([]int64, len(b.Tasks))
	for k := range b.Tasks {
		taskBytes[k] = b.TaskBytes(batch.TaskID(k))
	}
	execTime := func(k batch.TaskID, i int) float64 {
		return float64(taskBytes[k])/p.Platform.Compute[i].LocalReadBW + b.Tasks[k].Compute
	}

	// Order tasks once by their static least expected completion time;
	// the key lives in a slice (task IDs index the batch) rather than a
	// map so the sort comparator stays allocation- and hash-free.
	order := append([]batch.TaskID(nil), pending...)
	key := make([]float64, len(b.Tasks))
	for _, k := range order {
		best := math.Inf(1)
		for i := 0; i < C; i++ {
			c, _ := stageCost(k, i)
			if v := c + execTime(k, i); v < best {
				best = v
			}
		}
		key[k] = best
	}
	sort.Slice(order, func(a, z int) bool {
		if key[order[a]] != key[order[z]] {
			return key[order[a]] < key[order[z]]
		}
		return order[a] < order[z]
	})

	plan := &core.SubPlan{Node: make(map[batch.TaskID]int)}

	replicas := 0
	if !p.DisableReplication && s.MaxReplicasPerRound > 0 {
		type pop struct {
			f batch.FileID
			n int
		}
		var pops []pop
		for f := 0; f < F; f++ {
			fid := batch.FileID(f)
			if n := st.AccessFreq(fid); n > s.PopularityThreshold {
				pops = append(pops, pop{fid, n})
			}
		}
		sort.Slice(pops, func(a, z int) bool {
			if pops[a].n != pops[z].n {
				return pops[a].n > pops[z].n
			}
			return pops[a].f < pops[z].f
		})
		for _, pe := range pops {
			if replicas >= s.MaxReplicasPerRound {
				break
			}
			dest := -1
			for i := 0; i < C; i++ {
				if holds[i][pe.f] || free[i] < b.FileSize(pe.f) {
					continue
				}
				if dest < 0 || free[i] > free[dest] {
					dest = i
				}
			}
			if dest < 0 {
				continue
			}
			op := core.Staging{File: pe.f, Dest: dest, Kind: core.Remote}
			if src := firstHolder[pe.f]; src >= 0 {
				op.Kind = core.Replica
				op.Src = int(src)
			}
			plan.PreStage = append(plan.PreStage, op)
			if st.J.Enabled() {
				src := -1
				if op.Kind == core.Replica {
					src = op.Src
				}
				st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindReplicate, Round: st.JRound,
					Replicate: &journal.Replicate{File: int(pe.f), Dest: dest, Src: src,
						Policy: "data-least-loaded", Popularity: pe.n, Threshold: s.PopularityThreshold,
						Reason: "pending accesses exceed threshold; replica pushed to emptiest eligible disk"}})
			}
			setHold(dest, pe.f)
			free[dest] -= b.FileSize(pe.f)
			replicas++
		}
	}

	for _, k := range order {
		best, bestCost, bestLoad := -1, math.Inf(1), math.Inf(1)
		var bestExtra int64
		var cands []journal.Candidate
		if st.J.Enabled() {
			cands = make([]journal.Candidate, 0, C)
		}
		for i := 0; i < C; i++ {
			c, extra := stageCost(k, i)
			if cands != nil {
				cands = append(cands, journal.Candidate{Node: i, Score: c, Fits: extra <= free[i]})
			}
			if extra > free[i] {
				continue
			}
			if c < bestCost-1e-12 || (c < bestCost+1e-12 && load[i] < bestLoad) {
				best, bestCost, bestLoad, bestExtra = i, c, load[i], extra
			}
		}
		if best < 0 {
			continue // does not fit this round; later sub-batch
		}
		plan.Tasks = append(plan.Tasks, k)
		plan.Node[k] = best
		if st.J.Enabled() {
			st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindPlace, Round: st.JRound,
				Place: &journal.Place{Task: int(k), Node: best, Policy: "jdp-data-present",
					Score: bestCost, Candidates: cands,
					Reason: "cheapest expected staging cost (most input bytes present); ties to least-loaded node"}})
		}
		// bestExtra was computed on the state the decision saw; holds
		// have not changed since, so it equals stageCost(k, best)'s
		// extra (the bytes are an exact integer sum either way).
		free[best] -= bestExtra
		load[best] += bestCost + execTime(k, best)
		for _, f := range b.Tasks[k].Files {
			setHold(best, f)
		}
	}
	if len(plan.Tasks) == 0 {
		return nil, fmt.Errorf("jdp: no pending task fits any node (pending %d)", len(pending))
	}
	return plan, nil
}
