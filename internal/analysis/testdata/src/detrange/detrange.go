// Package detrange is a schedlint golden-test fixture: each function
// is either a true positive for the detrange check or one of its
// documented sound exemptions. Line numbers are pinned by expect.txt.
package detrange

import "sort"

// badUnsortedKeys collects keys out of a map range without sorting —
// the canonical order-dependent bug. One finding.
func badUnsortedKeys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// badStringConcat builds a string in map order. One finding.
func badStringConcat(m map[int]string) string {
	s := ""
	for _, v := range m {
		s += v
	}
	return s
}

// goodCollectThenSort appends keys then sorts before use — exempt.
func goodCollectThenSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// goodIntAccum sums integers: commutative, order-independent — exempt.
func goodIntAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodConstantInsert builds a set with constant values — exempt.
func goodConstantInsert(m map[int][]int) map[int]bool {
	set := map[int]bool{}
	for k := range m {
		set[k] = true
	}
	return set
}

// goodDelete removes entries from the ranged map itself — exempt.
func goodDelete(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// badCrashTimesByMapOrder collects per-node crash times out of a map
// in iteration order — a fault plan built this way would replay
// differently run to run. One finding.
func badCrashTimesByMapOrder(mttf map[int]float64) []float64 {
	var times []float64
	for _, m := range mttf {
		times = append(times, m)
	}
	return times
}

// goodCrashTimesSortedNodes walks node ids in sorted order before
// deriving anything from them — the fault-injector idiom, exempt.
func goodCrashTimesSortedNodes(mttf map[int]float64) []float64 {
	var nodes []int
	for n := range mttf {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	times := make([]float64, 0, len(nodes))
	for _, n := range nodes {
		times = append(times, mttf[n])
	}
	return times
}

// suppressedWrite carries an allow annotation — no finding.
func suppressedWrite(m map[int]int) []int {
	var out []int
	//schedlint:allow detrange fixture: order genuinely irrelevant here
	for k := range m {
		out = append(out, k)
	}
	return out
}
