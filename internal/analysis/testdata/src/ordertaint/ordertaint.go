// Package ordertaint is a schedlint golden-test fixture: each function
// is either a true positive for the interprocedural order-taint check
// or one of its documented sound exemptions. Line numbers are pinned
// by expect.txt.
package ordertaint

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
)

// placer mimics the bisection state: part is a slice indexed by vertex
// id, so a store at an order-tainted index is committed schedule state.
type placer struct {
	part []int
}

// firstKey returns some key of m — which one depends on randomized map
// iteration order. detrange stays silent here (nothing is written to
// outer state); only the taint summary records the order-dependent
// result.
func firstKey(m map[int]float64) int {
	for k := range m {
		return k
	}
	return -1
}

// badCrossFunction commits the helper's order-dependent pick into the
// partition — the cross-function growInitial bug. One finding.
func (p *placer) badCrossFunction(gain map[int]float64) {
	v := firstKey(gain)
	if v >= 0 {
		p.part[v] = 1
	}
}

// badChannelOrder commits whichever worker finished first: receive
// completion order is scheduler-controlled. One finding.
func badChannelOrder(p *placer, done chan int) {
	v := <-done
	p.part[v] = 1
}

// badSelectOrder commits the winner of a select race. One finding per
// arm's store.
func badSelectOrder(p *placer, a, b chan int) {
	select {
	case v := <-a:
		p.part[v] = 1
	case v := <-b:
		p.part[v] = 2
	}
}

// badGlobalRand indexes committed state with the process-global RNG.
// One finding.
func badGlobalRand(p *placer) {
	p.part[rand.Intn(len(p.part))] = 1
}

// registry stores whatever it is handed into shared state; its taint
// summary marks it as committing its arguments.
type registry struct {
	order []int
}

func (g *registry) record(v int) {
	g.order = append(g.order, v)
}

// badForward hands an order-tainted key to record, which commits it —
// the interprocedural commit sink. One finding.
func badForward(g *registry, m map[int]bool) {
	for k := range m {
		g.record(k)
	}
}

// badEmit writes map-ordered pairs to a stream: encoded output is
// observable nondeterminism even without a store. One finding.
func badEmit(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v)
	}
}

// goodSortedKeys drains the map in sorted order: the sanitizer clears
// the taint before anything is committed — exempt.
func (p *placer) goodSortedKeys(gain map[int]float64) {
	var keys []int
	for k := range gain {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		p.part[k] = 1
	}
}

// goodSeededRand draws from an explicitly seeded generator threaded in
// as a parameter: deterministic for a fixed seed — exempt.
func (p *placer) goodSeededRand(r *rand.Rand) {
	p.part[r.Intn(len(p.part))] = 1
}

// suppressedPick carries the allow at the source; every sink derived
// from it inherits the justification — no finding.
func (p *placer) suppressedPick(gain map[int]float64) {
	best := -1
	//schedlint:allow detrange,ordertaint fixture: argmin with total-order tie-break is iteration-order independent
	for k := range gain {
		if best < 0 || k < best {
			best = k
		}
	}
	if best >= 0 {
		p.part[best] = 1
	}
}
