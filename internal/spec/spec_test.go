package spec

import (
	"math"
	"testing"

	"repro/internal/faults"
)

// harshDist mirrors the harsh preset's straggler marginal: 15 % of
// executions slowed by a factor drawn uniformly from (1, 4].
var harshDist = faults.StragglerDist{Prob: 0.15, Factor: 4}

func TestActive(t *testing.T) {
	var nilPol *Policy
	if nilPol.Active() {
		t.Fatal("nil policy reports Active")
	}
	if (&Policy{}).Active() {
		t.Fatal("zero-value (Never) policy reports Active")
	}
	if !(&Policy{Kind: FixedFactor}).Active() || !(&Policy{Kind: SingleFork}).Active() {
		t.Fatal("FixedFactor/SingleFork policies report inactive")
	}
}

func TestThreshold(t *testing.T) {
	const base = 10.0
	cases := []struct {
		name string
		pol  *Policy
		dist faults.StragglerDist
		want float64
	}{
		{"nil never fires", nil, harshDist, math.Inf(1)},
		{"Never never fires", &Policy{Kind: Never}, harshDist, math.Inf(1)},
		{"fixed-factor multiplies base", &Policy{Kind: FixedFactor, Factor: 3}, harshDist, 3 * base},
		{"fixed-factor default 2", &Policy{Kind: FixedFactor}, harshDist, 2 * base},
		{"fixed-factor rejects <=1", &Policy{Kind: FixedFactor, Factor: 0.5}, harshDist, 2 * base},
		// harsh Quantile(0.925) = 1 + 3·(0.925−0.85)/0.15 = 2.5.
		{"single-fork at the straggler quantile", &Policy{Kind: SingleFork, Quantile: 0.925}, harshDist, 2.5 * base},
		// harsh Quantile(0.9) = 1 + 3·(0.05)/0.15 = 2.
		{"single-fork default q=0.9", &Policy{Kind: SingleFork}, harshDist, 2 * base},
		{"single-fork out-of-range q falls back", &Policy{Kind: SingleFork, Quantile: 1.5}, harshDist, 2 * base},
		// Quantile at or below the non-straggler mass answers 1: the
		// threshold would equal baseDur, so the policy never forks.
		{"single-fork below straggler mass never fires", &Policy{Kind: SingleFork, Quantile: 0.5}, harshDist, math.Inf(1)},
		{"single-fork degenerate dist never fires", &Policy{Kind: SingleFork, Quantile: 0.95}, faults.StragglerDist{}, math.Inf(1)},
	}
	for _, c := range cases {
		got := c.pol.Threshold(base, c.dist)
		if math.IsInf(c.want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("%s: Threshold = %g, want +Inf", c.name, got)
			}
		} else if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Threshold = %g, want %g", c.name, got, c.want)
		}
	}
	// A threshold is elapsed time, so a non-positive base duration can
	// never be exceeded meaningfully.
	if got := (&Policy{Kind: FixedFactor}).Threshold(0, harshDist); !math.IsInf(got, 1) {
		t.Errorf("Threshold(0) = %g, want +Inf", got)
	}
	// The watchdog threshold is never below the fault-free duration.
	for q := 0.05; q < 1; q += 0.05 {
		p := &Policy{Kind: SingleFork, Quantile: q}
		if thr := p.Threshold(base, harshDist); thr < base {
			t.Errorf("quantile %g: threshold %g below base duration %g", q, thr, base)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want *Policy
	}{
		{"", nil},
		{"never", nil},
		{"none", nil},
		{"  Never ", nil},
		{"fixed-factor", &Policy{Kind: FixedFactor, Factor: 2}},
		{"fixedfactor:3.5", &Policy{Kind: FixedFactor, Factor: 3.5}},
		{"single-fork", &Policy{Kind: SingleFork, Quantile: 0.9}},
		{"single-fork:0.855", &Policy{Kind: SingleFork, Quantile: 0.855}},
		{"singlefork:0.5", &Policy{Kind: SingleFork, Quantile: 0.5}},
		{"single-fork-at-t*", &Policy{Kind: SingleFork, Quantile: 0.9}},
		{"SINGLE-FORK:0.75", &Policy{Kind: SingleFork, Quantile: 0.75}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if (got == nil) != (c.want == nil) || (got != nil && *got != *c.want) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
			continue
		}
		// String renders a spec Parse accepts, and parsing it again is
		// a fixed point.
		rt, err := Parse(got.String())
		if err != nil {
			t.Errorf("Parse(String(%q)): %v", c.in, err)
			continue
		}
		if (rt == nil) != (got == nil) || (rt != nil && *rt != *got) {
			t.Errorf("round trip of %q: %+v -> %q -> %+v", c.in, got, got.String(), rt)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"always",
		"fixed-factor:1",   // threshold multiple must exceed 1
		"fixed-factor:0.9", // ditto
		"fixed-factor:nan",
		"fixed-factor:+inf",
		"fixed-factor:x",
		"single-fork:0", // quantile must be interior
		"single-fork:1",
		"single-fork:-0.2",
		"single-fork:nan",
		"single-fork:",
		"lateness:2",
	} {
		if p, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", in, p)
		}
	}
}

func TestStringNormalizesDegenerates(t *testing.T) {
	// Out-of-range fields render as the defaults Threshold would use,
	// so String never emits a spec that Parse rejects.
	cases := []struct {
		pol  *Policy
		want string
	}{
		{nil, "never"},
		{&Policy{}, "never"},
		{&Policy{Kind: FixedFactor, Factor: 0.5}, "fixed-factor:2"},
		{&Policy{Kind: SingleFork, Quantile: -3}, "single-fork:0.9"},
		{&Policy{Kind: SingleFork, Quantile: 0.855}, "single-fork:0.855"},
		{&Policy{Kind: Kind(99)}, "never"},
	}
	for _, c := range cases {
		if got := c.pol.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.pol, got, c.want)
		}
		if _, err := Parse(c.pol.String()); err != nil {
			t.Errorf("Parse(String(%+v)): %v", c.pol, err)
		}
	}
}
