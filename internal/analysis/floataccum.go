package analysis

import (
	"go/ast"
	"go/token"
)

// runFloatAccum flags `x += v` (and `x -= v`) on floating-point
// accumulators inside a map-range body. Float addition is not
// associative, so even a pure reduction — which detrange would treat
// like any other outer write — produces different low-order bits under
// different iteration orders, breaking byte-identical output across
// runs and worker counts. Accumulate over sorted keys instead, or keep
// exact sums in integers.
func runFloatAccum(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.typeOf(rs.X)) {
				return true
			}
			ast.Inspect(rs.Body, func(inner ast.Node) bool {
				st, ok := inner.(*ast.AssignStmt)
				if !ok || (st.Tok != token.ADD_ASSIGN && st.Tok != token.SUB_ASSIGN) {
					return true
				}
				for _, lhs := range st.Lhs {
					if !isFloatType(p.typeOf(lhs)) {
						continue
					}
					root := rootIdent(lhs)
					if root == nil {
						continue
					}
					if obj := p.objectOf(root); obj != nil && !declaredWithin(obj, rs.Pos(), rs.End()) {
						p.reportf(st.Pos(), "float accumulation into %s in map-iteration order: rounding depends on the randomized order — accumulate over sorted keys", root.Name)
					}
				}
				return true
			})
			return true
		})
	}
}
