// Satellite data processing: the paper's SAT scenario. Scientists
// fire spatio-temporal window queries at hot-spot regions of a
// Hilbert-declustered remote-sensing dataset; queries aimed at the
// same hot spot share most of their chunk files. The example runs the
// same batch under all four schedulers on the OSUMED-class platform
// (slow shared storage link) and shows why affinity-aware scheduling
// wins.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
	"repro/internal/sched/ipsched"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/workload"
)

func main() {
	b, err := workload.Sat(workload.SatConfig{
		NumTasks:   48,
		Overlap:    workload.HighOverlap,
		NumStorage: 4,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := b.ComputeStats()
	fmt.Printf("SAT batch: %d window queries over %d chunk files (%.1f GB unique, %.0f%% shared accesses)\n\n",
		stats.NumTasks, stats.NumFiles, float64(stats.TotalBytes)/float64(platform.GB), stats.Overlap*100)

	pf := func() *platform.Platform { return platform.OSUMED(6, 4, 0) }

	ip := ipsched.New(11)
	ip.AllocBudget = 10 * time.Second
	schedulers := []core.Scheduler{ip, bipart.New(11), minmin.New(), jdp.New()}

	fmt.Printf("%-16s %14s %14s %10s %10s\n", "scheduler", "batch time (s)", "sched time", "remote", "replicas")
	for _, s := range schedulers {
		res, err := core.Run(&core.Problem{Batch: b, Platform: pf()}, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %14.1f %14s %10d %10d\n",
			res.Scheduler, res.Makespan, res.SchedulingTime.Round(time.Millisecond),
			res.RemoteTransfers, res.ReplicaTransfers)
	}
	fmt.Println("\nThe affinity-aware schedulers cluster queries that share chunks, so each chunk")
	fmt.Println("crosses the slow shared storage link once; MinMin re-stages shared chunks on")
	fmt.Println("whichever node looks fastest and pays for every duplicate on the 100 Mbps link.")
}
