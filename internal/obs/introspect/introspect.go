// Package introspect is the live introspection plane: an opt-in HTTP
// server exposing the observability sinks of a running experiment —
// /metrics (Prometheus text format over the obs.Metrics registry),
// /events (the decision journal as a server-sent-event stream),
// /journal (the journal so far as JSONL), /gantt (the ASCII schedule
// renderer) and the standard pprof mux.
//
// This package is the deliberate boundary where real wall-clock time,
// goroutines and network I/O are allowed: everything it serves is
// read-only over sinks the deterministic pipeline writes, so the
// schedule can never depend on it. It sits outside the lint engine's
// deterministic paths for exactly that reason.
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// Options selects the sinks the server exposes; nil fields disable
// their endpoints (404).
type Options struct {
	Metrics *obs.Metrics
	Journal *journal.Recorder
	Trace   *obs.Trace
	// GanttWidth is the column budget of /gantt (default 120).
	GanttWidth int
}

// Server is the introspection HTTP handler set.
type Server struct {
	opt Options
	mux *http.ServeMux
	bus *bus
}

// New builds a server over the given sinks. When a journal is present
// its tap is claimed to feed /events subscribers; the tap only moves
// events into bounded per-subscriber buffers (dropping on overflow),
// honouring the Recorder's fast/non-blocking tap contract.
func New(opt Options) *Server {
	if opt.GanttWidth <= 0 {
		opt.GanttWidth = 120
	}
	s := &Server{opt: opt, mux: http.NewServeMux(), bus: newBus()}
	if opt.Journal.Enabled() {
		opt.Journal.SetTap(s.bus.publish)
	}
	s.mux.HandleFunc("/", s.index)
	s.mux.HandleFunc("/metrics", s.metrics)
	s.mux.HandleFunc("/events", s.events)
	s.mux.HandleFunc("/journal", s.journal)
	s.mux.HandleFunc("/gantt", s.gantt)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the root HTTP handler (also useful under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves until the listener fails. It
// returns the bound address (useful with ":0") through the callback
// before blocking.
func (s *Server) ListenAndServe(addr string, bound func(net.Addr)) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("introspect: %w", err)
	}
	if bound != nil {
		bound(l.Addr())
	}
	return http.Serve(l, s.mux)
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "batch-scheduler introspection endpoints:")
	fmt.Fprintln(w, "  /metrics       Prometheus text format")
	fmt.Fprintln(w, "  /events        decision journal as server-sent events")
	fmt.Fprintln(w, "  /journal       decision journal so far, JSONL")
	fmt.Fprintln(w, "  /gantt         ASCII Gantt of the simulated schedule")
	fmt.Fprintln(w, "  /debug/pprof/  Go profiling")
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	if s.opt.Metrics == nil {
		http.Error(w, "no metrics registry attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.opt.Metrics.Snapshot().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) journal(w http.ResponseWriter, r *http.Request) {
	if !s.opt.Journal.Enabled() {
		http.Error(w, "no journal attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := s.opt.Journal.WriteJSONL(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) gantt(w http.ResponseWriter, r *http.Request) {
	if s.opt.Trace == nil {
		http.Error(w, "no tracer attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.opt.Trace.WriteASCIIGantt(w, s.opt.GanttWidth); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// events streams the journal as server-sent events: first a replay of
// everything recorded so far, then live events as they are emitted.
// The subscriber's buffer is bounded; a client too slow to drain it
// loses events and learns how many through a "dropped" comment line.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	if !s.opt.Journal.Enabled() {
		http.Error(w, "no journal attached", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	// Subscribe before replaying so no event can fall between the
	// replay snapshot and the live stream; the overlap (events emitted
	// between Events() and subscribe registration being visible in
	// both) is resolved by skipping duplicates via Seq.
	sub, cancel := s.bus.subscribe()
	defer cancel()
	lastSeq := -1
	for _, ev := range s.opt.Journal.Events() {
		if !writeSSE(w, ev) {
			return
		}
		lastSeq = ev.Seq
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.ch:
			if !ok {
				return
			}
			if ev.Seq <= lastSeq {
				continue
			}
			if d := sub.takeDropped(); d > 0 {
				fmt.Fprintf(w, ": dropped %d events (slow consumer)\n\n", d)
			}
			if !writeSSE(w, ev) {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE emits one journal event as an SSE frame; false on a dead
// client connection.
func writeSSE(w http.ResponseWriter, ev journal.Event) bool {
	line, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, line)
	return err == nil
}

// bus fans journal events out to subscribers through bounded buffers.
// publish is called from the Recorder's tap — under the Recorder's
// lock — so it must never block: a full subscriber buffer drops the
// event and counts the loss instead.
type bus struct {
	mu   sync.Mutex
	subs map[*subscriber]struct{}
}

// subBuffer is each subscriber's channel capacity. A full buffer
// drops events rather than stalling the pipeline.
const subBuffer = 1024

type subscriber struct {
	ch chan journal.Event

	mu      sync.Mutex
	dropped int64
}

func newBus() *bus {
	return &bus{subs: map[*subscriber]struct{}{}}
}

// publish hands ev to every subscriber without blocking.
func (b *bus) publish(ev journal.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.mu.Lock()
			s.dropped++
			s.mu.Unlock()
		}
	}
}

// subscribe registers a new bounded-buffer subscriber; cancel
// unregisters it and closes its channel.
func (b *bus) subscribe() (*subscriber, func()) {
	s := &subscriber{ch: make(chan journal.Event, subBuffer)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s, func() {
		b.mu.Lock()
		delete(b.subs, s)
		b.mu.Unlock()
		close(s.ch)
	}
}

// takeDropped returns and resets the subscriber's lost-event count.
func (s *subscriber) takeDropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dropped
	s.dropped = 0
	return d
}
