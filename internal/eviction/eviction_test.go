package eviction

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/platform"
)

// setup builds a 2-node cluster with 1000-byte disks and a batch of
// three files (sizes 100/200/300) and three tasks.
func setup(t *testing.T) (*core.State, *batch.Batch) {
	t.Helper()
	b := batch.New()
	f0 := b.AddFile("f0", 100, 0)
	f1 := b.AddFile("f1", 200, 0)
	f2 := b.AddFile("f2", 300, 0)
	b.AddTask("t0", 1, []batch.FileID{f0})
	b.AddTask("t1", 1, []batch.FileID{f1})
	b.AddTask("t2", 1, []batch.FileID{f2})
	p := &core.Problem{Batch: b, Platform: platform.Uniform(2, 1, 1000, 100, 1000)}
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	return st, b
}

func TestPopularityPrefersUnneededFiles(t *testing.T) {
	st, _ := setup(t)
	// Node 0 holds f0 (needed by pending t0) and f2 (t2 done → freq 0).
	if err := st.AddFile(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.AddFile(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	st.Done[2] = true
	// Force eviction down to keep=0: everything must go, lowest
	// popularity (f2, freq 0) first.
	PopularityKeep(st, []batch.TaskID{0, 1}, 0)
	if st.Holds(0, 2) {
		t.Error("f2 (unneeded) should be evicted first")
	}
}

func TestPopularityKeepsBudget(t *testing.T) {
	st, _ := setup(t)
	for f := batch.FileID(0); f < 3; f++ {
		if err := st.AddFile(0, f, float64(f)); err != nil {
			t.Fatal(err)
		}
	}
	// keep 50% of 1000 → at most 500 bytes retained.
	PopularityKeep(st, []batch.TaskID{0, 1, 2}, 0.5)
	if st.Used(0) > 500 {
		t.Fatalf("used %d > 500 after eviction", st.Used(0))
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestPopularityGuaranteesRoomForLargestTask(t *testing.T) {
	st, b := setup(t)
	for f := batch.FileID(0); f < 3; f++ {
		if err := st.AddFile(0, f, float64(f)); err != nil {
			t.Fatal(err)
		}
	}
	// Even with keep=1.0 (retain everything) the minimum-free
	// guarantee must carve out space for the largest pending task.
	PopularityKeep(st, b.AllTasks(), 1.0)
	if st.Free(0) < 300 {
		t.Fatalf("free %d < largest task (300)", st.Free(0))
	}
}

func TestLRUEvictsOldestFirst(t *testing.T) {
	st, _ := setup(t)
	if err := st.AddFile(0, 0, 10); err != nil { // f0 used at t=10
		t.Fatal(err)
	}
	if err := st.AddFile(0, 1, 5); err != nil { // f1 used at t=5 (older)
		t.Fatal(err)
	}
	LRUKeep(st, []batch.TaskID{0, 1, 2}, 0.25) // budget 250 → evict until ≤250
	if st.Holds(0, 1) {
		t.Error("older f1 should be evicted before newer f0")
	}
	if !st.Holds(0, 0) {
		t.Error("newer f0 (100 B ≤ 250 budget) should survive")
	}
}

func TestUnlimitedDisksUntouched(t *testing.T) {
	b := batch.New()
	f0 := b.AddFile("f0", 100, 0)
	b.AddTask("t0", 1, []batch.FileID{f0})
	p := &core.Problem{Batch: b, Platform: platform.Uniform(1, 1, 0, 100, 1000)}
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddFile(0, f0, 1); err != nil {
		t.Fatal(err)
	}
	Popularity(st, b.AllTasks())
	LRU(st, b.AllTasks())
	if !st.Holds(0, f0) {
		t.Fatal("eviction ran on an unlimited disk")
	}
}

func TestEvictAll(t *testing.T) {
	st, _ := setup(t)
	if err := st.AddFile(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.AddFile(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	EvictAll(st)
	if st.Used(0) != 0 || st.Used(1) != 0 {
		t.Fatal("EvictAll left data behind")
	}
}
