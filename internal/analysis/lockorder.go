package analysis

import (
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
)

// runLockOrder extracts the module's lock-acquisition graph and flags
// cycles — the deadlock class `go test -race` cannot see, because a
// race-free ABBA deadlock only manifests when two goroutines actually
// interleave the acquisitions.
//
// Locks are identified at class level: every instance of a struct
// field (`Metrics.mu`) is one vertex, as is each package-level or
// local mutex variable. Within each function the acquisition sites are
// replayed in source order — Lock/RLock acquires, Unlock/RUnlock
// releases, `defer mu.Unlock()` holds to function exit — and while a
// lock is held, every further acquisition adds an edge, including
// acquisitions made inside callees, interprocedurally through the call
// graph. A self-edge (an instance of a field acquired while another
// instance of the same field is held) is reported too: without a
// global instance order, two goroutines running the same code on
// swapped receivers deadlock.
//
// The check is conservative in the usual directions (DESIGN.md §11):
// source order approximates control flow, goroutine bodies count as
// invoked at their syntactic position, and calls through function
// values are invisible, so a clean report is evidence, not proof.
func runLockOrder(p *pass) {
	type edge struct {
		from, to *lockKey
		pos      token.Pos
		via      *cgNode // immediate callee for inherited acquisitions
	}
	// The lock graph spans the whole module but each package pass
	// reports only its own edges, keeping findings suppressible where
	// they arise and the whole analysis single-pass per Run (the
	// engine caches the graph; re-deriving edges per package is cheap).
	keys := p.eng.lockKeys()
	acq := p.eng.acquires()
	var edges []edge
	for _, n := range p.eng.graph().nodes {
		type heldLock struct{ key *lockKey }
		var held []heldLock
		// Merge lock operations and call sites into source order.
		type event struct {
			pos  token.Pos
			op   *lockOp
			call *cgCall
		}
		var events []event
		for i := range n.lockOps {
			events = append(events, event{pos: n.lockOps[i].pos, op: &n.lockOps[i]})
		}
		for i := range n.calls {
			if n.calls[i].node != nil {
				events = append(events, event{pos: n.calls[i].pos, call: &n.calls[i]})
			}
		}
		sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		for _, ev := range events {
			switch {
			case ev.op != nil && ev.op.acquire:
				k := keys[ev.op.obj]
				for _, h := range held {
					edges = append(edges, edge{from: h.key, to: k, pos: ev.op.pos})
				}
				if ev.op.deferred {
					break // deferred acquire runs at exit; ignore
				}
				held = append(held, heldLock{key: k})
			case ev.op != nil: // release
				if ev.op.deferred {
					break // releases at exit: lock stays held below
				}
				k := keys[ev.op.obj]
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].key == k {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case ev.call != nil && len(held) > 0:
				// Sorted by lock name: edge order must not depend on
				// Go's own map iteration order, of all things.
				inherited := make([]*lockKey, 0, len(acq[ev.call.node]))
				for k := range acq[ev.call.node] {
					inherited = append(inherited, k)
				}
				sort.Slice(inherited, func(i, j int) bool { return inherited[i].name < inherited[j].name })
				for _, k := range inherited {
					for _, h := range held {
						edges = append(edges, edge{from: h.key, to: k, pos: ev.call.pos, via: ev.call.node})
					}
				}
			}
		}
	}
	// Adjacency + reachability over lock keys.
	adj := map[*lockKey]map[*lockKey]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[*lockKey]bool{}
		}
		adj[e.from][e.to] = true
	}
	var reaches func(from, to *lockKey, seen map[*lockKey]bool) bool
	reaches = func(from, to *lockKey, seen map[*lockKey]bool) bool {
		if adj[from][to] {
			return true
		}
		seen[from] = true
		for next := range adj[from] {
			if !seen[next] && reaches(next, to, seen) {
				return true
			}
		}
		return false
	}
	// Report this package's cycle edges, deduplicated per (from, to,
	// line) so one Lock call yields one finding.
	reported := map[string]bool{}
	for _, e := range edges {
		pos := p.pkg.Fset.Position(e.pos)
		if !samePackageFile(p.pkg, pos.Filename) {
			continue
		}
		if !reaches(e.to, e.from, map[*lockKey]bool{}) {
			continue
		}
		dk := e.from.name + "→" + e.to.name + "@" + pos.Filename + ":" + strconv.Itoa(pos.Line)
		if reported[dk] {
			continue
		}
		reported[dk] = true
		if e.from == e.to {
			what := "acquires " + e.to.name + " while an instance of it is already held"
			if e.via != nil {
				what = "holds " + e.from.name + " and calls " + e.via.name() + ", which acquires another instance of it"
			}
			p.reportf(e.pos, "%s; two goroutines locking the instances in opposite orders deadlock — release first, or impose a global instance order", what)
			continue
		}
		what := "acquires " + e.to.name + " while holding " + e.from.name
		if e.via != nil {
			what = "holds " + e.from.name + " and calls " + e.via.name() + ", which acquires " + e.to.name
		}
		p.reportf(e.pos, "%s, and the reverse order also occurs elsewhere (lock-order cycle, a deadlock the race detector cannot see); impose one global acquisition order", what)
	}
}

// samePackageFile reports whether the file belongs to the pass's
// package (edges span the module; findings must not).
func samePackageFile(pkg *Package, filename string) bool {
	for _, name := range pkg.FileName {
		if name == filename {
			return true
		}
	}
	return filepath.Dir(filename) == pkg.Dir
}
