package repro

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/hypergraph"
	"repro/internal/mip"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/sched/bipart"
	"repro/internal/sched/ipsched"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/simplex"
	"repro/internal/spec"
	"repro/internal/workload"
)

// The paper-figure benchmarks run the experiment harness in quick mode
// (workloads ~10× smaller, IP budgets in seconds) so the whole suite
// regenerates every figure's shape in minutes. `go run ./cmd/paperfigs`
// produces the full-scale numbers recorded in EXPERIMENTS.md.

func quickOpts() experiments.Options {
	return experiments.Options{Quick: true, Seed: 1, IPBudget: 2 * time.Second}
}

func benchFigure(b *testing.B, f func(experiments.Options) ([]*report.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := f(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (IMAGE, OSUMED+XIO storage,
// three overlap classes, four schedulers).
func BenchmarkFig3(b *testing.B) { benchFigure(b, experiments.Fig3) }

// BenchmarkFig4 regenerates Figure 4 (SAT, OSUMED+XIO storage).
func BenchmarkFig4(b *testing.B) { benchFigure(b, experiments.Fig4) }

// BenchmarkFig5a regenerates Figure 5(a) (replication vs none).
func BenchmarkFig5a(b *testing.B) { benchFigure(b, experiments.Fig5a) }

// BenchmarkFig5b regenerates Figure 5(b) (batch-size sweep under disk
// pressure).
func BenchmarkFig5b(b *testing.B) { benchFigure(b, experiments.Fig5b) }

// BenchmarkFig6 regenerates Figure 6(a) and 6(b) (compute-node sweep:
// batch time and per-task scheduling overhead).
func BenchmarkFig6(b *testing.B) { benchFigure(b, experiments.Fig6) }

// BenchmarkSchedulers times one full pipeline run per scheme per
// task-count decade on the same IMAGE workload family, reporting
// wall-clock (ns/op), allocations (allocs/op, B/op) and the simulated
// makespan. `make bench` parses this output into
// BENCH_schedulers.json (see cmd/benchjson), giving CI a comparable
// per-scheme scaling trajectory across commits.
func BenchmarkSchedulers(b *testing.B) {
	for _, scheme := range []struct {
		name string
		mk   func() core.Scheduler
	}{
		{"IP", func() core.Scheduler {
			ip := ipsched.New(3)
			ip.AllocBudget = time.Second
			ip.SelectBudget = 500 * time.Millisecond
			return ip
		}},
		{"BiPartition", func() core.Scheduler { return bipart.New(3) }},
		{"MinMin", func() core.Scheduler { return minmin.New() }},
		{"JobDataPresent", func() core.Scheduler { return jdp.New() }},
	} {
		for _, tasks := range []int{10, 100} {
			b.Run(fmt.Sprintf("%s/tasks=%d", scheme.name, tasks), func(b *testing.B) {
				p := ablationProblem(b, tasks, 0)
				b.ReportAllocs()
				runScheduler(b, p, scheme.mk(), "makespan_s")
			})
		}
	}
}

// BenchmarkFaultRecovery times the fault-tolerant runtime on one
// IMAGE workload under three arms: fault-free, the harsh preset (MTTF
// shrunk into the quick makespan so crashes actually land), and harsh
// with the single-fork speculation watchdog armed. Besides wall-clock
// it reports the simulated makespan, the wasted compute (failed,
// crashed and cancelled-speculative port time) and the speculation
// outcome counters, so `make bench` archives the cost of recovery —
// wasted_compute_s, spec_wins — next to the scaling trajectories.
func BenchmarkFaultRecovery(b *testing.B) {
	for _, arm := range []struct {
		name  string
		plan  string
		polic string
	}{
		{"none", "", ""},
		{"harsh", "harsh,mttf=25", ""},
		{"harsh+spec", "harsh,mttf=25", "single-fork:0.86"},
	} {
		b.Run(arm.name, func(b *testing.B) {
			p := ablationProblem(b, 100, 0)
			fp, err := faults.Parse(arm.plan)
			if err != nil {
				b.Fatal(err)
			}
			sp, err := spec.Parse(arm.polic)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var last *core.Result
			for i := 0; i < b.N; i++ {
				res, err := core.RunWith(p, minmin.New(), core.RunOptions{Faults: fp, Spec: sp})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Makespan, "makespan_s")
			b.ReportMetric(last.WastedSeconds+last.SpecWastedSeconds, "wasted_compute_s")
			b.ReportMetric(float64(last.SpecLaunches), "spec_launches")
			b.ReportMetric(float64(last.SpecWins), "spec_wins")
		})
	}
}

// --- Ablation benches (DESIGN.md §5) ---------------------------------

func ablationProblem(b *testing.B, tasks int, diskFrac float64) *core.Problem {
	b.Helper()
	bt, err := workload.Image(workload.ImageConfig{NumTasks: tasks, Overlap: workload.HighOverlap, NumStorage: 4, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	var disk int64
	if diskFrac > 0 {
		disk = int64(float64(bt.TotalUniqueBytes(nil)) * diskFrac / 4)
	}
	p := &core.Problem{Batch: bt, Platform: platform.XIO(4, 4, disk)}
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	return p
}

func runScheduler(b *testing.B, p *core.Problem, s core.Scheduler, metric string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(p, s)
		if err != nil {
			b.Fatal(err)
		}
		last = res.Makespan
	}
	b.ReportMetric(last, metric)
}

// BenchmarkAblationIPFormulation compares the aggregated linking rows
// against the strong per-(i,j,ℓ) rows on the same sub-batch.
func BenchmarkAblationIPFormulation(b *testing.B) {
	for _, mode := range []struct {
		name   string
		strong bool
	}{{"aggregated", false}, {"strong", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := ablationProblem(b, 12, 0)
			ip := ipsched.New(9)
			ip.Strong = mode.strong
			ip.AllocBudget = 2 * time.Second
			runScheduler(b, p, ip, "makespan_s")
		})
	}
}

// BenchmarkAblationSubBatch compares BINW first-level sub-batch
// selection against a greedy knapsack under disk pressure.
func BenchmarkAblationSubBatch(b *testing.B) {
	for _, mode := range []struct {
		name   string
		greedy bool
	}{{"binw", false}, {"greedy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := ablationProblem(b, 300, 0.35)
			s := bipart.New(4)
			s.GreedySubBatch = mode.greedy
			runScheduler(b, p, s, "makespan_s")
		})
	}
}

// BenchmarkAblationVertexWeights compares the Eq. 25–26 probabilistic
// vertex weights against plain compute weights in the second-level
// partition.
func BenchmarkAblationVertexWeights(b *testing.B) {
	for _, mode := range []struct {
		name    string
		compute bool
	}{{"probabilistic", false}, {"compute-only", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := ablationProblem(b, 200, 0)
			s := bipart.New(4)
			s.UseComputeWeightsOnly = mode.compute
			runScheduler(b, p, s, "makespan_s")
		})
	}
}

// BenchmarkAblationEviction compares popularity eviction against LRU
// for the BiPartition scheduler under disk pressure.
func BenchmarkAblationEviction(b *testing.B) {
	for _, mode := range []struct {
		name string
		lru  bool
	}{{"popularity", false}, {"lru", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := ablationProblem(b, 300, 0.35)
			s := bipart.New(4)
			s.UseLRU = mode.lru
			runScheduler(b, p, s, "makespan_s")
		})
	}
}

// BenchmarkAblationRefinement compares the multilevel partitioner with
// and without FM refinement on the second-level mapping hypergraph.
func BenchmarkAblationRefinement(b *testing.B) {
	bt, err := workload.Image(workload.ImageConfig{NumTasks: 400, Overlap: workload.HighOverlap, NumStorage: 4, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	hb := hypergraph.NewBuilder()
	for range bt.Tasks {
		hb.AddVertex(1)
	}
	for f := 0; f < bt.NumFiles(); f++ {
		req := bt.Require(batch.FileID(f))
		if len(req) < 2 {
			continue
		}
		pins := make([]int, len(req))
		for i, t := range req {
			pins[i] = int(t)
		}
		hb.AddNet(bt.FileSize(batch.FileID(f)), pins)
	}
	h, err := hb.Build()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		noRefine bool
	}{{"fm", false}, {"no-refine", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				part, err := hypergraph.PartitionKWayOpt(h, 8, hypergraph.KWayOptions{Eps: 0.05, Seed: int64(i), NoRefine: mode.noRefine})
				if err != nil {
					b.Fatal(err)
				}
				cost = h.ConnectivityCost(part)
			}
			b.ReportMetric(float64(cost), "connectivity-1")
		})
	}
}

// --- Parallel-core scaling benches ------------------------------------
//
// Workers=1 is the sequential baseline; higher counts measure the
// portfolio / concurrent-recursion speedup. On a single-core runner
// the sub-benchmarks coincide (GOMAXPROCS gates real parallelism) but
// they still exercise — and alloc-profile — the concurrent paths.

var workerCounts = []int{1, 2, 4}

// BenchmarkMIPSolve measures the branch-and-bound portfolio on a
// makespan-minimization assignment model at each worker count.
func BenchmarkMIPSolve(b *testing.B) {
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m := benchAssignmentModel(14, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := m.Solve(mip.Options{NodeLimit: 50000, Workers: w})
				if err != nil || sol.Status == mip.NoSolution {
					b.Fatalf("status %v err %v", sol.Status, err)
				}
			}
		})
	}
}

// benchAssignmentModel builds a tasks×nodes makespan model (the shape
// of the stage-2 IP's core) for the solver benches.
func benchAssignmentModel(tasks, nodes int) *mip.Model {
	rng := rand.New(rand.NewSource(21))
	m := mip.NewModel()
	z := m.AddVar("z", 0, 1e18, 1, false)
	for k := 0; k < tasks; k++ {
		var row []mip.Term
		for i := 0; i < nodes; i++ {
			v := m.AddBinary("x", 0)
			row = append(row, mip.Term{Var: v, Coef: 1})
		}
		m.AddRow("assign", row, mip.EQ, 1)
	}
	for i := 0; i < nodes; i++ {
		terms := []mip.Term{{Var: z, Coef: -1}}
		for k := 0; k < tasks; k++ {
			terms = append(terms, mip.Term{Var: 1 + k*nodes + i, Coef: 1 + rng.Float64()*4})
		}
		m.AddRow("load", terms, mip.LE, 0)
	}
	return m
}

// BenchmarkKWayPartition measures the recursive K-way partitioner at
// each worker count on a 2000-vertex hypergraph.
func BenchmarkKWayPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	hb := hypergraph.NewBuilder()
	for i := 0; i < 2000; i++ {
		hb.AddVertex(1 + int64(rng.Intn(10)))
	}
	for n := 0; n < 3000; n++ {
		size := 2 + rng.Intn(6)
		pins := rng.Perm(2000)[:size]
		hb.AddNet(1+int64(rng.Intn(100)), pins)
	}
	h, err := hb.Build()
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hypergraph.PartitionKWayOpt(h, 16, hypergraph.KWayOptions{Eps: 0.1, Seed: 9, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Workers measures the figure harness fan-out (quick
// Figure 3 without IP, so cells are cheap and the fan-out dominates).
func BenchmarkFig3Workers(b *testing.B) {
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := quickOpts()
			o.SkipIP = true
			o.Workers = w
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tables, err := experiments.Fig3(o)
				if err != nil {
					b.Fatal(err)
				}
				if len(tables) == 0 || len(tables[0].Rows) == 0 {
					b.Fatal("empty figure")
				}
			}
		})
	}
}

// --- Substrate micro-benches ------------------------------------------

// BenchmarkSimplexAssignmentLP measures the LP engine on a transport-
// style relaxation (the core of every IP node solve).
func BenchmarkSimplexAssignmentLP(b *testing.B) {
	const T, N = 120, 8
	rng := rand.New(rand.NewSource(3))
	lp := &simplex.LP{NumRows: T + N}
	for k := 0; k < T; k++ {
		for i := 0; i < N; i++ {
			lp.Cost = append(lp.Cost, 1+rng.Float64()*9)
			lp.Lower = append(lp.Lower, 0)
			lp.Upper = append(lp.Upper, 1)
			lp.Cols = append(lp.Cols, []simplex.Entry{{Row: int32(k), Val: 1}, {Row: int32(T + i), Val: 1}})
		}
		lp.B = append(lp.B, 1)
	}
	for i := 0; i < N; i++ {
		lp.B = append(lp.B, float64(T)/N+3)
		lp.Cost = append(lp.Cost, 0)
		lp.Lower = append(lp.Lower, 0)
		lp.Upper = append(lp.Upper, 1e18)
		lp.Cols = append(lp.Cols, []simplex.Entry{{Row: int32(T + i), Val: 1}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simplex.Solve(lp, simplex.Options{})
		if err != nil || res.Status != simplex.Optimal {
			b.Fatalf("status %v err %v", res.Status, err)
		}
	}
}

// BenchmarkMIPKnapsack measures branch and bound on a 30-item 0-1
// knapsack.
func BenchmarkMIPKnapsack(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := mip.NewModel()
	m.SetMaximize()
	var terms []mip.Term
	for j := 0; j < 30; j++ {
		m.AddBinary("x", 1+rng.Float64()*9)
		terms = append(terms, mip.Term{Var: j, Coef: 1 + rng.Float64()*5})
	}
	m.AddRow("cap", terms, mip.LE, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := m.Solve(mip.Options{NodeLimit: 200000})
		if err != nil || sol.Status == mip.NoSolution {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}

// BenchmarkHypergraphKWay measures the multilevel partitioner on a
// 2000-vertex random hypergraph.
func BenchmarkHypergraphKWay(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	hb := hypergraph.NewBuilder()
	for i := 0; i < 2000; i++ {
		hb.AddVertex(1 + int64(rng.Intn(10)))
	}
	for n := 0; n < 3000; n++ {
		size := 2 + rng.Intn(6)
		pins := rng.Perm(2000)[:size]
		hb.AddNet(1+int64(rng.Intn(100)), pins)
	}
	h, err := hb.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hypergraph.PartitionKWay(h, 16, 0.1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeStage measures the §6 Gantt-chart executor on a
// 1000-task sub-batch.
func BenchmarkRuntimeStage(b *testing.B) {
	bt, err := workload.Image(workload.ImageConfig{NumTasks: 1000, Overlap: workload.HighOverlap, NumStorage: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	p := &core.Problem{Batch: bt, Platform: platform.XIO(8, 4, 0)}
	s := bipart.New(3)
	st, err := core.NewState(p)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := s.PlanSubBatch(st, bt.AllTasks())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := core.NewState(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Execute(st, plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures the IMAGE emulator.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.Image(workload.ImageConfig{NumTasks: 1000, Overlap: workload.HighOverlap, NumStorage: 8, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
