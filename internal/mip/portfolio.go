package mip

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simplex"
)

// This file implements the multi-start branch-and-bound portfolio: N
// concurrent depth-first dives over the same model, each with its own
// branching order, racing the same wall-clock budget. Workers share
// the incumbent *objective* through an atomic bound (so one worker's
// discovery immediately sharpens everyone's pruning) but keep their
// incumbent *vectors* private; the final merge scans workers in index
// order and takes the strictly best objective, so the reported
// solution does not depend on goroutine interleaving. Worker 0 runs
// the exact canonical dive of the sequential solver, which makes the
// portfolio's incumbent never worse than the sequential one under the
// same limits — the extra workers can only tighten it.

// sharedBound is a monotonically decreasing float64 shared across
// portfolio workers (the best incumbent objective found so far, in the
// internal minimization direction).
type sharedBound struct {
	bits atomic.Uint64
}

func newSharedBound() *sharedBound {
	b := &sharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *sharedBound) load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// update lowers the bound to v if v is smaller.
func (b *sharedBound) update(v float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// clone returns a worker-private copy of the LP. Only the bounds are
// deep-copied: branch and bound mutates Lower/Upper in place, while
// Cost, B and the column structure are read-only during the search (the
// simplex engine copies what it needs per solve).
func cloneLPBounds(lp *simplex.LP) *simplex.LP {
	c := *lp
	c.Lower = append([]float64(nil), lp.Lower...)
	c.Upper = append([]float64(nil), lp.Upper...)
	return &c
}

// solvePortfolio runs opt.Workers concurrent dives and merges their
// results deterministically.
func (m *Model) solvePortfolio(opt Options) (*Solution, error) {
	lp0, err := m.toLP()
	if err != nil {
		return nil, err
	}
	tr := obs.OrNop(opt.Trace)
	start := time.Now() //schedlint:allow nowallclock,tracepurity anchors Options.TimeLimit, the documented wall-clock budget (DESIGN §7)
	var warm []float64
	warmObj := math.Inf(1)
	if opt.WarmStart != nil {
		if obj, ok := m.CheckFeasible(opt.WarmStart, 1e-6); ok {
			warm = opt.WarmStart
			warmObj = obj
			if m.maximize {
				warmObj = -warmObj
			}
		}
	}
	// Build every worker's state before launching any of them: worker 0
	// mutates lp0's bounds as soon as it starts, so all clones must be
	// taken first.
	shared := newSharedBound()
	searches := make([]*search, opt.Workers)
	for w := range searches {
		lp := lp0
		if w > 0 {
			lp = cloneLPBounds(lp0)
		}
		s := &search{m: m, lp: lp, opt: opt, start: start, bestObj: math.Inf(1), shared: shared, tr: tr, widx: w}
		if w > 0 {
			// Deterministic per-worker diversification: a fixed jitter
			// stream keyed by the worker index reorders the branching,
			// and odd workers dive away from the LP rounding first.
			rng := rand.New(rand.NewSource(int64(w)))
			s.jitter = make([]float64, len(m.obj))
			for j := range s.jitter {
				s.jitter[j] = rng.Float64()
			}
			s.flipDive = w%2 == 1
		}
		if warm != nil {
			s.setIncumbent(warm, warmObj)
		}
		searches[w] = s
	}
	var wg sync.WaitGroup
	for w, s := range searches {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.NameTrack(obs.DomainReal, obs.SolverTrack(w), "mip worker "+strconv.Itoa(w))
			end := tr.Span(obs.SolverTrack(w), "solver", "b&b dive",
				obs.A("worker", w), obs.A("vars", len(m.obj)))
			s.run()
			end(obs.A("nodes", s.nodes), obs.A("hit_limit", s.hitLimit))
		}()
	}
	wg.Wait()

	// Deterministic merge: best private objective wins, ties (within
	// the incumbent tolerance) go to the lowest worker index. Any
	// worker exhausting its tree proves optimality for the merged
	// incumbent, because every subtree it pruned was certified (against
	// a bound at least as large as the final one) to hold nothing
	// strictly better.
	merged := &search{
		m: m, opt: opt, start: start,
		bestObj:    math.Inf(1),
		rootBound:  searches[0].rootBound,
		rootSolved: searches[0].rootSolved,
		hitLimit:   true,
	}
	for _, s := range searches {
		merged.nodes += s.nodes
		if !s.hitLimit {
			merged.hitLimit = false
		}
		if s.bestObj < merged.bestObj-1e-12 {
			merged.bestObj = s.bestObj
			merged.bestX = s.bestX
		}
	}
	return merged.solution(), nil
}
