// Package shard wraps any batch scheduler with component-sharded
// planning: the pending tasks of a sub-batch are split into the
// connected components of their file-sharing hypergraph (tasks are
// vertices, files with two or more pending readers are nets), each
// component is planned independently — concurrently, up to a worker
// cap — against a shared read-only view of the cluster state, and the
// per-component plans and journals are merged in component-index
// order.
//
// Components share no file, so under unlimited disk their plans cannot
// interact: the inner scheduler would make the same per-task decisions
// on the full pending set as on its component alone (both MinMin's
// ECT matrix and JDP's staging costs decompose over components, since
// every cross-component term is absent). Under disk pressure that
// independence breaks — per-component planners would each budget the
// same free bytes — so sharding steps aside and delegates the whole
// sub-batch to the inner scheduler unchanged.
//
// Determinism: components are ordered by their smallest pending-task
// index (hypergraph.Components guarantees this), plans and journal
// recorders merge strictly in that order, and the worker pool only
// reorders wall-clock execution, never observable output. Journal
// bytes are therefore identical at any Workers setting; the
// equivalence tests pin this and the plan-level agreement with the
// unsharded inner scheduler.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/obs/journal"
)

// Scheduler plans each file-sharing component of the pending set
// independently with Inner, in parallel across Workers goroutines.
type Scheduler struct {
	Inner core.Scheduler
	// Workers caps planning concurrency; <= 0 means GOMAXPROCS.
	Workers int
}

// New wraps inner with component sharding.
func New(inner core.Scheduler, workers int) *Scheduler {
	return &Scheduler{Inner: inner, Workers: workers}
}

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return s.Inner.Name() + "+shard" }

// Evict implements core.Scheduler by delegating: eviction is a global
// disk-pressure decision and does not decompose over components.
func (s *Scheduler) Evict(st *core.State, pending []batch.TaskID) {
	s.Inner.Evict(st, pending)
}

// PlanSubBatch implements core.Scheduler.
func (s *Scheduler) PlanSubBatch(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	// Sharding is only sound when no disk budget couples the
	// components (see the package comment): a finite disk anywhere
	// means two independently planned components could each claim the
	// same free bytes. Aggregate-fit (Problem.Unlimited) is not enough;
	// every node must be individually unconstrained.
	if !unconstrainedDisks(st.P) || len(pending) < 2 {
		return s.Inner.PlanSubBatch(st, pending)
	}
	comps := components(st.P.Batch, pending)
	if len(comps) < 2 {
		return s.Inner.PlanSubBatch(st, pending)
	}

	plans := make([]*core.SubPlan, len(comps))
	errs := make([]error, len(comps))
	recs := make([]*journal.Recorder, len(comps))
	journaled := st.J.Enabled()

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	plan := func(i int) {
		var rec *journal.Recorder
		if journaled {
			rec = journal.New()
			recs[i] = rec
		}
		plans[i], errs[i] = s.Inner.PlanSubBatch(st.PlanView(rec), comps[i])
	}
	if workers <= 1 {
		for i := range comps {
			plan(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(comps) {
						return
					}
					plan(i)
				}
			}()
		}
		wg.Wait()
	}

	// Merge in component-index order: task order, node map, staging
	// lists and journal events all concatenate deterministically.
	merged := &core.SubPlan{Node: make(map[batch.TaskID]int)}
	var firstErr error
	for i, p := range plans {
		if errs[i] != nil {
			// A component that cannot place any task defers to a later
			// sub-batch — unless every component is stuck.
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		if journaled {
			st.J.Merge(recs[i])
		}
		merged.Tasks = append(merged.Tasks, p.Tasks...)
		// Copy node assignments via the plan's task list rather than by
		// ranging p.Node, keeping the merge free of map iteration order.
		for _, t := range p.Tasks {
			merged.Node[t] = p.Node[t]
		}
		merged.Staging = append(merged.Staging, p.Staging...)
		merged.PreStage = append(merged.PreStage, p.PreStage...)
		merged.Pinned = merged.Pinned || p.Pinned
	}
	if len(merged.Tasks) == 0 {
		if firstErr != nil {
			return nil, fmt.Errorf("shard: every component failed to plan: %w", firstErr)
		}
		return nil, fmt.Errorf("shard: empty merged plan for %d components", len(comps))
	}
	return merged, nil
}

// unconstrainedDisks reports whether every compute node's disk is
// unlimited, the precondition for independent per-component planning.
func unconstrainedDisks(p *core.Problem) bool {
	for _, c := range p.Platform.Compute {
		if c.DiskSpace > 0 {
			return false
		}
	}
	return true
}

// components splits the pending tasks into connected components of the
// file-sharing hypergraph, each listed in ascending pending order and
// ordered among themselves by smallest member.
func components(b *batch.Batch, pending []batch.TaskID) [][]batch.TaskID {
	hb := hypergraph.NewBuilder()
	for range pending {
		hb.AddVertex(1)
	}
	// One net per file with >= 2 pending readers; single-reader files
	// connect nothing. Nets are added in ascending file order so the
	// hypergraph build itself is deterministic.
	readers := make([][]int, b.NumFiles())
	for i, t := range pending {
		for _, f := range b.Tasks[t].Files {
			readers[f] = append(readers[f], i)
		}
	}
	for _, pins := range readers {
		if len(pins) >= 2 {
			hb.AddNet(1, pins)
		}
	}
	h, err := hb.Build()
	if err != nil {
		// Cannot happen: vertices are 0..n-1 and task file lists hold
		// no duplicates. Fall back to one component per task.
		out := make([][]batch.TaskID, len(pending))
		for i, t := range pending {
			out[i] = []batch.TaskID{t}
		}
		return out
	}
	var out [][]batch.TaskID
	for _, comp := range h.Components() {
		tasks := make([]batch.TaskID, len(comp))
		for i, v := range comp {
			tasks[i] = pending[v]
		}
		out = append(out, tasks)
	}
	return out
}
