// Command batchsched runs one scheduling experiment: it generates a
// workload, builds a platform, runs the chosen scheduler through the
// full three-stage pipeline on the simulator, and reports the result.
//
// Usage:
//
//	batchsched -app sat|image -tasks 100 -overlap high|medium|low
//	           -platform xio|osumed -compute 4 -storage 4
//	           -sched ip|bipartition|minmin|jdp [-disk-gb 40]
//	           [-no-replication] [-ip-budget 20s] [-seed 1] [-v]
//	           [-workers N]
//
// -workers sets the parallelism of the scheduler's solver (the IP
// branch-and-bound portfolio, the hypergraph partitioner); 0 uses
// every CPU, 1 forces the sequential solver. The schedule for a fixed
// seed does not depend on the worker count (for the IP scheduler,
// whenever its solves finish within budget).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
	"repro/internal/sched/ipsched"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "image", "workload: sat or image")
	tasks := flag.Int("tasks", 100, "batch size")
	overlapName := flag.String("overlap", "high", "file sharing: high, medium, low")
	platName := flag.String("platform", "xio", "storage system: xio or osumed")
	computeN := flag.Int("compute", 4, "compute nodes")
	storageN := flag.Int("storage", 4, "storage nodes")
	schedName := flag.String("sched", "bipartition", "scheduler: ip, bipartition, minmin, jdp")
	diskGB := flag.Float64("disk-gb", 0, "per-node compute disk in GB (0 = unlimited)")
	noRep := flag.Bool("no-replication", false, "forbid compute-to-compute replication")
	ipBudget := flag.Duration("ip-budget", 20*time.Second, "time budget per IP solve")
	seed := flag.Int64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "print workload statistics")
	workers := flag.Int("workers", 0, "solver parallelism (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	var overlap workload.Overlap
	switch strings.ToLower(*overlapName) {
	case "high":
		overlap = workload.HighOverlap
	case "medium", "med":
		overlap = workload.MediumOverlap
	case "low":
		overlap = workload.LowOverlap
	default:
		fatal("unknown overlap %q", *overlapName)
	}

	var b *batch.Batch
	var err error
	switch strings.ToLower(*app) {
	case "sat":
		b, err = workload.Sat(workload.SatConfig{NumTasks: *tasks, Overlap: overlap, NumStorage: *storageN, Seed: *seed})
	case "image":
		b, err = workload.Image(workload.ImageConfig{NumTasks: *tasks, Overlap: overlap, NumStorage: *storageN, Seed: *seed})
	default:
		fatal("unknown app %q", *app)
	}
	if err != nil {
		fatal("workload: %v", err)
	}

	disk := int64(*diskGB * float64(platform.GB))
	var pf *platform.Platform
	switch strings.ToLower(*platName) {
	case "xio":
		pf = platform.XIO(*computeN, *storageN, disk)
	case "osumed":
		pf = platform.OSUMED(*computeN, *storageN, disk)
	default:
		fatal("unknown platform %q", *platName)
	}

	var sched core.Scheduler
	switch strings.ToLower(*schedName) {
	case "ip":
		ip := ipsched.New(*seed)
		ip.AllocBudget = *ipBudget
		ip.SelectBudget = *ipBudget / 2
		ip.Workers = *workers
		sched = ip
	case "bipartition", "bipart":
		bp := bipart.New(*seed)
		bp.Workers = *workers
		sched = bp
	case "minmin":
		sched = minmin.New()
	case "jdp", "jobdatapresent":
		sched = jdp.New()
	default:
		fatal("unknown scheduler %q", *schedName)
	}

	p := &core.Problem{Batch: b, Platform: pf, DisableReplication: *noRep}
	if err := p.Validate(); err != nil {
		fatal("problem: %v", err)
	}
	if *verbose {
		st := b.ComputeStats()
		fmt.Printf("workload: %d tasks, %d files, %.2f GB unique, %.1f files/task, %.0f%% overlap\n",
			st.NumTasks, st.NumFiles, float64(st.TotalBytes)/float64(platform.GB), st.MeanFilesPerTask, st.Overlap*100)
	}

	res, err := core.Run(p, sched)
	if err != nil {
		fatal("run: %v", err)
	}
	fmt.Printf("scheduler:            %s\n", res.Scheduler)
	fmt.Printf("batch execution time: %.2f s (simulated)\n", res.Makespan)
	fmt.Printf("scheduling overhead:  %v (%.3f ms/task)\n", res.SchedulingTime.Round(time.Millisecond), res.SchedulingMSPerTask())
	fmt.Printf("sub-batches:          %d\n", res.SubBatches)
	fmt.Printf("remote transfers:     %d (%.2f GB)\n", res.RemoteTransfers, float64(res.RemoteBytes)/float64(platform.GB))
	fmt.Printf("replications:         %d (%.2f GB)\n", res.ReplicaTransfers, float64(res.ReplicaBytes)/float64(platform.GB))
	fmt.Printf("evictions:            %d\n", res.Evictions)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
