package ipsched

import (
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/eviction"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/sched/bipart"
)

// Scheduler is the 0-1 IP scheduler of §4.
type Scheduler struct {
	// Strong selects the per-(i,j,ℓ) linking rows instead of the
	// aggregated ones (tighter LP bound, far larger model).
	Strong bool
	// AllocBudget caps wall-clock time of each allocation IP solve
	// (default 30 s). The incumbent at the deadline is used.
	AllocBudget time.Duration
	// SelectBudget caps each sub-batch-selection IP solve (default 10 s).
	SelectBudget time.Duration
	// Thresh is the load-balance tolerance of the selection stage
	// (Eq. 18; default 0.5).
	Thresh float64
	// NoWarmStart disables seeding branch and bound with the
	// BiPartition-derived incumbent (for the ablation bench; expect
	// far worse anytime solutions).
	NoWarmStart bool
	// Seed drives the warm-start heuristic's partitioner.
	Seed int64
	// Workers is the parallelism of each IP solve (portfolio dives)
	// and of the warm-start partitioner (0 = GOMAXPROCS, 1 =
	// sequential). The solve is deterministic for a fixed seed
	// whenever branch and bound runs to completion within its budget.
	Workers int
	// Trace, when non-nil, is handed down to the IP solver (per-worker
	// dive spans, incumbent instants) and the warm-start partitioner.
	// Observability only: the schedule never depends on it.
	Trace obs.Tracer
}

// New returns an IP scheduler with the default budgets.
func New(seed int64) *Scheduler {
	return &Scheduler{AllocBudget: 30 * time.Second, SelectBudget: 10 * time.Second, Thresh: 0.5, Seed: seed}
}

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return "IP" }

// Evict implements core.Scheduler using the §4.3 popularity policy.
func (s *Scheduler) Evict(st *core.State, pending []batch.TaskID) {
	eviction.Popularity(st, pending)
}

// PlanSubBatch implements core.Scheduler: sub-batch selection (stage
// 1, skipped when everything fits) followed by the allocation IP
// (stage 2).
func (s *Scheduler) PlanSubBatch(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	sub := pending
	if st.P.Batch.TotalUniqueBytes(pending) > st.AggregateFree() {
		var err error
		sub, err = s.selectSubBatch(st, pending)
		if err != nil {
			return nil, err
		}
	}
	return s.allocate(st, sub)
}

// allocate runs the §4.1 allocation IP on the sub-batch. If the
// model is infeasible (the fallback selector only guarantees an
// aggregate fit, not a per-node packing), the largest-working-set task
// is deferred and the model retried.
func (s *Scheduler) allocate(st *core.State, sub []batch.TaskID) (*core.SubPlan, error) {
	for {
		plan, err := s.allocateOnce(st, sub)
		if err == nil || len(sub) <= 1 {
			return plan, err
		}
		worst, worstBytes := -1, int64(-1)
		for i, t := range sub {
			if n := st.P.Batch.TaskBytes(t); n > worstBytes {
				worst, worstBytes = i, n
			}
		}
		sub = append(append([]batch.TaskID(nil), sub[:worst]...), sub[worst+1:]...)
	}
}

func (s *Scheduler) allocateOnce(st *core.State, sub []batch.TaskID) (*core.SubPlan, error) {
	tr := obs.OrNop(s.Trace)
	ins := buildInstance(st, sub)
	m, vi := ins.buildAllocationModel(s.Strong)
	opt := mip.Options{TimeLimit: s.AllocBudget, Workers: s.Workers, Trace: s.Trace}
	if !s.NoWarmStart {
		if nodeOf, ok := s.heuristicAssignment(st, sub); ok {
			opt.WarmStart = ins.warmStart(m, vi, nodeOf)
		}
	}
	endSolve := tr.Span(obs.TrackSched, "ipsched", "allocation IP",
		obs.A("tasks", len(sub)), obs.A("warm_start", opt.WarmStart != nil))
	sol, err := m.Solve(opt)
	if err == nil {
		endSolve(obs.A("status", sol.Status.String()), obs.A("nodes", sol.Nodes))
	} else {
		endSolve()
	}
	if err != nil {
		return nil, fmt.Errorf("ipsched: allocation model: %w", err)
	}
	if sol.Status == mip.Infeasible || sol.Status == mip.NoSolution {
		return nil, fmt.Errorf("ipsched: allocation IP %v for sub-batch of %d tasks", sol.Status, len(sub))
	}
	x := sol.X
	objX := sol.Obj
	if sol.Status != mip.Optimal && ins.C <= 60 {
		// Budget ran out before optimality: polish the incumbent's
		// assignment on the IP objective (solver-side primal
		// heuristic; see polish.go).
		nodeOf := make([]int, len(sub))
		for k := range ins.tasks {
			for i := 0; i < ins.C; i++ {
				if x[vi.t[k][i]] > 0.5 {
					nodeOf[k] = i
					break
				}
			}
		}
		polished := ins.polish(nodeOf, 8)
		px := ins.warmStart(m, vi, polished)
		if pObj, ok := m.CheckFeasible(px, 1e-6); ok && pObj < objX-1e-9 {
			x = px
		}
	}
	plan := ins.extractPlan(vi, x)
	if st.J.Enabled() {
		reason := fmt.Sprintf("0-1 allocation IP (status %s, %d branch-and-bound nodes); task-node and staging variables fixed jointly", sol.Status, sol.Nodes)
		for _, t := range plan.Tasks {
			st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindPlace, Round: st.JRound,
				Place: &journal.Place{Task: int(t), Node: plan.Node[t], Policy: "ip-allocation",
					Reason: reason}})
		}
		for _, op := range plan.Staging {
			src := -1
			if op.Kind == core.Replica {
				src = op.Src
			}
			st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindReplicate, Round: st.JRound,
				Replicate: &journal.Replicate{File: int(op.File), Dest: op.Dest, Src: src,
					Policy: "ip-allocation",
					Reason: "pinned by the allocation IP's staging variables"}})
		}
	}
	return plan, nil
}

// heuristicAssignment derives a disk-feasible warm-start assignment
// using the BiPartition mapping machinery on the same sub-batch.
// ok=false when the heuristic cannot place every task (the IP then
// starts cold).
func (s *Scheduler) heuristicAssignment(st *core.State, sub []batch.TaskID) ([]int, bool) {
	bp := bipart.New(s.Seed + 17)
	bp.Workers = s.Workers
	bp.Trace = s.Trace
	assignMap, err := bp.MapForWarmStart(st, sub)
	if err != nil {
		return nil, false
	}
	nodeOf := make([]int, len(sub))
	for i, t := range sub {
		n, ok := assignMap[t]
		if !ok {
			return nil, false
		}
		nodeOf[i] = n
	}
	return nodeOf, true
}

// selectSubBatch runs the stage-1 IP (Eq. 14–20): maximize the number
// of allocated tasks subject to per-node disk capacity and the
// load-balance tolerance. Falls back to a greedy working-set knapsack
// when the solver returns nothing usable.
func (s *Scheduler) selectSubBatch(st *core.State, pending []batch.TaskID) ([]batch.TaskID, error) {
	tr := obs.OrNop(s.Trace)
	ins := buildInstance(st, pending)
	m, vi := ins.buildSelectionModel(s.Thresh, s.Strong)
	endSolve := tr.Span(obs.TrackSched, "ipsched", "selection IP",
		obs.A("pending", len(pending)))
	sol, err := m.Solve(mip.Options{TimeLimit: s.SelectBudget, Workers: s.Workers, WarmStart: ins.selectionWarmStart(m, vi), Trace: s.Trace})
	if err != nil {
		endSolve()
		return nil, fmt.Errorf("ipsched: selection model: %w", err)
	}
	endSolve(obs.A("status", sol.Status.String()), obs.A("nodes", sol.Nodes))
	var sub []batch.TaskID
	if sol.Status == mip.Optimal || sol.Status == mip.Feasible {
		for k, t := range ins.tasks {
			for i := 0; i < ins.C; i++ {
				if sol.X[vi.t[k][i]] > 0.5 {
					sub = append(sub, t)
					break
				}
			}
		}
	}
	if len(sub) == 0 {
		sub = greedySelect(st, pending)
	}
	if len(sub) == 0 {
		return nil, fmt.Errorf("ipsched: no pending task fits the free disk (pending %d)", len(pending))
	}
	return sub, nil
}

// greedySelect packs tasks in descending file-sharing affinity until
// the aggregate free disk is exhausted — the stage-1 fallback.
func greedySelect(st *core.State, pending []batch.TaskID) []batch.TaskID {
	b := st.P.Batch
	free := st.AggregateFree()
	seen := make(map[batch.FileID]bool)
	var used int64
	var sub []batch.TaskID
	// Repeatedly take the task adding the fewest new bytes.
	remaining := append([]batch.TaskID(nil), pending...)
	for len(remaining) > 0 {
		bestIdx := -1
		var bestNew int64
		for idx, t := range remaining {
			var nb int64
			for _, f := range b.Tasks[t].Files {
				if !seen[f] && len(st.Holders(f)) == 0 {
					nb += b.FileSize(f)
				}
			}
			if bestIdx < 0 || nb < bestNew {
				bestIdx, bestNew = idx, nb
			}
		}
		if used+bestNew > free && len(sub) > 0 {
			break
		}
		t := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if used+bestNew > free {
			continue // single task too large even alone; try others
		}
		used += bestNew
		sub = append(sub, t)
		for _, f := range b.Tasks[t].Files {
			seen[f] = true
		}
	}
	return batch.SortedCopy(sub)
}
