package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestNopTracer(t *testing.T) {
	if Nop.Enabled() {
		t.Fatal("Nop.Enabled() = true")
	}
	end := Nop.Span(TrackSched, "phase", "plan", A("k", 1))
	end(A("v", 2)) // must not panic
	Nop.Instant(1, "c", "n")
	Nop.SimSpan(1, "c", "n", 0, 1)
	Nop.SimInstant(1, "c", "n", 0)
	Nop.NameTrack(DomainSim, 1, "x")
	if got := Nop.AllocTrack(DomainReal, "y"); got != 0 {
		t.Fatalf("Nop.AllocTrack = %d, want 0", got)
	}
	if OrNop(nil) != Nop {
		t.Fatal("OrNop(nil) != Nop")
	}
	tr := New()
	if OrNop(tr) != Tracer(tr) {
		t.Fatal("OrNop(t) != t")
	}
}

func TestChromeExportValidAndSorted(t *testing.T) {
	tr := New()
	tr.NameTrack(DomainSim, ComputeTrack(0), "compute 0")
	tr.NameTrack(DomainSim, TrackLink, "link")
	tr.SimSpan(ComputeTrack(0), "exec", "task t1", 5, 9, A("task", "t1"))
	tr.SimSpan(TrackLink, "remote", "xfer f1", 0, 5, A("bytes", 100))
	tr.SimInstant(ComputeTrack(0), "evict", "evict f2", 9)
	end := tr.Span(TrackSched, "phase", "plan")
	end(A("tasks", 3))
	tr.Instant(TrackSched, "solver", "incumbent", A("obj", 1.5))

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	var phases []string
	for _, ev := range parsed.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "M") || !strings.Contains(joined, "X") || !strings.Contains(joined, "i") {
		t.Fatalf("missing expected phases in %q", joined)
	}
	// Simulated events on the same track must appear in time order.
	var lastTS float64 = -1
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] == "M" || int(ev["pid"].(float64)) != int(DomainSim) {
			continue
		}
		if int(ev["tid"].(float64)) != ComputeTrack(0) {
			continue
		}
		ts := ev["ts"].(float64)
		if ts < lastTS {
			t.Fatalf("sim events out of order: %v after %v", ts, lastTS)
		}
		lastTS = ts
	}
}

func TestSimOnlyDeterministicBytes(t *testing.T) {
	build := func(shuffle bool) []byte {
		tr := NewSimOnly()
		// Real-domain recordings must be dropped entirely.
		tr.Span(TrackSched, "phase", "plan")(A("x", 1))
		tr.Instant(TrackSched, "c", "n")
		events := [][2]float64{{0, 3}, {3, 7}, {7, 11}}
		if shuffle { // record in a different order; export must not care
			events = [][2]float64{{7, 11}, {0, 3}, {3, 7}}
		}
		for _, e := range events {
			tr.SimSpan(ComputeTrack(1), "exec", "t", e[0], e[1])
		}
		tr.NameTrack(DomainSim, ComputeTrack(1), "compute 1")
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(false), build(true)
	if !bytes.Equal(a, b) {
		t.Fatalf("sim-only export depends on recording order:\n%s\nvs\n%s", a, b)
	}
	if bytes.Contains(a, []byte("plan")) {
		t.Fatal("sim-only trace leaked a real-domain event")
	}
}

func TestTraceConcurrentUse(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := tr.Span(SolverTrack(g), "solver", "dive")
				tr.SimSpan(ComputeTrack(g), "exec", "t", float64(i), float64(i+1))
				tid := tr.AllocTrack(DomainReal, "branch")
				tr.Instant(tid, "c", "n")
				end()
			}
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace export is not valid JSON")
	}
}

func TestAllocTrackUnique(t *testing.T) {
	tr := New()
	a := tr.AllocTrack(DomainReal, "a")
	b := tr.AllocTrack(DomainReal, "b")
	if a == b {
		t.Fatalf("AllocTrack returned duplicate id %d", a)
	}
}

func TestASCIIGantt(t *testing.T) {
	tr := New()
	tr.NameTrack(DomainSim, ComputeTrack(0), "compute 0")
	tr.SimSpan(ComputeTrack(0), "remote", "xfer", 0, 4)
	tr.SimSpan(ComputeTrack(0), "exec", "task", 4, 10)
	var buf bytes.Buffer
	if err := tr.WriteASCIIGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "compute 0") {
		t.Fatalf("missing track label:\n%s", out)
	}
	if !strings.Contains(out, "=") || !strings.Contains(out, "#") {
		t.Fatalf("missing transfer/exec glyphs:\n%s", out)
	}
	// Empty trace renders a placeholder, not an error.
	var empty bytes.Buffer
	if err := New().WriteASCIIGantt(&empty, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no simulated-time events") {
		t.Fatalf("unexpected empty render: %q", empty.String())
	}
}

func TestProfilesStartStop(t *testing.T) {
	dir := t.TempDir()
	p := Profiles{
		CPU:     filepath.Join(dir, "cpu.pprof"),
		Mem:     filepath.Join(dir, "mem.pprof"),
		Runtime: filepath.Join(dir, "trace.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = make([]byte, 1024)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{p.CPU, p.Mem, p.Runtime} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s not written: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", f)
		}
	}
}
