package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/batch"
	"repro/internal/faults"
	"repro/internal/gantt"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/spec"
)

// ExecStats reports what the runtime stage did for one sub-batch.
type ExecStats struct {
	// Makespan is the sub-batch execution time: the latest finish time
	// over all compute nodes, measured from the sub-batch start.
	Makespan float64
	// TasksRun counts tasks executed.
	TasksRun int
	// RemoteTransfers / RemoteBytes count storage→compute stagings.
	RemoteTransfers int
	RemoteBytes     int64
	// ReplicaTransfers / ReplicaBytes count compute→compute copies.
	ReplicaTransfers int
	ReplicaBytes     int64
	// StorageBusy / ComputeBusy are total reserved seconds, summed over
	// nodes, for utilization reporting.
	StorageBusy float64
	ComputeBusy float64

	// Fault/recovery accounting, all zero on fault-free runs.
	TransferFailures  int     // transfer attempts that died partway
	TransferRetries   int     // retry attempts scheduled after a failure
	ReplicaRecoveries int     // successful retries served from a surviving replica
	Crashes           int     // node crashes observed this sub-batch
	Stragglers        int     // execution attempts slowed by a straggling node
	RequeuedTasks     int     // tasks interrupted and handed back for a later sub-batch
	WastedSeconds     float64 // port seconds burnt by failed or interrupted attempts

	// Speculative-execution accounting, all zero unless a speculation
	// policy forked twins this sub-batch.
	SpecLaunches      int     // speculative twin attempts forked
	SpecWins          int     // tasks completed by their twin (primary lost)
	SpecCancels       int     // losing attempts cancelled (one per launch)
	SpecSaved         int     // twin wins whose primary was crash-killed
	SpecWastedSeconds float64 // port seconds burnt by losing speculative attempts
}

// Add folds o into s. Every field is a plain sum, so aggregation is
// commutative and associative: merging per-sub-batch or per-cell stats
// in any order yields identical totals (Makespan sums because
// sub-batches run back to back).
func (s *ExecStats) Add(o *ExecStats) {
	s.Makespan += o.Makespan
	s.TasksRun += o.TasksRun
	s.RemoteTransfers += o.RemoteTransfers
	s.RemoteBytes += o.RemoteBytes
	s.ReplicaTransfers += o.ReplicaTransfers
	s.ReplicaBytes += o.ReplicaBytes
	s.StorageBusy += o.StorageBusy
	s.ComputeBusy += o.ComputeBusy
	s.TransferFailures += o.TransferFailures
	s.TransferRetries += o.TransferRetries
	s.ReplicaRecoveries += o.ReplicaRecoveries
	s.Crashes += o.Crashes
	s.Stragglers += o.Stragglers
	s.RequeuedTasks += o.RequeuedTasks
	s.WastedSeconds += o.WastedSeconds
	s.SpecLaunches += o.SpecLaunches
	s.SpecWins += o.SpecWins
	s.SpecCancels += o.SpecCancels
	s.SpecSaved += o.SpecSaved
	s.SpecWastedSeconds += o.SpecWastedSeconds
}

// Execute runs one sub-batch plan through the §6 runtime stage:
// tasks within each node group are ordered by earliest completion
// time; each missing input file is staged from the source giving the
// minimum transfer completion time (or from the source the pinned IP
// plan dictates), reserving slots on the source port, destination port
// and — on platforms with one — the shared inter-cluster link.
// Transfers and execution on a compute node serialize on its single
// port (the paper's single-port model; no staging overlaps execution
// on the same node). Execute mutates st: staged files are recorded in
// the disk cache, task completion is marked, and the state clock
// advances by the sub-batch makespan.
func Execute(st *State, plan *SubPlan) (*ExecStats, error) {
	stats, _, err := ExecuteObserved(st, plan, false, obs.Nop)
	return stats, err
}

// ExecuteTraced is Execute plus a full gantt.Schedule record of what
// was committed — every port timeline, staging event and task
// execution — so callers can run gantt's post-hoc invariant checker
// (no port overlap, disk capacity respected, inputs staged before
// start) against the exact schedule the runtime stage produced.
func ExecuteTraced(st *State, plan *SubPlan) (*ExecStats, *gantt.Schedule, error) {
	return ExecuteObserved(st, plan, true, obs.Nop)
}

// ExecuteObserved is the general runtime-stage entry point: traced
// selects the gantt.Schedule record (nil otherwise), and tr receives
// one simulated-time span per committed port reservation — remote
// transfers on the storage/compute/link tracks, replica transfers on
// both compute tracks, task executions on their node's track — with
// absolute batch timestamps. Observation never alters the schedule.
func ExecuteObserved(st *State, plan *SubPlan, traced bool, tr obs.Tracer) (*ExecStats, *gantt.Schedule, error) {
	e, err := newExecutor(st, plan, traced, tr, nil, 0, nil)
	if err != nil {
		return nil, nil, err
	}
	stats, err := e.run()
	if err != nil {
		return nil, nil, err
	}
	return stats, e.trace, nil
}

// ExecuteFaulty is ExecuteObserved under a deterministic fault
// injector: transfer attempts may fail and retry with capped
// exponential backoff (preferring a surviving replica source over the
// storage cluster), node crashes interrupt work and drop disk caches
// at the sub-batch boundary, and stragglers stretch executions. round
// is the sub-batch ordinal, part of every failure's hashed identity.
// Tasks whose in-sub-batch recovery exhausted its budget are returned
// in requeued — still pending, for the caller to re-plan. A nil
// injector makes this identical to ExecuteObserved.
func ExecuteFaulty(st *State, plan *SubPlan, traced bool, tr obs.Tracer, inj *faults.Injector, round int) (*ExecStats, *gantt.Schedule, []batch.TaskID, error) {
	return ExecuteSpec(st, plan, traced, tr, inj, round, nil)
}

// ExecuteSpec is ExecuteFaulty plus a speculative-execution policy:
// when a committed task's stretched execution would run past the
// policy's elapsed-time threshold (the watchdog), a duplicate attempt
// is forked on the best other compute node — preferring nodes whose
// disks already cache the inputs, falling back to the cheapest
// staging — the first finisher wins, and the loser is cancelled
// deterministically (tag-3 burns for its occupied port time,
// in-flight stagings rolled back through State). A nil or inactive
// policy, or a nil injector, takes the exact ExecuteFaulty code
// paths.
func ExecuteSpec(st *State, plan *SubPlan, traced bool, tr obs.Tracer, inj *faults.Injector, round int, pol *spec.Policy) (*ExecStats, *gantt.Schedule, []batch.TaskID, error) {
	e, err := newExecutor(st, plan, traced, tr, inj, round, pol)
	if err != nil {
		return nil, nil, nil, err
	}
	stats, err := e.run()
	if err != nil {
		return nil, nil, nil, err
	}
	return stats, e.trace, e.requeued, nil
}

// transfer tags recorded in Gantt intervals, for debugging and tests.
// tagFault marks a preempted (partial) reservation: the port time a
// transfer or execution burnt before an injected failure killed it.
const (
	tagTransfer int32 = 1
	tagExec     int32 = 2
	tagFault    int32 = 3
)

// faultAbort signals that injected faults prevented one task commit
// (node crash or exhausted transfer retries). The run loop re-queues
// the task instead of failing the run.
type faultAbort struct {
	node   int
	at     float64 // sub-batch-relative time of the terminal failure
	crash  bool    // caused by a node crash (vs a retry budget)
	reason string
}

func (f *faultAbort) Error() string { return "core: " + f.reason }

type stageKey struct {
	file batch.FileID
	dest int
}

type executor struct {
	st   *State
	plan *SubPlan

	storageTL []*gantt.Timeline
	computeTL []*gantt.Timeline
	linkTL    *gantt.Timeline

	// avail[n][f] is the committed availability time of file f on
	// compute node n within this sub-batch; negative means absent.
	avail [][]float64
	// holders[f] lists, in ascending node order, the compute nodes with
	// avail[n][f] >= 0 — the inverse of avail, so source searches visit
	// only actual copies instead of every node. Nodes are only ever
	// added (avail never drops below zero within a sub-batch), which
	// keeps the lists sorted by construction.
	holders [][]int32

	// tentEnv is the reusable tentative scheduling environment for ECT
	// probes: its overlays, scratch tables and visiting set are cleared
	// between uses instead of reallocated (the probe loop runs millions
	// of times at scale).
	tentEnv *schedEnv
	// remainingBuf backs scheduleTask's missing-file worklist across
	// calls.
	remainingBuf []batch.FileID

	planned map[stageKey]Staging

	stats ExecStats
	// trace, when non-nil, accumulates the committed schedule for
	// post-hoc validation.
	trace *gantt.Schedule
	// tr receives simulated-time spans for committed reservations.
	tr obs.Tracer

	// Fault injection (all nil/zero on the fault-free fast path).
	inj   *faults.Injector
	round int
	// crashRel[n] is node n's pending crash time relative to this
	// sub-batch's start (+Inf when it never crashes). Fixed for the
	// whole sub-batch: crashes are consumed only at the boundary.
	crashRel []float64
	// crashSeen[n] records that node n's pending crash interrupted
	// work, so the boundary must consume it even if the final makespan
	// ends before the crash time (the zero-progress edge case).
	crashSeen []bool
	// requeued collects tasks whose commit a fault aborted; they stay
	// pending and the caller re-plans them in a later sub-batch.
	requeued []batch.TaskID

	// Journal context for committed transfers: the task whose inputs
	// are being staged (-1 during pre-staging) and, under fault
	// injection, the attempt number of the transfer being committed.
	curTask    int
	curAttempt int
	// specCause, when non-empty, overrides the journaled cause of
	// committed transfers (the twin-commit path sets it to "spec").
	specCause string

	// pol is the speculative-execution policy; nil or inactive (and
	// any run without an injector) takes the exact pre-speculation
	// code paths.
	pol *spec.Policy
	// drainLeft is the number of tasks still waiting behind the one
	// being committed (the ECT heap's residue). The watchdog uses it
	// to tell the drain phase — fewer waiting tasks than compute
	// ports, so ports are about to idle — from the saturated middle of
	// the sub-batch, where a duplicate could only displace useful
	// work.
	drainLeft int
}

func newExecutor(st *State, plan *SubPlan, traced bool, tr obs.Tracer, inj *faults.Injector, round int, pol *spec.Policy) (*executor, error) {
	if len(plan.Tasks) == 0 {
		return nil, fmt.Errorf("core: empty sub-batch plan")
	}
	p := st.P
	e := &executor{st: st, plan: plan, tr: obs.OrNop(tr), round: round, curTask: -1, pol: pol,
		drainLeft: len(plan.Tasks)}
	if inj != nil {
		e.inj = inj
		e.crashRel = make([]float64, p.Platform.NumCompute())
		e.crashSeen = make([]bool, p.Platform.NumCompute())
		for n := range e.crashRel {
			e.crashRel[n] = inj.CrashTime(n) - st.Clock
		}
	}
	if e.tr.Enabled() {
		for s := range p.Platform.Storage {
			e.tr.NameTrack(obs.DomainSim, obs.StorageTrack(s), "storage "+strconv.Itoa(s))
		}
		for n := range p.Platform.Compute {
			e.tr.NameTrack(obs.DomainSim, obs.ComputeTrack(n), "compute "+strconv.Itoa(n))
		}
		if p.Platform.SharedLinkBW > 0 {
			e.tr.NameTrack(obs.DomainSim, obs.TrackLink, "wide-area link")
		}
	}
	for range p.Platform.Storage {
		e.storageTL = append(e.storageTL, gantt.NewTimeline())
	}
	for range p.Platform.Compute {
		e.computeTL = append(e.computeTL, gantt.NewTimeline())
	}
	if p.Platform.SharedLinkBW > 0 {
		e.linkTL = gantt.NewTimeline()
	}
	nf := p.Batch.NumFiles()
	if traced {
		e.trace = &gantt.Schedule{
			Storage:  e.storageTL,
			Compute:  e.computeTL,
			Link:     e.linkTL,
			DiskCap:  make([]int64, p.Platform.NumCompute()),
			InitUsed: make([]int64, p.Platform.NumCompute()),
			InitHeld: make([][]int, p.Platform.NumCompute()),
		}
		for n := range p.Platform.Compute {
			e.trace.DiskCap[n] = p.Platform.Compute[n].DiskSpace
			e.trace.InitUsed[n] = st.Used(n)
		}
	}
	e.avail = make([][]float64, p.Platform.NumCompute())
	e.holders = make([][]int32, nf)
	for n := range e.avail {
		e.avail[n] = make([]float64, nf)
		for f := range e.avail[n] {
			if st.Holds(n, batch.FileID(f)) {
				e.avail[n][f] = 0
				e.holders[f] = append(e.holders[f], int32(n)) // n ascends: stays sorted
				if e.trace != nil {
					e.trace.InitHeld[n] = append(e.trace.InitHeld[n], f)
				}
			} else {
				e.avail[n][f] = -1
			}
		}
	}
	if plan.Pinned {
		e.planned = make(map[stageKey]Staging, len(plan.Staging))
		for _, s := range plan.Staging {
			e.planned[stageKey{s.File, s.Dest}] = s
		}
	}
	for _, t := range plan.Tasks {
		n, ok := plan.Node[t]
		if !ok {
			return nil, fmt.Errorf("core: plan contains task %d with no node assignment", t)
		}
		if n < 0 || n >= p.Platform.NumCompute() {
			return nil, fmt.Errorf("core: task %d assigned to unknown node %d", t, n)
		}
		if st.Done[t] {
			return nil, fmt.Errorf("core: task %d already executed", t)
		}
	}
	return e, nil
}

// schedEnv abstracts committed vs tentative scheduling so the same
// staging logic serves both ECT estimation and the final commit.
type schedEnv struct {
	e      *executor
	commit bool
	// overlays (tentative mode only), keyed by underlying timeline.
	overlays map[*gantt.Timeline]*gantt.Overlay
	// dirty lists the overlays that received tentative reservations, so
	// a reused env can clear exactly those instead of rebuilding the
	// map.
	dirty []*gantt.Overlay
	// scratch availability additions (tentative mode only), with
	// scratchByFile as its per-file ascending-node inverse (the
	// tentative counterpart of executor.holders).
	scratch       map[stageKey]float64
	scratchByFile map[batch.FileID][]int32
	visiting      map[stageKey]bool
	// alts holds the source alternatives bestSource evaluated for the
	// transfer about to commit (journaled commit mode only); the
	// commit consumes and clears it.
	alts []journal.SourceAlt
	// floor is the earliest time any slot search may start (tentative
	// twin planning only: a twin's transfers cannot begin before the
	// watchdog forked it). Zero for every other env.
	floor float64
	// record, when non-nil, captures each tentatively scheduled
	// transfer so the twin-commit path can replay the exact slots.
	record *[]specOp
	// remoteRes is the scratch buffer remoteResources hands to
	// multiSlot, reused across the millions of source probes a large
	// batch issues.
	remoteRes []gantt.SlotSearcher
	// dynamicOnly forces dynamic (min-TCT) source choice even under a
	// pinned plan: twin staging is not part of the IP plan, and
	// single-hop dynamic transfers keep the recorded ops replayable.
	dynamicOnly bool
}

func newSchedEnv(e *executor, commit bool) *schedEnv {
	v := &schedEnv{e: e, commit: commit, visiting: make(map[stageKey]bool)}
	if !commit {
		v.overlays = make(map[*gantt.Timeline]*gantt.Overlay)
		v.scratch = make(map[stageKey]float64)
		v.scratchByFile = make(map[batch.FileID][]int32)
	}
	return v
}

// tentativeEnv returns the executor's cached probe environment,
// cleared for a fresh tentative scheduling pass. Only the overlays
// that were actually dirtied and the scratch entries that were added
// get reset, so back-to-back probes cost no allocation.
func (e *executor) tentativeEnv() *schedEnv {
	v := e.tentEnv
	if v == nil {
		v = newSchedEnv(e, false)
		e.tentEnv = v
		return v
	}
	for _, ov := range v.dirty {
		ov.Clear()
	}
	v.dirty = v.dirty[:0]
	clear(v.scratch)
	clear(v.scratchByFile)
	clear(v.visiting)
	return v
}

func (v *schedEnv) availOn(n int, f batch.FileID) (float64, bool) {
	if a := v.e.avail[n][f]; a >= 0 {
		return a, true
	}
	if !v.commit {
		if a, ok := v.scratch[stageKey{f, n}]; ok {
			return a, true
		}
	}
	return 0, false
}

func (v *schedEnv) setAvail(n int, f batch.FileID, at float64) {
	if v.commit {
		if v.e.avail[n][f] < 0 {
			v.e.addHolder(f, n)
		}
		v.e.avail[n][f] = at
		return
	}
	key := stageKey{f, n}
	if _, ok := v.scratch[key]; !ok {
		lst := v.scratchByFile[f]
		i := sort.Search(len(lst), func(i int) bool { return lst[i] >= int32(n) })
		lst = append(lst, 0)
		copy(lst[i+1:], lst[i:])
		lst[i] = int32(n)
		v.scratchByFile[f] = lst
	}
	v.scratch[key] = at
}

// addHolder records node n as a committed holder of f, preserving the
// ascending order of the per-file list.
func (e *executor) addHolder(f batch.FileID, n int) {
	lst := e.holders[f]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= int32(n) })
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = int32(n)
	e.holders[f] = lst
}

func (v *schedEnv) searcher(tl *gantt.Timeline) gantt.SlotSearcher {
	if v.commit {
		return tl
	}
	ov, ok := v.overlays[tl]
	if !ok {
		ov = gantt.NewOverlay(tl)
		v.overlays[tl] = ov
	}
	return ov
}

func (v *schedEnv) reserve(tl *gantt.Timeline, start, dur float64, tag int32) {
	if v.commit {
		tl.Reserve(start, dur, tag)
		return
	}
	ov, ok := v.overlays[tl]
	if !ok {
		ov = gantt.NewOverlay(tl)
		v.overlays[tl] = ov
	}
	if ov.TentativeLen() == 0 {
		v.dirty = append(v.dirty, ov)
	}
	ov.Add(start, dur)
}

// ensureFile makes file f available on compute node dst, scheduling
// whatever transfer chain is needed, and returns its availability
// time. In pinned mode the plan's source choice is followed (with
// fallback to dynamic choice on cycles or missing entries); otherwise
// the source with minimum transfer completion time wins, per §6.
func (v *schedEnv) ensureFile(f batch.FileID, dst int) (float64, error) {
	if at, ok := v.availOn(dst, f); ok {
		return at, nil
	}
	key := stageKey{f, dst}
	if v.visiting[key] {
		// Replication cycle in a pinned plan; break it with a remote
		// transfer.
		return v.remoteTransfer(f, dst)
	}
	v.visiting[key] = true
	defer delete(v.visiting, key)

	if v.e.plan.Pinned && !v.dynamicOnly {
		if op, ok := v.e.planned[key]; ok {
			if op.Kind == Remote || v.e.st.P.DisableReplication {
				return v.remoteTransfer(f, dst)
			}
			srcAt, err := v.ensureFile(f, op.Src)
			if err != nil {
				return 0, err
			}
			return v.replicaTransfer(f, op.Src, dst, srcAt)
		}
		// No planned movement for a file a task needs here: the plan is
		// incomplete (should not happen for IP-feasible plans); fall
		// through to dynamic choice.
	}

	// Dynamic choice: min transfer completion time over the remote
	// source and every node already holding (or scheduled to receive)
	// the file.
	bestSrc, _, _ := v.bestSource(f, dst)
	if bestSrc < 0 {
		return v.remoteTransfer(f, dst)
	}
	srcAt, _ := v.availOn(bestSrc, f)
	return v.replicaTransfer(f, bestSrc, dst, srcAt)
}

// bestSource evaluates every possible source of file f for node dst
// against the current Gantt view and returns the one with minimum
// transfer completion time (src = -1 means remote from the file's
// storage home), without reserving anything.
func (v *schedEnv) bestSource(f batch.FileID, dst int) (src int, start, tct float64) {
	pf := v.e.st.P.Platform
	home := v.e.st.P.Batch.Files[f].Home
	size := v.e.st.P.Batch.FileSize(f)
	src = -1
	dur := float64(size) / pf.RemoteBW(home, dst)
	start = v.multiSlot(0, dur, v.remoteResources(home, dst)...)
	tct = start + dur
	record := v.commit && v.e.st.J.Enabled()
	if record {
		v.alts = append(v.alts[:0], journal.SourceAlt{Src: -1, TCT: tct})
	}
	if v.e.st.P.DisableReplication {
		return src, start, tct
	}
	// Visit only the nodes that hold (or are tentatively scheduled to
	// receive) the file, merging the two ascending holder lists so the
	// node order — and therefore every tie-break and journal entry — is
	// exactly the filtered 0..C-1 scan this replaces.
	hs := v.e.holders[f]
	var ts []int32
	if !v.commit {
		ts = v.scratchByFile[f]
	}
	hi, ti := 0, 0
	for hi < len(hs) || ti < len(ts) {
		var j int
		if hi < len(hs) && (ti >= len(ts) || hs[hi] <= ts[ti]) {
			j = int(hs[hi])
			hi++
		} else {
			j = int(ts[ti])
			ti++
		}
		if j == dst {
			continue
		}
		at, ok := v.availOn(j, f)
		if !ok {
			continue
		}
		rdur := float64(size) / pf.ReplicaBW(j, dst)
		if !record && at+rdur >= tct-1e-12 {
			// rstart ≥ at, so rtct ≥ at+rdur: this source cannot win the
			// strict rtct < tct-1e-12 test below. Skip its slot search —
			// unless the journal needs the exact TCT for the alts list.
			continue
		}
		rstart := v.multiSlot(at, rdur, v.searcher(v.e.computeTL[j]), v.searcher(v.e.computeTL[dst]))
		rtct := rstart + rdur
		if record {
			v.alts = append(v.alts, journal.SourceAlt{Src: j, TCT: rtct})
		}
		if rtct < tct-1e-12 {
			src, start, tct = j, rstart, rtct
		}
	}
	return src, start, tct
}

// probeTCT returns the minimum transfer completion time for staging f
// onto dst against the current view, without reserving.
func (v *schedEnv) probeTCT(f batch.FileID, dst int) float64 {
	_, _, tct := v.bestSource(f, dst)
	return tct
}

// remoteResources returns the slot-search resources a remote staging
// contends on. The returned slice aliases a per-env scratch buffer —
// valid only until the next remoteResources call, which every caller
// respects by spreading it straight into multiSlot.
func (v *schedEnv) remoteResources(home, dst int) []gantt.SlotSearcher {
	res := append(v.remoteRes[:0], v.searcher(v.e.storageTL[home]), v.searcher(v.e.computeTL[dst]))
	if v.e.linkTL != nil {
		res = append(res, v.searcher(v.e.linkTL))
	}
	v.remoteRes = res
	return res
}

func (v *schedEnv) multiSlot(after, dur float64, res ...gantt.SlotSearcher) float64 {
	if after < v.floor {
		after = v.floor
	}
	return gantt.MultiSlot(after, dur, res...)
}

func (v *schedEnv) remoteTransfer(f batch.FileID, dst int) (float64, error) {
	p := v.e.st.P
	home := p.Batch.Files[f].Home
	size := p.Batch.FileSize(f)
	dur := float64(size) / p.Platform.RemoteBW(home, dst)
	if v.commit {
		if v.e.inj != nil {
			return v.faultyTransfer(f, -1, dst, 0)
		}
		start := v.multiSlot(0, dur, v.remoteResources(home, dst)...)
		return v.commitRemote(f, home, dst, start, dur)
	}
	start := v.multiSlot(0, dur, v.remoteResources(home, dst)...)
	v.reserve(v.e.storageTL[home], start, dur, tagTransfer)
	v.reserve(v.e.computeTL[dst], start, dur, tagTransfer)
	if v.e.linkTL != nil {
		v.reserve(v.e.linkTL, start, dur, tagTransfer)
	}
	if v.record != nil {
		*v.record = append(*v.record, specOp{file: f, src: -1, dst: dst, start: start, dur: dur})
	}
	v.setAvail(dst, f, start+dur)
	return start + dur, nil
}

// emitStage journals one committed transfer, consuming the source
// alternatives bestSource captured for it (if any). src is -1 for
// remote stagings.
func (v *schedEnv) emitStage(f batch.FileID, src, dst int, kind string, start, dur float64, size int64) {
	e := v.e
	j := e.st.J
	if !j.Enabled() {
		return
	}
	cause := "task"
	switch {
	case e.specCause != "":
		cause = e.specCause
	case e.curTask < 0:
		cause = "prestage"
	case e.curAttempt > 1:
		cause = "retry"
	}
	alts := v.alts
	v.alts = nil
	b := e.base()
	j.Emit(journal.Event{T: b + start, Kind: journal.KindStage, Round: e.round, Stage: &journal.Stage{
		File: int(f), Dest: dst, Src: src, Home: e.st.P.Batch.Files[f].Home, Kind: kind,
		Start: b + start, End: b + start + dur, Bytes: size,
		Cause: cause, Task: e.curTask, Attempt: e.curAttempt, Alternatives: alts,
	}})
}

// commitRemote reserves and records a storage→compute staging whose
// slot [start, start+dur) has already been found.
func (v *schedEnv) commitRemote(f batch.FileID, home, dst int, start, dur float64) (float64, error) {
	size := v.e.st.P.Batch.FileSize(f)
	v.e.storageTL[home].Reserve(start, dur, tagTransfer)
	v.e.computeTL[dst].Reserve(start, dur, tagTransfer)
	if v.e.linkTL != nil {
		v.e.linkTL.Reserve(start, dur, tagTransfer)
	}
	if err := v.e.st.AddFile(dst, f, v.e.base()+start+dur); err != nil {
		return 0, err
	}
	v.e.stats.RemoteTransfers++
	v.e.stats.RemoteBytes += size
	if v.e.trace != nil {
		v.e.trace.Stages = append(v.e.trace.Stages, gantt.StageEvent{File: int(f), Node: dst, Avail: start + dur, Size: size})
	}
	if v.e.tr.Enabled() {
		b := v.e.base()
		name := "stage file " + strconv.Itoa(int(f))
		args := []obs.Arg{obs.A("file", int(f)), obs.A("bytes", size), obs.A("dst", dst)}
		v.e.tr.SimSpan(obs.StorageTrack(home), "remote", name, b+start, b+start+dur, args...)
		v.e.tr.SimSpan(obs.ComputeTrack(dst), "remote", name, b+start, b+start+dur, args...)
		if v.e.linkTL != nil {
			v.e.tr.SimSpan(obs.TrackLink, "remote", name, b+start, b+start+dur, args...)
		}
	}
	v.emitStage(f, -1, dst, "remote", start, dur, size)
	v.setAvail(dst, f, start+dur)
	return start + dur, nil
}

func (v *schedEnv) replicaTransfer(f batch.FileID, src, dst int, srcAt float64) (float64, error) {
	p := v.e.st.P
	size := p.Batch.FileSize(f)
	dur := float64(size) / p.Platform.ReplicaBW(src, dst)
	if v.commit {
		if v.e.inj != nil {
			return v.faultyTransfer(f, src, dst, srcAt)
		}
		start := v.multiSlot(srcAt, dur, v.searcher(v.e.computeTL[src]), v.searcher(v.e.computeTL[dst]))
		return v.commitReplica(f, src, dst, start, dur)
	}
	start := v.multiSlot(srcAt, dur, v.searcher(v.e.computeTL[src]), v.searcher(v.e.computeTL[dst]))
	v.reserve(v.e.computeTL[src], start, dur, tagTransfer)
	v.reserve(v.e.computeTL[dst], start, dur, tagTransfer)
	if v.record != nil {
		*v.record = append(*v.record, specOp{file: f, src: src, dst: dst, start: start, dur: dur})
	}
	v.setAvail(dst, f, start+dur)
	return start + dur, nil
}

// commitReplica reserves and records a compute→compute copy whose slot
// [start, start+dur) has already been found.
func (v *schedEnv) commitReplica(f batch.FileID, src, dst int, start, dur float64) (float64, error) {
	size := v.e.st.P.Batch.FileSize(f)
	v.e.computeTL[src].Reserve(start, dur, tagTransfer)
	v.e.computeTL[dst].Reserve(start, dur, tagTransfer)
	if err := v.e.st.AddFile(dst, f, v.e.base()+start+dur); err != nil {
		return 0, err
	}
	v.e.stats.ReplicaTransfers++
	v.e.stats.ReplicaBytes += size
	if v.e.trace != nil {
		v.e.trace.Stages = append(v.e.trace.Stages, gantt.StageEvent{File: int(f), Node: dst, Avail: start + dur, Size: size})
	}
	if v.e.tr.Enabled() {
		b := v.e.base()
		name := "replicate file " + strconv.Itoa(int(f))
		args := []obs.Arg{obs.A("file", int(f)), obs.A("bytes", size), obs.A("src", src), obs.A("dst", dst)}
		v.e.tr.SimSpan(obs.ComputeTrack(src), "replica", name, b+start, b+start+dur, args...)
		v.e.tr.SimSpan(obs.ComputeTrack(dst), "replica", name, b+start, b+start+dur, args...)
	}
	v.emitStage(f, src, dst, "replica", start, dur, size)
	v.setAvail(dst, f, start+dur)
	return start + dur, nil
}

// survivingReplica picks the retry source for staging f onto dst
// after a failed attempt: among nodes already holding the file it
// returns the one whose copy would complete earliest without the
// source crashing first. ok is false when no replica survives (the
// retry then falls back to the storage cluster).
func (v *schedEnv) survivingReplica(f batch.FileID, dst int, after float64) (src int, start, dur float64, ok bool) {
	e := v.e
	p := e.st.P
	if p.DisableReplication {
		return -1, 0, 0, false
	}
	size := p.Batch.FileSize(f)
	best := math.Inf(1)
	src = -1
	// Same merged holder-list walk as bestSource: only nodes with a
	// committed (or, in tentative envs, scheduled) copy are visited, in
	// ascending node order.
	hs := e.holders[f]
	var ts []int32
	if !v.commit {
		ts = v.scratchByFile[f]
	}
	hi, ti := 0, 0
	for hi < len(hs) || ti < len(ts) {
		var j int
		if hi < len(hs) && (ti >= len(ts) || hs[hi] <= ts[ti]) {
			j = int(hs[hi])
			hi++
		} else {
			j = int(ts[ti])
			ti++
		}
		if j == dst {
			continue
		}
		at, held := v.availOn(j, f)
		if !held {
			continue
		}
		jdur := float64(size) / p.Platform.ReplicaBW(j, dst)
		jstart := v.multiSlot(math.Max(after, at), jdur, v.searcher(e.computeTL[j]), v.searcher(e.computeTL[dst]))
		end := jstart + jdur
		if end > e.crashRel[j] {
			continue // source dies before the copy completes
		}
		if end < best {
			best, src, start, dur = end, j, jstart, jdur
		}
	}
	return src, start, dur, src >= 0
}

// faultyTransfer is the transfer commit path under fault injection:
// each attempt draws crash and link failures against its stable
// identity; a failed attempt burns a preempted reservation
// [start, failAt) on the ports it occupied, backs off, and retries —
// preferring a surviving replica source (the paper's replication
// doubling as the recovery path) before the storage cluster. src is
// the first attempt's source (-1 = remote), srcAt its availability
// floor. Exhausted retries or a destination crash abort the task
// commit with a faultAbort.
func (v *schedEnv) faultyTransfer(f batch.FileID, src, dst int, srcAt float64) (float64, error) {
	e := v.e
	p := e.st.P
	inj := e.inj
	size := p.Batch.FileSize(f)
	home := p.Batch.Files[f].Home
	after := 0.0
	for attempt := 1; attempt <= inj.MaxTransferRetries(); attempt++ {
		curSrc := src
		var start, dur float64
		if attempt > 1 {
			// Alternatives captured for the first attempt's source choice
			// no longer describe this retry's decision.
			v.alts = nil
			var ok bool
			curSrc, start, dur, ok = v.survivingReplica(f, dst, after)
			if !ok {
				curSrc = -1
			}
		} else if curSrc >= 0 {
			dur = float64(size) / p.Platform.ReplicaBW(curSrc, dst)
			start = v.multiSlot(math.Max(after, srcAt), dur, v.searcher(e.computeTL[curSrc]), v.searcher(e.computeTL[dst]))
		}
		if curSrc < 0 {
			dur = float64(size) / p.Platform.RemoteBW(home, dst)
			start = v.multiSlot(after, dur, v.remoteResources(home, dst)...)
		}
		end := start + dur

		// Earliest failure among destination crash, source crash, and
		// the link draw decides the attempt's fate.
		failAt := math.Inf(1)
		crashedNode := -1
		if c := e.crashRel[dst]; c < end {
			failAt, crashedNode = c, dst
		}
		if curSrc >= 0 {
			if c := e.crashRel[curSrc]; c < end && c < failAt {
				failAt, crashedNode = c, curSrc
			}
		}
		if frac, bad := inj.TransferFail(int(f), dst, curSrc, e.round, attempt); bad {
			if at := start + frac*dur; at < failAt {
				failAt, crashedNode = at, -1
			}
		}
		if math.IsInf(failAt, 1) {
			e.curAttempt = attempt
			at, err := 0.0, error(nil)
			if curSrc >= 0 {
				at, err = v.commitReplica(f, curSrc, dst, start, dur)
			} else {
				at, err = v.commitRemote(f, home, dst, start, dur)
			}
			e.curAttempt = 0
			if err != nil {
				return 0, err
			}
			if attempt > 1 && curSrc >= 0 {
				e.stats.ReplicaRecoveries++
			}
			return at, nil
		}

		// The attempt dies at failAt: burn the started portion as a
		// preempted reservation so the recovery schedule stays honest
		// about port occupancy. No StageEvent is recorded — the file
		// never arrived.
		if failAt < start {
			failAt = start
		}
		e.stats.TransferFailures++
		e.stats.WastedSeconds += failAt - start
		if failAt > start {
			if curSrc >= 0 {
				e.computeTL[curSrc].Reserve(start, failAt-start, tagFault)
			} else {
				e.storageTL[home].Reserve(start, failAt-start, tagFault)
				if e.linkTL != nil {
					e.linkTL.Reserve(start, failAt-start, tagFault)
				}
			}
			e.computeTL[dst].Reserve(start, failAt-start, tagFault)
		}
		if e.tr.Enabled() {
			b := e.base()
			e.tr.SimSpan(obs.ComputeTrack(dst), "fault", "failed stage file "+strconv.Itoa(int(f)),
				b+start, b+failAt,
				obs.A("file", int(f)), obs.A("attempt", attempt), obs.A("src", curSrc))
		}
		if j := e.st.J; j.Enabled() {
			detail := "link failure mid-transfer"
			switch crashedNode {
			case dst:
				detail = "destination node crashed mid-transfer"
			case curSrc:
				if crashedNode >= 0 {
					detail = "source replica node crashed mid-transfer"
				}
			}
			srcDesc := "storage home " + strconv.Itoa(home)
			if curSrc >= 0 {
				srcDesc = "replica on node " + strconv.Itoa(curSrc)
			}
			j.Emit(journal.Event{T: e.base() + failAt, Kind: journal.KindFault, Round: e.round,
				Fault: &journal.Fault{Class: journal.FaultTransferFail, Node: dst, Task: e.curTask,
					File: int(f), Attempt: attempt, Detail: detail + " (from " + srcDesc + ")"}})
		}
		if crashedNode >= 0 {
			e.crashSeen[crashedNode] = true
		}
		if crashedNode == dst {
			return 0, &faultAbort{node: dst, at: failAt, crash: true,
				reason: fmt.Sprintf("node %d crashed while staging file %d", dst, f)}
		}
		e.stats.TransferRetries++
		after = failAt + inj.Backoff(attempt+1)
	}
	return 0, &faultAbort{node: dst, at: after,
		reason: fmt.Sprintf("staging file %d onto node %d: all %d transfer attempts failed", f, dst, inj.MaxTransferRetries())}
}

// base returns the absolute sim time at the start of this sub-batch.
func (e *executor) base() float64 { return e.st.Clock }

// scheduleTask stages task t's missing files (greedy min-TCT order,
// per §6) and then places its execution; it returns the task's
// completion time. With commit=false everything happens on overlays.
func (e *executor) scheduleTask(t batch.TaskID, commit bool) (float64, error) {
	var v *schedEnv
	if commit {
		v = newSchedEnv(e, true)
		e.curTask = int(t)
	} else {
		v = e.tentativeEnv()
	}
	c := e.plan.Node[t]
	task := &e.st.P.Batch.Tasks[t]

	// Stage missing files. §6 picks the file with minimum TCT first,
	// recomputes, and repeats; since transfers to one node serialize on
	// its port, scheduling shorter-TCT transfers first is what the
	// greedy order achieves. We emulate it by repeatedly choosing the
	// cheapest remaining file.
	remaining := e.remainingBuf[:0]
	arrival := 0.0
	for _, f := range task.Files {
		if at, ok := v.availOn(c, f); ok {
			if at > arrival {
				arrival = at
			}
			continue
		}
		remaining = append(remaining, f)
	}
	for len(remaining) > 0 {
		// §6: estimate the TCT of every remaining input file against
		// the current Gantt view, tentatively schedule the minimum,
		// recompute the rest, and repeat. In pinned (IP-plan) mode the
		// source is dictated and may involve realizing a replication
		// chain, which probing cannot price without side effects, so
		// files are taken in ascending-size order there (the same
		// order min-TCT produces on an otherwise idle port).
		best := 0
		if e.plan.Pinned {
			for i := 1; i < len(remaining); i++ {
				if e.st.P.Batch.FileSize(remaining[i]) < e.st.P.Batch.FileSize(remaining[best]) {
					best = i
				}
			}
		} else {
			bestTCT := math.Inf(1)
			for i, f := range remaining {
				if tct := v.probeTCT(f, c); tct < bestTCT {
					bestTCT, best = tct, i
				}
			}
		}
		f := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		at, err := v.ensureFile(f, c)
		if err != nil {
			e.remainingBuf = remaining[:0]
			return 0, err
		}
		if at > arrival {
			arrival = at
		}
	}
	e.remainingBuf = remaining[:0]

	// Execute: local read of all inputs plus computation, on the
	// node's port (no staging overlaps execution).
	var bytes int64
	for _, f := range task.Files {
		bytes += e.st.P.Batch.FileSize(f)
	}
	baseDur := float64(bytes)/e.st.P.Platform.Compute[c].LocalReadBW + task.Compute
	execDur := baseDur
	stragFactor := 0.0
	if commit && e.inj != nil {
		// Stragglers stretch only the committed execution; ECT
		// estimation stays fault-blind so tentative ordering is
		// identical at any worker count.
		if factor := e.inj.Straggler(int(t), e.round); factor > 1 {
			execDur *= factor
			e.stats.Stragglers++
			stragFactor = factor
		}
	}
	start := v.searcher(e.computeTL[c]).EarliestSlot(arrival, execDur)
	if stragFactor > 1 {
		if j := e.st.J; j.Enabled() {
			j.Emit(journal.Event{T: e.base() + start, Kind: journal.KindFault, Round: e.round,
				Fault: &journal.Fault{Class: journal.FaultStraggler, Node: c, Task: int(t), File: -1,
					Factor: stragFactor, Detail: "execution stretched by straggling node"}})
		}
	}
	if commit && e.specOn() {
		// The watchdog may fork a duplicate attempt; when it does, the
		// speculation path owns the whole commit (winner, cancellation,
		// crash handling). When it does not fire, fall through to the
		// exact pre-speculation path below.
		if handled, end, err := e.trySpeculate(v, t, c, task, start, execDur, baseDur); handled || err != nil {
			return end, err
		}
	}
	if commit && e.inj != nil {
		if crashAt := e.crashRel[c]; start+execDur > crashAt {
			// Node c dies before this execution completes: burn the
			// started portion and hand the task back for re-queueing.
			if start < crashAt {
				e.computeTL[c].Reserve(start, crashAt-start, tagFault)
				e.stats.WastedSeconds += crashAt - start
				if e.tr.Enabled() {
					b := e.base()
					e.tr.SimSpan(obs.ComputeTrack(c), "fault", "killed task "+strconv.Itoa(int(t)),
						b+start, b+crashAt, obs.A("task", int(t)), obs.A("node", c))
				}
			}
			e.crashSeen[c] = true
			return 0, &faultAbort{node: c, at: crashAt, crash: true,
				reason: fmt.Sprintf("node %d crashed during task %d execution", c, t)}
		}
	}
	if commit {
		e.commitExec(t, c, task, start, execDur)
	}
	return start + execDur, nil
}

// commitExec books task t's execution [start, start+dur) on node c
// and records every side effect of a completed task: Done marking,
// file touches, trace/journal emissions.
func (e *executor) commitExec(t batch.TaskID, c int, task *batch.Task, start, dur float64) {
	e.computeTL[c].Reserve(start, dur, tagExec)
	e.st.Done[t] = true
	e.stats.TasksRun++
	for _, f := range task.Files {
		e.st.Touch(c, f, e.base()+start+dur)
	}
	if e.trace != nil {
		inputs := make([]int, len(task.Files))
		for i, f := range task.Files {
			inputs[i] = int(f)
		}
		e.trace.Tasks = append(e.trace.Tasks, gantt.TaskEvent{Task: int(t), Node: c, Start: start, End: start + dur, Inputs: inputs})
	}
	if e.tr.Enabled() {
		b := e.base()
		e.tr.SimSpan(obs.ComputeTrack(c), "exec", "task "+strconv.Itoa(int(t)),
			b+start, b+start+dur,
			obs.A("task", int(t)), obs.A("node", c), obs.A("inputs", len(task.Files)))
	}
	if j := e.st.J; j.Enabled() {
		b := e.base()
		inputs := make([]int, len(task.Files))
		for i, f := range task.Files {
			inputs[i] = int(f)
		}
		j.Emit(journal.Event{T: b + start, Kind: journal.KindExec, Round: e.round, Exec: &journal.Exec{
			Task: int(t), Node: c, Start: b + start, End: b + start + dur, Inputs: inputs}})
	}
}

// specOp is one tentatively scheduled twin transfer, recorded so the
// winner-resolution path can replay the exact slot. src is -1 for a
// remote (storage) transfer.
type specOp struct {
	file       batch.FileID
	src, dst   int
	start, dur float64
}

// twinPlan is a fully planned speculative duplicate attempt of one
// task: the twin host, the transfers that stage its missing inputs,
// and its execution window. end is the twin's projected completion.
type twinPlan struct {
	node               int
	ops                []specOp
	execStart, execDur float64
	end                float64
}

// specOn reports whether this run forks speculative twins: it needs
// both an active policy and an injector (without stragglers there is
// nothing to mitigate, and thresholds derive from the injector's
// straggler distribution).
func (e *executor) specOn() bool { return e.pol.Active() && e.inj != nil }

// plannedBytesOutstanding returns the bytes node j must still receive
// for the missing inputs of its not-yet-done assigned tasks (each
// file counted once). The twin capacity guard subtracts it from Free
// so a forked duplicate can never eat disk space a later commit on j
// relies on.
func (e *executor) plannedBytesOutstanding(j int) int64 {
	var sum int64
	seen := make(map[batch.FileID]bool)
	for _, t := range e.plan.Tasks {
		if e.plan.Node[t] != j || e.st.Done[t] {
			continue
		}
		for _, f := range e.st.P.Batch.Tasks[t].Files {
			if e.avail[j][f] >= 0 || seen[f] {
				continue
			}
			seen[f] = true
			sum += e.st.P.Batch.FileSize(f)
		}
	}
	return sum
}

// planTwin tentatively schedules a duplicate attempt of task t on
// node j, forked at forkT while the primary still occupies node c
// over [primStart, primStart+primDur). Everything happens on
// overlays; the recorded ops let the winner-resolution path replay
// exactly the slots that were planned. Twin staging is always dynamic
// and single-hop (min-TCT over current holders and the storage home)
// and floored at the fork time — a twin cannot move data before it
// exists.
func (e *executor) planTwin(t batch.TaskID, task *batch.Task, j, c int, forkT, primStart, primDur float64) twinPlan {
	var ops []specOp
	v := newSchedEnv(e, false)
	v.floor = forkT
	v.dynamicOnly = true
	v.record = &ops
	// The primary keeps executing while the twin races it: its full
	// stretched window occupies node c in the twin's view, so copies
	// sourced from c queue behind it.
	v.reserve(e.computeTL[c], primStart, primDur, tagExec)
	// A copy must complete before its source node crashes (the same
	// rule survivingReplica applies on the retry path): block every
	// crash-doomed node's port from its crash time onward, so copies
	// that cannot fit before the crash price out of bestSource and a
	// twin never sources data from a dead node.
	const specFar = 1e18
	for j2 := range e.computeTL {
		if j2 == j {
			continue
		}
		if ca := e.crashRel[j2]; !math.IsInf(ca, 1) {
			if ca < 0 {
				ca = 0
			}
			v.reserve(e.computeTL[j2], ca, specFar, tagFault)
		}
	}

	arrival := 0.0
	remaining := make([]batch.FileID, 0, len(task.Files))
	for _, f := range task.Files {
		if at, ok := v.availOn(j, f); ok {
			if at > arrival {
				arrival = at
			}
			continue
		}
		remaining = append(remaining, f)
	}
	for len(remaining) > 0 {
		best := 0
		bestTCT := math.Inf(1)
		for i, f := range remaining {
			if tct := v.probeTCT(f, j); tct < bestTCT {
				bestTCT, best = tct, i
			}
		}
		f := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		// Tentative scheduling cannot fail: the fault paths are
		// commit-only.
		at, _ := v.ensureFile(f, j)
		if at > arrival {
			arrival = at
		}
	}

	var bytes int64
	for _, f := range task.Files {
		bytes += e.st.P.Batch.FileSize(f)
	}
	// The twin draws its own straggler luck through disjoint hash
	// domains: forking never perturbs any primary-path draw.
	dur := (float64(bytes)/e.st.P.Platform.Compute[j].LocalReadBW + task.Compute) * e.inj.SpecStraggler(int(t), e.round)
	exStart := v.searcher(e.computeTL[j]).EarliestSlot(math.Max(arrival, forkT), dur)
	return twinPlan{node: j, ops: ops, execStart: exStart, execDur: dur, end: exStart + dur}
}

// commitTwinOps replays the twin's recorded transfer ops against the
// committed timelines. Ops finishing by stopT commit as real stagings
// with journaled cause "spec" (the copies persist — even a losing
// twin leaves useful replicas behind); ops in flight at stopT are
// cancelled: the occupied port time burns as tag-fault reservations
// and the staging is rolled back through State (AddFile then Unstage)
// so the disk cache never shows a half-arrived file. Ops not yet
// started at stopT vanish. Returns the burnt port-seconds and whether
// any op had started.
func (e *executor) commitTwinOps(bp twinPlan, stopT float64) (waste float64, started bool, err error) {
	v := newSchedEnv(e, true)
	for _, op := range bp.ops {
		if op.start >= stopT {
			continue
		}
		started = true
		if op.start+op.dur <= stopT {
			if op.src >= 0 {
				_, err = v.commitReplica(op.file, op.src, op.dst, op.start, op.dur)
			} else {
				_, err = v.commitRemote(op.file, e.st.P.Batch.Files[op.file].Home, op.dst, op.start, op.dur)
			}
			if err != nil {
				return waste, started, err
			}
			continue
		}
		cut := stopT - op.start
		if op.src >= 0 {
			e.computeTL[op.src].Reserve(op.start, cut, tagFault)
		} else {
			e.storageTL[e.st.P.Batch.Files[op.file].Home].Reserve(op.start, cut, tagFault)
			if e.linkTL != nil {
				e.linkTL.Reserve(op.start, cut, tagFault)
			}
		}
		e.computeTL[op.dst].Reserve(op.start, cut, tagFault)
		if err = e.st.AddFile(op.dst, op.file, e.base()+stopT); err != nil {
			return waste, started, err
		}
		e.st.Unstage(op.dst, op.file)
		waste += cut
		if e.tr.Enabled() {
			b := e.base()
			e.tr.SimSpan(obs.ComputeTrack(op.dst), "fault", "cancelled spec stage file "+strconv.Itoa(int(op.file)),
				b+op.start, b+stopT, obs.A("file", int(op.file)), obs.A("dst", op.dst))
		}
	}
	return waste, started, nil
}

// trySpeculate is the watchdog hook on the commit path: when task t's
// committed (straggler-stretched) execution runs past the policy
// threshold, it forks a duplicate attempt on the best other node,
// resolves the first-finisher race, commits the winner and cancels
// the loser. It reports handled=false when the watchdog does not fire
// (or no twin host fits), in which case the caller proceeds down the
// exact pre-speculation path.
func (e *executor) trySpeculate(v *schedEnv, t batch.TaskID, c int, task *batch.Task, start, execDur, baseDur float64) (handled bool, end float64, err error) {
	thr := e.pol.Threshold(baseDur, e.inj.StragglerDist())
	if math.IsInf(thr, 1) {
		return false, 0, nil
	}
	// The watchdog only monitors attempts that actually start. A task
	// whose node is already down at its start time never begins
	// executing — detecting that is the failure detector's job, and
	// the ordinary abort/requeue path handles it (letting the
	// scheduler re-place the task instead of burning a threshold wait
	// on a node known to be dead).
	if e.crashRel[c] <= start {
		return false, 0, nil
	}
	// The watchdog fires iff the primary has not reported completion
	// by start+thr: either its stretched execution runs past the
	// threshold, or its node crashes mid-run and the attempt never
	// finishes at all (the watchdog cannot tell the two apart — a
	// silent task is a silent task).
	if primAlive := start+execDur <= e.crashRel[c]; primAlive && execDur <= thr {
		return false, 0, nil
	}
	// Duplicating a merely-slow (but live) primary trades port time
	// for latency: the pair always burns more total port time than
	// letting the straggler finish, so mid-batch — when every port the
	// twin could take still has useful work queued behind it — the
	// trade loses and the watchdog stands down. It pays only in the
	// drain phase (fewer waiting tasks than ports, the same
	// near-completion gate Hadoop-style speculation uses), where the
	// twin rides a port that would otherwise idle and a win shortens
	// the sub-batch tail directly. Crash-killed primaries are exempt:
	// their alternative is a requeue into a later sub-batch, which is
	// strictly worse than any finite twin.
	if start+execDur <= e.crashRel[c] && e.drainLeft >= len(e.computeTL) {
		return false, 0, nil
	}
	forkT := start + thr

	primEnd := start + execDur
	primAlive := primEnd <= e.crashRel[c]

	// A fork is only worthwhile if the twin can plausibly win the
	// race. Conditioned on "still silent at the threshold", a live
	// primary finishes uniformly within (thr, F·baseDur] — so a twin
	// projected past the conditional mean (thr + F·baseDur)/2 is a bad
	// bet: forking it would burn another node's port for an expected
	// loss. This prices out twins on saturated ports or with expensive
	// staging, leaving the forks that matter — stragglers in the batch
	// tail, duplicated onto nodes that are idle and already cache the
	// inputs. A dead primary never finishes, so any finite twin
	// rescues the task and no bound applies.
	limit := math.Inf(1)
	if primAlive {
		limit = start + (thr+e.inj.StragglerDist().Factor*baseDur)/2
	}

	// Pick the twin host: every other node is scored by the projected
	// completion of a tentatively planned duplicate (inputs already
	// cached count for free; missing ones stage dynamically, no
	// earlier than the fork). Nodes the failure detector knows are
	// dead at fork time, or whose disk cannot hold the missing inputs
	// on top of what pending commits still need, are recorded as
	// non-fitting candidates.
	var cands []journal.Candidate
	best := -1
	var bp twinPlan
	for j := range e.computeTL {
		if j == c {
			continue
		}
		if e.crashRel[j] <= forkT {
			cands = append(cands, journal.Candidate{Node: j, Fits: false})
			continue
		}
		var missing int64
		for _, f := range task.Files {
			if e.avail[j][f] < 0 {
				missing += e.st.P.Batch.FileSize(f)
			}
		}
		if missing > e.st.Free(j)-e.plannedBytesOutstanding(j) {
			cands = append(cands, journal.Candidate{Node: j, Fits: false})
			continue
		}
		tp := e.planTwin(t, task, j, c, forkT, start, execDur)
		cands = append(cands, journal.Candidate{Node: j, Score: e.base() + tp.end, Fits: true})
		if tp.end < limit && (best < 0 || tp.end < bp.end) {
			best, bp = j, tp
		}
	}
	if best < 0 {
		return false, 0, nil // no twin host worth forking; the ordinary path decides the task's fate
	}

	b := e.base()
	twinEnd := bp.end
	twinAlive := twinEnd <= e.crashRel[best]
	e.stats.SpecLaunches++
	if j := e.st.J; j.Enabled() {
		j.Emit(journal.Event{T: b + forkT, Kind: journal.KindSpecLaunch, Round: e.round, Spec: &journal.Spec{
			Task: int(t), Node: c, Twin: best, Policy: e.pol.String(), Threshold: thr, Candidates: cands,
			Reason: fmt.Sprintf("task %d still running on node %d %.4gs after start (threshold %.4gs, policy %s): forked twin on node %d",
				t, c, execDur, thr, e.pol, best)}})
	}
	if e.tr.Enabled() {
		e.tr.SimInstant(obs.ComputeTrack(c), "spec", "fork twin of task "+strconv.Itoa(int(t)), b+forkT,
			obs.A("task", int(t)), obs.A("twin", best))
	}

	if twinAlive && (!primAlive || twinEnd < primEnd) {
		// Twin wins: cancel the primary at the twin's finish (or at
		// its own crash, whichever strikes first) and commit the twin
		// as the task's real execution.
		primStop := twinEnd
		crashKilled := false
		if e.crashRel[c] < primStop {
			primStop, crashKilled = e.crashRel[c], true
		}
		if primStop > start {
			e.computeTL[c].Reserve(start, primStop-start, tagFault)
			e.stats.SpecWastedSeconds += primStop - start
			if e.tr.Enabled() {
				e.tr.SimSpan(obs.ComputeTrack(c), "fault", "cancelled task "+strconv.Itoa(int(t)),
					b+start, b+primStop, obs.A("task", int(t)), obs.A("node", c))
			}
		}
		if crashKilled {
			e.crashSeen[c] = true
		}
		if !primAlive {
			e.stats.SpecSaved++
		}
		e.specCause = "spec"
		_, _, err := e.commitTwinOps(bp, math.Inf(1))
		e.specCause = ""
		if err != nil {
			return true, 0, err
		}
		e.commitExec(t, best, task, bp.execStart, bp.execDur)
		e.stats.SpecWins++
		e.stats.SpecCancels++
		if j := e.st.J; j.Enabled() {
			pe := b + primEnd
			if !primAlive {
				pe = -1
			}
			why := "primary attempt cancelled: twin finished first"
			if crashKilled {
				why = "primary crashed; twin completed the task"
			}
			j.Emit(journal.Event{T: b + twinEnd, Kind: journal.KindSpecWin, Round: e.round, Spec: &journal.Spec{
				Task: int(t), Node: c, Twin: best, Winner: "twin", PrimaryEnd: pe, TwinEnd: b + twinEnd,
				Reason: fmt.Sprintf("twin on node %d finished at %.4g; primary on node %d cancelled", best, b+twinEnd, c)}})
			j.Emit(journal.Event{T: b + primStop, Kind: journal.KindSpecCancel, Round: e.round, Spec: &journal.Spec{
				Task: int(t), Node: c, Twin: best, Winner: "twin", WastedS: primStop - start, Reason: why}})
		}
		return true, twinEnd, nil
	}

	if primAlive {
		// Primary wins (ties included): commit it exactly as the
		// pre-speculation path would have, then cancel the twin at the
		// primary's finish (or at the twin host's crash).
		e.commitExec(t, c, task, start, execDur)
		twinStop := primEnd
		twinCrashed := e.crashRel[best] < twinStop
		if twinCrashed {
			twinStop = e.crashRel[best]
		}
		e.specCause = "spec"
		waste, startedAny, err := e.commitTwinOps(bp, twinStop)
		e.specCause = ""
		if err != nil {
			return true, 0, err
		}
		if bp.execStart < twinStop {
			e.computeTL[best].Reserve(bp.execStart, twinStop-bp.execStart, tagFault)
			waste += twinStop - bp.execStart
			startedAny = true
			if e.tr.Enabled() {
				e.tr.SimSpan(obs.ComputeTrack(best), "fault", "cancelled twin of task "+strconv.Itoa(int(t)),
					b+bp.execStart, b+twinStop, obs.A("task", int(t)), obs.A("node", best))
			}
		}
		e.stats.SpecWastedSeconds += waste
		if twinCrashed && startedAny {
			e.crashSeen[best] = true
		}
		e.stats.SpecCancels++
		if j := e.st.J; j.Enabled() {
			te := b + twinEnd
			if !twinAlive {
				te = -1
			}
			why := "twin attempt cancelled: primary finished first"
			if twinCrashed {
				why = "twin host crashed; primary completed the task"
			}
			j.Emit(journal.Event{T: b + primEnd, Kind: journal.KindSpecWin, Round: e.round, Spec: &journal.Spec{
				Task: int(t), Node: c, Twin: best, Winner: "primary", PrimaryEnd: b + primEnd, TwinEnd: te,
				Reason: fmt.Sprintf("primary on node %d finished at %.4g; twin on node %d cancelled", c, b+primEnd, best)}})
			j.Emit(journal.Event{T: b + twinStop, Kind: journal.KindSpecCancel, Round: e.round, Spec: &journal.Spec{
				Task: int(t), Node: c, Twin: best, Winner: "primary", WastedS: waste, Reason: why}})
		}
		return true, primEnd, nil
	}

	// Both attempts die before finishing: burn both, cancel the twin,
	// and hand the task back exactly once (the run loop re-queues on
	// the single faultAbort, so a killed task with a twin in flight is
	// never double-requeued).
	crashAt := e.crashRel[c]
	if crashAt > start {
		e.computeTL[c].Reserve(start, crashAt-start, tagFault)
		e.stats.WastedSeconds += crashAt - start
		if e.tr.Enabled() {
			e.tr.SimSpan(obs.ComputeTrack(c), "fault", "killed task "+strconv.Itoa(int(t)),
				b+start, b+crashAt, obs.A("task", int(t)), obs.A("node", c))
		}
	}
	e.crashSeen[c] = true
	twinStop := e.crashRel[best]
	e.specCause = "spec"
	waste, startedAny, err := e.commitTwinOps(bp, twinStop)
	e.specCause = ""
	if err != nil {
		return true, 0, err
	}
	if bp.execStart < twinStop {
		e.computeTL[best].Reserve(bp.execStart, twinStop-bp.execStart, tagFault)
		waste += twinStop - bp.execStart
		startedAny = true
	}
	e.stats.SpecWastedSeconds += waste
	if startedAny {
		e.crashSeen[best] = true
	}
	e.stats.SpecCancels++
	if j := e.st.J; j.Enabled() {
		j.Emit(journal.Event{T: b + twinStop, Kind: journal.KindSpecCancel, Round: e.round, Spec: &journal.Spec{
			Task: int(t), Node: c, Twin: best, Winner: "none", PrimaryEnd: -1, TwinEnd: -1, WastedS: waste,
			Reason: "both attempts crash-killed; task re-queued"}})
	}
	return true, 0, &faultAbort{node: c, at: crashAt, crash: true,
		reason: fmt.Sprintf("node %d crashed during task %d execution; speculative twin on node %d also died", c, t, best)}
}

// ectEntry is a heap entry with a cached earliest completion time.
type ectEntry struct {
	task batch.TaskID
	ect  float64
	ver  int
}

type ectHeap []ectEntry

func (h ectHeap) Len() int            { return len(h) }
func (h ectHeap) Less(i, j int) bool  { return h[i].ect < h[j].ect }
func (h ectHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ectHeap) Push(x interface{}) { *h = append(*h, x.(ectEntry)) }
func (h *ectHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (e *executor) run() (*ExecStats, error) {
	// Global earliest-completion-time ordering with lazy re-evaluation:
	// cached ECTs go stale only when a commit changes the Gantt state,
	// so each pop re-evaluates at most once per version. This is the
	// paper's "schedule the task with the lowest earliest completion
	// time first" rule.
	// Pre-staging ops (e.g. DataLeastLoaded replicas) commit first so
	// every task sees the extra copies.
	for _, op := range e.plan.PreStage {
		if e.avail[op.Dest][op.File] >= 0 {
			continue // already there
		}
		e.curTask = -1 // journaled as planner-directed pre-staging
		v := newSchedEnv(e, true)
		var err error
		if op.Kind == Replica && !e.st.P.DisableReplication && e.avail[op.Src][op.File] >= 0 {
			srcAt := e.avail[op.Src][op.File]
			_, err = v.replicaTransfer(op.File, op.Src, op.Dest, srcAt)
		} else {
			_, err = v.remoteTransfer(op.File, op.Dest)
		}
		if err != nil {
			// Pre-staging is a best-effort optimization: a fault-aborted
			// op is simply skipped (tasks re-stage on demand).
			var fa *faultAbort
			if errors.As(err, &fa) {
				continue
			}
			return nil, err
		}
	}

	// Cached ECTs are invalidated per compute node: committing a task
	// on node c changes c's port schedule (and marginally the storage
	// ports), so only tasks mapped to c re-evaluate; tasks elsewhere
	// keep slightly stale estimates. Together with a small relative
	// commit tolerance for near-tied candidates this keeps ordering
	// cost near O(T·files) instead of O(T²·files) on large
	// sub-batches, while preserving the §6 earliest-completion-time
	// discipline.
	h := &ectHeap{}
	nodeVer := make([]int, len(e.computeTL))
	for _, t := range e.plan.Tasks {
		ect, err := e.scheduleTask(t, false)
		if err != nil {
			return nil, err
		}
		heap.Push(h, ectEntry{task: t, ect: ect, ver: 0})
	}
	const commitSlack = 1.01
	for h.Len() > 0 {
		top := heap.Pop(h).(ectEntry)
		node := e.plan.Node[top.task]
		if top.ver != nodeVer[node] {
			ect, err := e.scheduleTask(top.task, false)
			if err != nil {
				return nil, err
			}
			if h.Len() > 0 && ect > (*h)[0].ect*commitSlack+1e-12 {
				heap.Push(h, ectEntry{task: top.task, ect: ect, ver: nodeVer[node]})
				continue
			}
		}
		e.drainLeft = h.Len()
		if _, err := e.scheduleTask(top.task, true); err != nil {
			var fa *faultAbort
			if errors.As(err, &fa) {
				// Injected fault killed the commit: the task stays
				// pending and is handed back for a later sub-batch.
				e.requeued = append(e.requeued, top.task)
				e.stats.RequeuedTasks++
				nodeVer[node]++
				if e.tr.Enabled() {
					e.tr.SimInstant(obs.ComputeTrack(node), "fault",
						"requeue task "+strconv.Itoa(int(top.task)), e.base()+fa.at,
						obs.A("task", int(top.task)), obs.A("reason", fa.reason))
				}
				if j := e.st.J; j.Enabled() {
					j.Emit(journal.Event{T: e.base() + fa.at, Kind: journal.KindFault, Round: e.round,
						Fault: &journal.Fault{Class: journal.FaultRequeue, Node: fa.node,
							Task: int(top.task), File: -1, Detail: fa.reason}})
				}
				continue
			}
			return nil, err
		}
		nodeVer[node]++
	}

	e.stats.Makespan = gantt.Makespan(e.computeTL)
	for _, tl := range e.storageTL {
		e.stats.StorageBusy += tl.BusyTime()
	}
	for _, tl := range e.computeTL {
		e.stats.ComputeBusy += tl.BusyTime()
	}
	if e.inj != nil {
		for n := range e.computeTL {
			abs := e.inj.CrashTime(n)
			if e.crashSeen[n] || abs < e.base()+e.stats.Makespan {
				// The crash fell inside this sub-batch (or visibly
				// interrupted work): the node loses its disk cache and
				// reboots empty at the boundary.
				dropped := e.st.DropNode(n)
				e.inj.ConsumeCrash(n)
				e.stats.Crashes++
				if e.tr.Enabled() {
					e.tr.SimInstant(obs.ComputeTrack(n), "fault",
						"node "+strconv.Itoa(n)+" crash", math.Min(abs, e.base()+e.stats.Makespan),
						obs.A("node", n))
				}
				if j := e.st.J; j.Enabled() {
					j.Emit(journal.Event{T: math.Min(abs, e.base()+e.stats.Makespan),
						Kind: journal.KindFault, Round: e.round,
						Fault: &journal.Fault{Class: journal.FaultCrash, Node: n, Task: -1, File: -1,
							Detail: fmt.Sprintf("node crashed; %d cached file copies lost, reboots empty", dropped)}})
				}
			}
		}
	}
	e.st.Clock += e.stats.Makespan
	return &e.stats, nil
}
