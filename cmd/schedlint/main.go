// Command schedlint statically enforces the repository's determinism
// contract: fixed seed ⇒ identical schedules at any worker count. It
// loads every package of the module with go/parser + go/types (no
// external dependencies, no subprocesses) and reports violations of
// five project-specific rules — detrange, nowallclock, mergeorder,
// floataccum, tracepurity — with file:line:col positions. Individual
// lines are waived with
//
//	//schedlint:allow <check>[,<check>...] <reason>
//
// on the offending line or the line above. Exit status: 0 clean,
// 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	dir := flag.String("dir", ".", "module root to analyze (directory containing go.mod)")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list registered checks and exit")
	quiet := flag.Bool("q", false, "suppress the summary line")
	flag.Parse()

	if *list {
		for _, name := range analysis.CheckNames() {
			fmt.Println(name)
		}
		return
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}

	cfg := analysis.Config{}
	if *checks != "" {
		cfg.Checks = strings.Split(*checks, ",")
	}
	findings := analysis.Run(pkgs, cfg)
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, f.Check, f.Msg)
	}
	if len(findings) > 0 {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "schedlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "schedlint: %d package(s) clean\n", len(pkgs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedlint:", err)
	os.Exit(2)
}
