// Package minmin implements the paper's first baseline: MinMin task
// scheduling with implicit replication (§3, after Maheswaran et al.).
//
// At every step the algorithm computes, for each unscheduled task, its
// minimum expected completion time (MCT) over all compute nodes —
// accounting for the files each node already holds, files that earlier
// decisions in this plan will have staged, and the cheaper
// compute-to-compute path for files held anywhere in the cluster — and
// schedules the task whose minimum MCT is smallest on its best node.
// Staging every input file of a scheduled task onto its node creates
// copies implicitly, which later tasks exploit: the paper's "implicit
// replication policy".
//
// Disk space is respected while planning: when no remaining task fits
// anywhere, the sub-batch closes, and the popularity eviction policy
// (§4.3) frees space before the next round, exactly as the paper
// integrates it with MinMin.
package minmin

import (
	"fmt"
	"math"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/eviction"
	"repro/internal/obs/journal"
)

// Scheduler is the MinMin baseline. The zero value is ready to use.
type Scheduler struct{}

// New returns a MinMin scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return "MinMin" }

// Evict implements core.Scheduler using the §4.3 popularity policy.
func (s *Scheduler) Evict(st *core.State, pending []batch.TaskID) {
	eviction.Popularity(st, pending)
}

// PlanSubBatch implements core.Scheduler.
func (s *Scheduler) PlanSubBatch(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	p := st.P
	b := p.Batch
	C := p.Platform.NumCompute()

	// Working copies of the cluster file state as this plan unfolds.
	holds := st.PresentMatrix()
	free := make([]int64, C)
	ready := make([]float64, C)
	for i := 0; i < C; i++ {
		free[i] = st.Free(i)
	}
	anyCopy := make([]bool, b.NumFiles())
	for f := 0; f < b.NumFiles(); f++ {
		for i := 0; i < C; i++ {
			if holds[i][f] {
				anyCopy[f] = true
				break
			}
		}
	}

	bwRemote := make([]float64, C) // per-node min remote bandwidth
	for i := 0; i < C; i++ {
		bw := math.Inf(1)
		for sn := range p.Platform.Storage {
			bw = math.Min(bw, p.Platform.RemoteBW(sn, i))
		}
		bwRemote[i] = bw
	}
	bwReplica := p.Platform.MinReplicaBW()

	// ect estimates task k's completion on node i given current plan
	// state; extra reports the new bytes the node must hold.
	ect := func(k batch.TaskID, i int) (float64, int64) {
		t := &b.Tasks[k]
		stage := 0.0
		var extra int64
		var bytes int64
		for _, f := range t.Files {
			size := b.FileSize(f)
			bytes += size
			if holds[i][f] {
				continue
			}
			extra += size
			if anyCopy[f] && !p.DisableReplication {
				stage += float64(size) / bwReplica
			} else {
				stage += float64(size) / bwRemote[i]
			}
		}
		exec := float64(bytes)/p.Platform.Compute[i].LocalReadBW + t.Compute
		return ready[i] + stage + exec, extra
	}

	plan := &core.SubPlan{Node: make(map[batch.TaskID]int)}
	unsched := append([]batch.TaskID(nil), pending...)

	// mct[idx][i] caches the completion estimate of unsched[idx] on
	// node i; only the column of the node that changed is refreshed
	// after each assignment.
	mct := make([][]float64, len(unsched))
	fit := make([][]bool, len(unsched))
	for idx, k := range unsched {
		mct[idx] = make([]float64, C)
		fit[idx] = make([]bool, C)
		for i := 0; i < C; i++ {
			e, extra := ect(k, i)
			mct[idx][i] = e
			fit[idx][i] = extra <= free[i]
		}
	}
	done := make([]bool, len(unsched))
	remaining := len(unsched)

	for remaining > 0 {
		bestIdx, bestNode := -1, -1
		bestT := math.Inf(1)
		for idx := range unsched {
			if done[idx] {
				continue
			}
			for i := 0; i < C; i++ {
				if fit[idx][i] && mct[idx][i] < bestT {
					bestT = mct[idx][i]
					bestIdx, bestNode = idx, i
				}
			}
		}
		if bestIdx < 0 {
			break // nothing fits: close the sub-batch
		}
		k := unsched[bestIdx]
		done[bestIdx] = true
		remaining--
		plan.Tasks = append(plan.Tasks, k)
		plan.Node[k] = bestNode
		if st.J.Enabled() {
			cands := make([]journal.Candidate, C)
			for i := 0; i < C; i++ {
				cands[i] = journal.Candidate{Node: i, Score: mct[bestIdx][i], Fits: fit[bestIdx][i]}
			}
			st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindPlace, Round: st.JRound,
				Place: &journal.Place{Task: int(k), Node: bestNode, Policy: "minmin-mct",
					Score: bestT, Candidates: cands,
					Reason: "smallest minimum expected completion time among unscheduled tasks"}})
		}
		// Stage the task's files (implicit replication) and occupy the
		// node.
		e, extra := ect(k, bestNode)
		ready[bestNode] = e
		free[bestNode] -= extra
		firstCopy := make(map[batch.FileID]bool)
		for _, f := range b.Tasks[k].Files {
			if !holds[bestNode][f] {
				if !anyCopy[f] {
					firstCopy[f] = true
				}
				holds[bestNode][f] = true
				anyCopy[f] = true
			}
		}
		// Refresh the changed node's column for everyone; tasks that
		// share a file which just gained its first cluster copy see a
		// cheaper replica path on every node, so refresh those rows
		// fully.
		for idx, kk := range unsched {
			if done[idx] {
				continue
			}
			full := false
			for _, f := range b.Tasks[kk].Files {
				if firstCopy[f] {
					full = true
					break
				}
			}
			lo, hi := bestNode, bestNode
			if full {
				lo, hi = 0, C-1
			}
			for i := lo; i <= hi; i++ {
				ee, ex := ect(kk, i)
				mct[idx][i] = ee
				fit[idx][i] = ex <= free[i]
			}
		}
	}
	if len(plan.Tasks) == 0 {
		return nil, fmt.Errorf("minmin: no pending task fits any node (pending %d)", len(pending))
	}
	return plan, nil
}
