GO ?= go

.PHONY: all build vet test race verify bench bench-parallel figures clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel solver core (mip portfolio, concurrent hypergraph
# recursion, experiment fan-out) makes the race detector part of the
# repository's tier-1 verification, not an optional extra.
race:
	$(GO) test -race ./...

verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Just the workers=1 vs workers=N scaling benches.
bench-parallel:
	$(GO) test -bench='BenchmarkMIPSolve|BenchmarkKWayPartition|BenchmarkFig3Workers' -benchmem

figures:
	$(GO) run ./cmd/paperfigs -quick

clean:
	$(GO) clean ./...
