// Package analysis is the project-specific static analyzer behind
// cmd/schedlint. It enforces the repository's determinism contract
// (fixed seed ⇒ identical output at any worker count) as machine-checked
// invariants instead of reviewer folklore:
//
//	detrange    — map iteration feeding order-dependent state in solver
//	              packages (the growInitial class of bug)
//	nowallclock — wall-clock time and the global math/rand stream in
//	              solver packages; randomness must flow in as parameters
//	mergeorder  — worker results merged into shared state in a way that
//	              depends on goroutine scheduling rather than worker index
//	floataccum  — float += accumulation in map-iteration order
//	              (order-dependent rounding)
//	tracepurity — wall-clock reads anywhere outside internal/obs, the
//	              module's designated clock boundary; every other site
//	              must carry an annotated justification
//	ordertaint  — interprocedural order-taint dataflow: values derived
//	              from map iteration, channel-receive completion, or the
//	              unseeded RNG committed to schedule state, shared state
//	              via a callee, or encoded output
//	lockorder   — cycles in the module's lock-acquisition graph, the
//	              ABBA deadlock class the race detector cannot see
//
// The last two (plus the transitive halves of nowallclock and
// tracepurity) run on a shared interprocedural engine: a module-local
// call graph with per-function taint summaries, clock-reader closure,
// and transitive lock-acquisition sets (DESIGN.md §11).
//
// Findings are suppressed line-by-line with
//
//	//schedlint:allow <check>[,<check>...] [reason]
//
// placed on the offending line or the line directly above it. Strict
// mode audits the annotations themselves (allowstale, allowunknown).
// The package is built exclusively on the standard library (go/ast,
// go/parser, go/types), preserving the module's zero-dependency stance.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Check string
	Pos   token.Position
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// Config selects which checks run and which packages count as
// "deterministic" (solver) packages for the checks scoped to them.
type Config struct {
	// Checks to run; empty means all registered checks.
	Checks []string
	// DeterministicPaths are import-path prefixes of packages whose
	// output must be a pure function of their inputs and seeds.
	// detrange, nowallclock, floataccum and ordertaint only fire
	// inside these.
	DeterministicPaths []string
	// Strict additionally audits the suppression annotations
	// themselves: an allow entry naming an unregistered check is
	// reported as allowunknown, and an entry that suppressed nothing
	// during the run is reported as allowstale. Hygiene findings
	// cannot themselves be suppressed.
	Strict bool
}

// DefaultDeterministicPaths lists the solver packages of this
// repository: everything between problem input and committed schedule.
var DefaultDeterministicPaths = []string{
	"repro/internal/mip",
	"repro/internal/hypergraph",
	"repro/internal/sched",
	"repro/internal/gantt",
	"repro/internal/batch",
	"repro/internal/eviction",
	"repro/internal/core",
	"repro/internal/faults",
	"repro/internal/spec",
	"repro/internal/obs/journal",
}

// A check inspects one package through a pass and reports findings.
type check struct {
	name string
	// deterministicOnly restricts the check to deterministic packages.
	deterministicOnly bool
	run               func(*pass)
}

// allChecks is the registry, in reporting-priority order.
var allChecks = []check{
	{name: "detrange", deterministicOnly: true, run: runDetRange},
	{name: "nowallclock", deterministicOnly: true, run: runNoWallClock},
	{name: "mergeorder", deterministicOnly: false, run: runMergeOrder},
	{name: "floataccum", deterministicOnly: true, run: runFloatAccum},
	{name: "tracepurity", deterministicOnly: false, run: runTracePurity},
	{name: "ordertaint", deterministicOnly: true, run: runOrderTaint},
	{name: "lockorder", deterministicOnly: false, run: runLockOrder},
}

// hygieneChecks are the strict-mode finding categories produced by the
// suppression audit; they are not runnable checks but appear as rule
// ids in findings and SARIF output.
var hygieneChecks = []string{"allowstale", "allowunknown"}

// CheckNames returns the registered check names.
func CheckNames() []string {
	names := make([]string, len(allChecks))
	for i, c := range allChecks {
		names[i] = c.name
	}
	return names
}

// pass is the per-(package, check) context handed to check bodies.
type pass struct {
	pkg      *Package
	check    string
	suppress *suppressions
	eng      *engine
	cfg      *Config
	detPaths []string
	out      *[]Finding
}

func (p *pass) reportf(pos token.Pos, format string, args ...any) {
	position := p.pkg.Fset.Position(pos)
	if p.suppress.allows(position, p.check) {
		return
	}
	*p.out = append(*p.out, Finding{Check: p.check, Pos: position, Msg: fmt.Sprintf(format, args...)})
}

// typeOf resolves an expression's type (nil when unknown).
func (p *pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objectOf resolves an identifier to its object via Uses then Defs.
func (p *pass) objectOf(id *ast.Ident) types.Object {
	if o := p.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.pkg.Info.Defs[id]
}

// Run analyzes the packages and returns all unsuppressed findings,
// sorted by position. With cfg.Strict it appends suppression-hygiene
// findings (stale and unknown-check allow entries).
func Run(pkgs []*Package, cfg Config) []Finding {
	selected := map[string]bool{}
	for _, name := range cfg.Checks {
		selected[name] = true
	}
	detPaths := cfg.DeterministicPaths
	if detPaths == nil {
		detPaths = DefaultDeterministicPaths
	}
	supByPkg := make(map[*Package]*suppressions, len(pkgs))
	for _, pkg := range pkgs {
		supByPkg[pkg] = collectSuppressions(pkg)
	}
	eng := newEngine(pkgs, supByPkg)
	ran := map[string]bool{}
	var findings []Finding
	for _, pkg := range pkgs {
		det := isDeterministicPath(strings.TrimSuffix(pkg.Path, ".test"), detPaths)
		for _, c := range allChecks {
			if len(selected) > 0 && !selected[c.name] {
				continue
			}
			if c.deterministicOnly && !det {
				continue
			}
			ran[c.name] = true
			c.run(&pass{pkg: pkg, check: c.name, suppress: supByPkg[pkg],
				eng: eng, cfg: &cfg, detPaths: detPaths, out: &findings})
		}
	}
	if cfg.Strict {
		findings = append(findings, auditSuppressions(pkgs, supByPkg, ran)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	return findings
}

// auditSuppressions produces the strict-mode hygiene findings: allow
// entries naming no registered check (a typo suppresses nothing,
// silently) and entries whose check ran in this invocation yet
// suppressed no finding (stale — the code they excused has moved or
// been fixed). Staleness is judged against the checks that ran
// globally, not per package: an allow for a check that can never run
// in its package is exactly the kind of dead annotation -strict
// exists to surface.
func auditSuppressions(pkgs []*Package, supByPkg map[*Package]*suppressions, ran map[string]bool) []Finding {
	registered := map[string]bool{"all": true}
	for _, c := range allChecks {
		registered[c.name] = true
	}
	known := strings.Join(CheckNames(), ", ")
	anyRan := len(ran) > 0
	var out []Finding
	for _, pkg := range pkgs {
		for _, entry := range supByPkg[pkg].entries {
			switch {
			case !registered[entry.check]:
				out = append(out, Finding{Check: "allowunknown", Pos: entry.pos,
					Msg: fmt.Sprintf("allow annotation names %q, which is not a registered check (known: %s); it suppresses nothing", entry.check, known)})
			case entry.used:
			case entry.check == "all" && anyRan, ran[entry.check]:
				out = append(out, Finding{Check: "allowstale", Pos: entry.pos,
					Msg: fmt.Sprintf("stale allow: no %s finding is suppressed here — remove the annotation or narrow its check list", entry.check)})
			}
		}
	}
	return out
}

func isDeterministicPath(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// allowEntry is one check name of one //schedlint:allow annotation,
// with usage tracking for the strict-mode staleness audit. An
// annotation listing N checks produces N entries sharing a position.
type allowEntry struct {
	pos   token.Position // position of the annotation comment
	check string
	used  bool
}

// suppressions indexes a package's allow annotations by file and line.
type suppressions struct {
	entries []*allowEntry
	index   map[string]map[int][]*allowEntry
}

const allowPrefix = "schedlint:allow"

// collectSuppressions scans every comment of the package for allow
// annotations, in both line- and block-comment form (in the latter the
// closing delimiter is stripped so it cannot glue onto the last check
// name).
func collectSuppressions(pkg *Package) *suppressions {
	sup := &suppressions{index: map[string]map[int][]*allowEntry{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), "*/"))
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := sup.index[pos.Filename]
				if lines == nil {
					lines = map[int][]*allowEntry{}
					sup.index[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					entry := &allowEntry{pos: pos, check: name}
					sup.entries = append(sup.entries, entry)
					lines[pos.Line] = append(lines[pos.Line], entry)
				}
			}
		}
	}
	return sup
}

// allows reports whether the check is suppressed at the position — an
// allow annotation on the same line or the line directly above — and
// marks every matching entry used for the staleness audit.
func (s *suppressions) allows(pos token.Position, check string) bool {
	if s == nil {
		return false
	}
	lines := s.index[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, entry := range lines[line] {
			if entry.check == check || entry.check == "all" {
				entry.used = true
				hit = true
			}
		}
	}
	return hit
}

// ---- shared AST helpers used by the individual checks ----

// rootIdent unwraps an assignable expression (index, selector, star,
// paren) down to its base identifier; nil when the base is not a plain
// identifier (e.g. a function call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the
// source interval [from, to] — used to separate loop-local state from
// captured/outer state.
func declaredWithin(obj types.Object, from, to token.Pos) bool {
	return obj != nil && obj.Pos() >= from && obj.Pos() <= to
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatType reports whether t is a floating-point type.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isIntegerType reports whether t is an integer type.
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
