package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestQuantileSingleValue: a histogram holding one distinct value must
// report that value exactly at every quantile (the bucket bounds clamp
// to min == max).
func TestQuantileSingleValue(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 10; i++ {
		m.Observe("lat", 5)
	}
	h := m.Snapshot().Histograms["lat"]
	for _, q := range []float64{h.P50, h.P95, h.P99} {
		if q != 5 {
			t.Fatalf("quantiles = %g/%g/%g, want all 5", h.P50, h.P95, h.P99)
		}
	}
}

// TestQuantileUniform: over the uniform integers 1..100 the power-of-2
// bucket interpolation happens to be exact, which pins the estimator's
// arithmetic tightly.
func TestQuantileUniform(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.Observe("lat", float64(i))
	}
	h := m.Snapshot().Histograms["lat"]
	for _, c := range []struct {
		name      string
		got, want float64
	}{{"p50", h.P50, 50}, {"p95", h.P95, 95}, {"p99", h.P99, 99}} {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

// TestQuantileBounds: estimates never leave [min, max] and are
// monotone in q, whatever the distribution.
func TestQuantileBounds(t *testing.T) {
	m := NewMetrics()
	for _, v := range []float64{0.001, 0.5, 3, 3, 3, 700, 1e6} {
		m.Observe("lat", v)
	}
	h := m.Snapshot().Histograms["lat"]
	if h.P50 < h.Min || h.P99 > h.Max {
		t.Fatalf("quantiles escape [min, max]: p50=%g p99=%g min=%g max=%g", h.P50, h.P99, h.Min, h.Max)
	}
	if !(h.P50 <= h.P95 && h.P95 <= h.P99) {
		t.Fatalf("quantiles not monotone: %g, %g, %g", h.P50, h.P95, h.P99)
	}
}

// TestSnapshotGoldenCSV pins the exact writer output, quantile fields
// included.
func TestSnapshotGoldenCSV(t *testing.T) {
	m := NewMetrics()
	m.Count("ops", 5)
	for i := 1; i <= 100; i++ {
		m.Observe("lat", float64(i))
	}
	var csv bytes.Buffer
	if err := m.Snapshot().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"kind,name,field,value",
		"counter,ops,value,5",
		"histogram,lat,count,100",
		"histogram,lat,max,100",
		"histogram,lat,mean,50.5",
		"histogram,lat,min,1",
		"histogram,lat,p50,50",
		"histogram,lat,p95,95",
		"histogram,lat,p99,99",
		"histogram,lat,sum,5050",
		"",
	}, "\n")
	if csv.String() != want {
		t.Fatalf("csv output drifted:\n got:\n%s\nwant:\n%s", csv.String(), want)
	}
}

// TestSnapshotJSONCarriesQuantiles pins the JSON field names the
// downstream dashboards key on.
func TestSnapshotJSONCarriesQuantiles(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.Observe("lat", float64(i))
	}
	var js bytes.Buffer
	if err := m.Snapshot().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p50": 50`, `"p95": 95`, `"p99": 99`} {
		if !strings.Contains(js.String(), want) {
			t.Fatalf("json missing %q:\n%s", want, js.String())
		}
	}
}
