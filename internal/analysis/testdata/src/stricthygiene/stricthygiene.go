// Package stricthygiene is a schedlint golden-test fixture for the
// -strict suppression audit: a used block-comment allow (no hygiene
// finding), a stale allow, and a typo'd check name. Line numbers are
// pinned by the assertions in analysis_test.go.
package stricthygiene

// goodSuppressed carries a block-comment allow that suppresses a real
// detrange finding; -strict must count it as used and say nothing.
func goodSuppressed(m map[int]int) []int {
	var out []int
	/* schedlint:allow detrange fixture: order genuinely irrelevant */
	for k := range m {
		out = append(out, k)
	}
	return out
}

// staleAllow excuses a loop that violates nothing — one allowstale
// finding.
func staleAllow(xs []int) []int {
	var out []int
	//schedlint:allow detrange nothing left to excuse: slice iteration is ordered
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// typoAllow misspells the check name, so it suppresses nothing — one
// allowunknown finding plus the detrange finding it failed to cover.
func typoAllow(m map[int]int) []int {
	var out []int
	//schedlint:allow detrage a silent typo until -strict pointed at it
	for k := range m {
		out = append(out, k)
	}
	return out
}
