package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
)

// wallClockFuncs are the time-package functions that read the wall
// clock; any of them inside a solver package makes scheduling output
// depend on machine speed.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandAllowed are the math/rand (and math/rand/v2) package-level
// functions that do NOT touch the process-global stream: constructors
// for explicitly seeded generators.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// runNoWallClock bans wall-clock reads and the global math/rand stream
// in deterministic packages. Randomness and time budgets must flow in
// as parameters (a seeded *rand.Rand, an explicit deadline), so that a
// fixed seed reproduces the same schedule on any machine at any worker
// count. Methods on *rand.Rand are fine — only the package-level
// functions drawing from the shared global source are flagged.
//
// Beyond the direct reads, the check walks the module call graph: a
// wall-clock read laundered through a helper wrapper — possibly in a
// package the check is not scoped to — is reported at the transitive
// call site inside the deterministic package. A //schedlint:allow
// nowallclock on the underlying read covers its transitive callers
// too: the justification travels with the read, not with every caller.
func runNoWallClock(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.objectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded explicitly
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					p.reportf(sel.Pos(), "time.%s in a deterministic package makes output depend on machine speed; take deadlines/seeds as parameters or annotate //schedlint:allow nowallclock <reason>", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !globalRandAllowed[fn.Name()] {
					p.reportf(sel.Pos(), "rand.%s draws from the process-global stream; thread a seeded *rand.Rand through parameters instead", fn.Name())
				}
			}
			return true
		})
	}
	reportTransitiveReads(p, "nowallclock", true,
		"call to %s reaches %s at %s; a wall-clock or global-rand read laundered through a helper still breaks determinism — thread deadlines/seeds as parameters or annotate //schedlint:allow nowallclock <reason> at the read")
}

// reportTransitiveReads flags, inside the pass's package, every call
// whose module-local callee transitively performs an unsuppressed
// wall-clock read (plus global-rand draws when includeRand is set).
// Calls into internal/obs are exempt — that package is the designated
// clock boundary — and edges to function literals are skipped: a
// literal's reads surface either directly or through its enclosing
// function's callers.
func reportTransitiveReads(p *pass, check string, includeRand bool, format string) {
	readers := p.eng.clockReaders(check, includeRand)
	for _, n := range p.eng.nodesOf(p.pkg) {
		for _, c := range n.calls {
			if c.node == nil || c.node.fn == nil || isObsPackage(c.node.pkg.Path) {
				continue
			}
			w, ok := readers[c.node]
			if !ok {
				continue
			}
			wp := p.pkg.Fset.Position(w.pos)
			p.reportf(c.pos, format, c.node.name(), w.name,
				filepath.Base(wp.Filename)+":"+strconv.Itoa(wp.Line))
		}
	}
}
