package simplex

import (
	"math"
	"math/rand"
	"testing"
)

// leq builds an LP from dense ≤ rows (adding slack columns), for test
// readability: min c·x s.t. A x ≤ b, 0 ≤ x ≤ ub.
func leq(c []float64, A [][]float64, b []float64, ub []float64) *LP {
	n := len(c)
	m := len(A)
	lp := &LP{NumRows: m}
	lp.Cost = append([]float64(nil), c...)
	lp.B = append([]float64(nil), b...)
	lp.Cols = make([][]Entry, n)
	for j := 0; j < n; j++ {
		lp.Lower = append(lp.Lower, 0)
		if ub == nil {
			lp.Upper = append(lp.Upper, math.Inf(1))
		} else {
			lp.Upper = append(lp.Upper, ub[j])
		}
		for i := 0; i < m; i++ {
			if A[i][j] != 0 {
				lp.Cols[j] = append(lp.Cols[j], Entry{Row: int32(i), Val: A[i][j]})
			}
		}
	}
	for i := 0; i < m; i++ {
		lp.Cost = append(lp.Cost, 0)
		lp.Lower = append(lp.Lower, 0)
		lp.Upper = append(lp.Upper, math.Inf(1))
		lp.Cols = append(lp.Cols, []Entry{{Row: int32(i), Val: 1}})
	}
	return lp
}

func solveOK(t *testing.T, lp *LP) *Result {
	t.Helper()
	res, err := Solve(lp, Options{})
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	return res
}

func TestTextbookMax(t *testing.T) {
	// max 3x+5y s.t. x≤4, 2y≤12, 3x+2y≤18 → (2,6), obj 36.
	lp := leq(
		[]float64{-3, -5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18}, nil)
	res := solveOK(t, lp)
	if math.Abs(res.Obj-(-36)) > 1e-6 {
		t.Fatalf("obj = %v, want -36", res.Obj)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v, want (2,6)", res.X[:2])
	}
}

func TestEqualityRows(t *testing.T) {
	// min x+2y s.t. x+y = 10, x ≤ 4 → x=4, y=6, obj 16.
	lp := &LP{
		NumRows: 1,
		Cost:    []float64{1, 2},
		Lower:   []float64{0, 0},
		Upper:   []float64{4, math.Inf(1)},
		B:       []float64{10},
		Cols: [][]Entry{
			{{Row: 0, Val: 1}},
			{{Row: 0, Val: 1}},
		},
	}
	res := solveOK(t, lp)
	if math.Abs(res.Obj-16) > 1e-6 {
		t.Fatalf("obj = %v, want 16", res.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≥ 0, x ≤ 1 (bound), x = 5 (row): infeasible.
	lp := &LP{
		NumRows: 1,
		Cost:    []float64{1},
		Lower:   []float64{0},
		Upper:   []float64{1},
		B:       []float64{5},
		Cols:    [][]Entry{{{Row: 0, Val: 1}}},
	}
	res, err := Solve(lp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x ≥ 0 free upward, one vacuous row 0·x ≤ ... need a
	// row; use y slack only: -x + y = 0, y ≥ 0 → x can grow with y.
	lp := &LP{
		NumRows: 1,
		Cost:    []float64{-1, 0},
		Lower:   []float64{0, 0},
		Upper:   []float64{math.Inf(1), math.Inf(1)},
		B:       []float64{0},
		Cols: [][]Entry{
			{{Row: 0, Val: -1}},
			{{Row: 0, Val: 1}},
		},
	}
	res, err := Solve(lp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestBoundedVariablesFlip(t *testing.T) {
	// max x+y, x ≤ 2, y ≤ 3 (pure bound flips; one vacuous row).
	lp := &LP{
		NumRows: 1,
		Cost:    []float64{-1, -1, 0},
		Lower:   []float64{0, 0, 0},
		Upper:   []float64{2, 3, math.Inf(1)},
		B:       []float64{100},
		Cols: [][]Entry{
			{{Row: 0, Val: 1}},
			{{Row: 0, Val: 1}},
			{{Row: 0, Val: 1}}, // slack
		},
	}
	res := solveOK(t, lp)
	if math.Abs(res.Obj-(-5)) > 1e-6 {
		t.Fatalf("obj = %v, want -5", res.Obj)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x s.t. x ≥ -5 (bound), x + y = 0, 0 ≤ y ≤ 3 → x = -3.
	lp := &LP{
		NumRows: 1,
		Cost:    []float64{1, 0},
		Lower:   []float64{-5, 0},
		Upper:   []float64{math.Inf(1), 3},
		B:       []float64{0},
		Cols: [][]Entry{
			{{Row: 0, Val: 1}},
			{{Row: 0, Val: 1}},
		},
	}
	res := solveOK(t, lp)
	if math.Abs(res.Obj-(-3)) > 1e-6 {
		t.Fatalf("obj = %v, want -3", res.Obj)
	}
}

func TestDegenerateCycling(t *testing.T) {
	// Beale's classic cycling example (degenerate); Bland fallback
	// must terminate it.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 ≤ 0
	//      0.5x4 - 90x5 - 0.02x6 + 3x7 ≤ 0
	//      x6 ≤ 1
	// optimum -0.05.
	lp := leq(
		[]float64{-0.75, 150, -0.02, 6},
		[][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		[]float64{0, 0, 1}, nil)
	res := solveOK(t, lp)
	if math.Abs(res.Obj-(-0.05)) > 1e-6 {
		t.Fatalf("obj = %v, want -0.05", res.Obj)
	}
}

// TestRandomVsBruteForce cross-checks the simplex optimum against an
// exhaustive enumeration of candidate vertex solutions on small random
// box-constrained problems: since all our variables are in [0,1] and
// the optimum of an LP over a polytope is at a vertex, we enumerate
// all 2^n bound patterns plus basic solutions via the solver's own
// feasibility check, using a fine grid as an independent lower bound
// sanity check.
func TestRandomVsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n, m := 3, 2
		A := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 2
		}
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = rng.Float64()*2 - 0.5
			}
			b[i] = rng.Float64() * 2
		}
		ub := []float64{1, 1, 1}
		lp := leq(c, A, b, ub)
		res, err := Solve(lp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			// Feasible at x=0 always (b ≥ 0? not guaranteed: b ≥ 0 here
			// since rng.Float64()*2 ≥ 0), so must be optimal.
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		// Grid search lower bound check.
		best := math.Inf(1)
		const G = 8
		for i0 := 0; i0 <= G; i0++ {
			for i1 := 0; i1 <= G; i1++ {
				for i2 := 0; i2 <= G; i2++ {
					x := []float64{float64(i0) / G, float64(i1) / G, float64(i2) / G}
					ok := true
					for i := range A {
						lhs := 0.0
						for j := range x {
							lhs += A[i][j] * x[j]
						}
						if lhs > b[i]+1e-9 {
							ok = false
							break
						}
					}
					if ok {
						obj := 0.0
						for j := range x {
							obj += c[j] * x[j]
						}
						if obj < best {
							best = obj
						}
					}
				}
			}
		}
		if res.Obj > best+1e-6 {
			t.Fatalf("trial %d: simplex obj %v worse than grid point %v", trial, res.Obj, best)
		}
		// And the returned X must itself be feasible.
		for i := range A {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += A[i][j] * res.X[j]
			}
			if lhs > b[i]+1e-6 {
				t.Fatalf("trial %d: returned point violates row %d", trial, i)
			}
		}
	}
}

func TestLargerSparseLP(t *testing.T) {
	// Assignment-like LP: 20 tasks × 4 nodes, each task assigned once,
	// node loads ≤ cap; min total cost. LP relaxation of a transport
	// problem — integral at optimum by total unimodularity.
	const T, N = 20, 4
	rng := rand.New(rand.NewSource(3))
	lp := &LP{NumRows: T + N}
	cost := make([][]float64, T)
	for k := 0; k < T; k++ {
		cost[k] = make([]float64, N)
		for i := 0; i < N; i++ {
			cost[k][i] = 1 + rng.Float64()*9
			lp.Cost = append(lp.Cost, cost[k][i])
			lp.Lower = append(lp.Lower, 0)
			lp.Upper = append(lp.Upper, 1)
			lp.Cols = append(lp.Cols, []Entry{
				{Row: int32(k), Val: 1},
				{Row: int32(T + i), Val: 1},
			})
		}
	}
	for k := 0; k < T; k++ {
		lp.B = append(lp.B, 1) // Σ_i x_ki = 1
	}
	capRow := float64(T)/N + 2
	for i := 0; i < N; i++ {
		lp.B = append(lp.B, capRow)
		// slack for ≤ row
		lp.Cost = append(lp.Cost, 0)
		lp.Lower = append(lp.Lower, 0)
		lp.Upper = append(lp.Upper, math.Inf(1))
		lp.Cols = append(lp.Cols, []Entry{{Row: int32(T + i), Val: 1}})
	}
	res := solveOK(t, lp)
	// Verify assignment constraints hold.
	for k := 0; k < T; k++ {
		sum := 0.0
		for i := 0; i < N; i++ {
			sum += res.X[k*N+i]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("task %d assignment sums to %v", k, sum)
		}
	}
	// Greedy upper bound must not beat the LP optimum.
	greedy := 0.0
	for k := 0; k < T; k++ {
		best := math.Inf(1)
		for i := 0; i < N; i++ {
			if cost[k][i] < best {
				best = cost[k][i]
			}
		}
		greedy += best
	}
	if res.Obj > greedy+1e-6 {
		t.Fatalf("LP obj %v exceeds greedy-min bound %v", res.Obj, greedy)
	}
}
