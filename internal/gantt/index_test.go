package gantt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildRandom reserves n random slots (via EarliestSlot, so the result
// is always valid) and returns the timeline plus its flat interval
// view for the reference scan.
func buildRandom(rng *rand.Rand, n int, spread float64) (*Timeline, []Interval) {
	tl := NewTimeline()
	for i := 0; i < n; i++ {
		after := rng.Float64() * spread
		dur := rng.Float64()*3 + 0.01
		s := tl.EarliestSlot(after, dur)
		tl.Reserve(s, dur, int32(i))
	}
	return tl, append([]Interval(nil), tl.Intervals()...)
}

// TestIndexMatchesLinearScan property-tests the tentpole contract: the
// bucketed gap index must return bit-identical EarliestSlot answers to
// the flat merge-scan reference, for bare timelines and for overlays,
// across densities that exercise chunk skips, chunk splits, and the
// mid-chunk entry path.
func TestIndexMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		tl, flat := buildRandom(rng, n, float64(n))
		var extra []Interval
		ov := NewOverlay(tl)
		for q := 0; q < 200; q++ {
			after := rng.Float64() * float64(n) * 1.5
			dur := rng.Float64() * 5
			if tl.EarliestSlot(after, dur) != earliestSlot(flat, nil, after, dur) {
				return false
			}
			if ov.EarliestSlot(after, dur) != earliestSlot(flat, extra, after, dur) {
				return false
			}
			if q%20 == 19 { // grow the overlay as the executor does
				d := dur + 0.01
				s := ov.EarliestSlot(after, d)
				ov.Add(s, d)
				i := 0
				for i < len(extra) && extra[i].Start < s {
					i++
				}
				extra = append(extra, Interval{})
				copy(extra[i+1:], extra[i:])
				extra[i] = Interval{Start: s, End: s + d}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTimelineSortedAfterRandomOps asserts the invariant FinishTime
// documents: after any randomized Reserve sequence (including the
// preempted partial reservations the fault path books directly), the
// interval list is sorted with the last interval ending latest. The
// byte sequences replayed first are the FuzzTimelineReserve seeds, so
// the property test and the fuzz target pin the same corpus.
func TestTimelineSortedAfterRandomOps(t *testing.T) {
	seeds := [][]byte{
		{0, 4, 0, 4, 2, 8},
		{10, 1, 0, 1, 5, 3, 5, 3, 0, 16},
		{255, 255, 0, 0, 7, 7},
	}
	rng := rand.New(rand.NewSource(11))
	for c := 0; c < 40; c++ {
		data := seeds[c%len(seeds)]
		if c >= len(seeds) {
			data = make([]byte, 2+rng.Intn(300))
			rng.Read(data)
		}
		tl := NewTimeline()
		for i := 0; i+1 < len(data); i += 2 {
			after := float64(data[i]) * 0.5
			dur := float64(data[i+1]%32) * 0.25
			if dur == 0 {
				continue
			}
			s := tl.EarliestSlot(after, dur)
			if data[i+1]%5 == 0 && dur > 0.25 {
				// preempt-style partial booking, as the fault path does
				tl.Reserve(s, dur/2, 3)
			} else {
				tl.Reserve(s, dur, int32(i))
			}
		}
		ivs := tl.Intervals()
		maxEnd := 0.0
		for i, iv := range ivs {
			if i > 0 && ivs[i-1].Start > iv.Start {
				t.Fatalf("case %d: intervals out of order at %d: %v after %v", c, i, iv, ivs[i-1])
			}
			if i > 0 && ivs[i-1].End > iv.Start+overlapEps {
				t.Fatalf("case %d: intervals overlap at %d: %v and %v", c, i, ivs[i-1], iv)
			}
			if iv.End > maxEnd {
				maxEnd = iv.End
			}
		}
		if tl.FinishTime() != maxEnd {
			t.Fatalf("case %d: FinishTime %g != max End %g (last-interval-ends-latest violated)",
				c, tl.FinishTime(), maxEnd)
		}
		if tl.Len() != len(ivs) {
			t.Fatalf("case %d: Len %d != len(Intervals) %d", c, tl.Len(), len(ivs))
		}
	}
}

// TestOverlayEpsBoundaries covers the merge-scan's float-slop edge
// cases: tentative intervals that abut or overlap committed ones
// within overlapEps must behave exactly like exact abutment.
func TestOverlayEpsBoundaries(t *testing.T) {
	tl := NewTimeline()
	tl.Reserve(0, 5, 1)   // [0,5)
	tl.Reserve(10, 5, 1)  // [10,15)
	ov := NewOverlay(tl)

	// Tentative interval eps-overlapping the committed [0,5): starts
	// overlapEps/2 early; the pair still reads as one busy block.
	ov.Add(5-overlapEps/2, 2) // ~[5,7)
	if got := ov.EarliestSlot(0, 3); got != 7-overlapEps/2 {
		t.Fatalf("slot after eps-abutting pair = %v, want %v", got, 7-overlapEps/2)
	}
	// A 3-unit request at the remaining [7,10) gap fits because the
	// eps slop absorbs the overhang.
	if got := ov.EarliestSlot(0, 3+overlapEps/4); got != 7-overlapEps/2 {
		t.Fatalf("slot within eps of gap end = %v, want %v", got, 7-overlapEps/2)
	}
	// Anything clearly larger than the gap must jump past [10,15).
	if got := ov.EarliestSlot(0, 3.001); got != 15 {
		t.Fatalf("slot for too-long request = %v, want 15", got)
	}

	// Exactly-abutting tentative intervals chain without creating a
	// phantom gap: [5,7) + [7,9) reads as busy through 9.
	ov2 := NewOverlay(tl)
	ov2.Add(5, 2)
	ov2.Add(7, 2)
	if got := ov2.EarliestSlot(0, 1); got != 9 {
		t.Fatalf("slot after abutting tentative chain = %v, want 9", got)
	}
	// A zero-length request parks at the requested time when free.
	if got := ov2.EarliestSlot(9.5, 0); got != 9.5 {
		t.Fatalf("zero-duration slot = %v, want 9.5", got)
	}

	// Tentative interval fully inside a committed gap, shifted by eps:
	// the index and the reference must agree on all of these shapes.
	ov3 := NewOverlay(tl)
	ov3.Add(6+overlapEps, 2)
	flat := append([]Interval(nil), tl.Intervals()...)
	extra := []Interval{{Start: 6 + overlapEps, End: 8 + overlapEps}}
	for _, q := range []struct{ after, dur float64 }{
		{0, 1}, {0, 1 + overlapEps}, {5, 1}, {5 + overlapEps, 1},
		{0, 2 - overlapEps}, {8, 2 - overlapEps}, {8, 2 + overlapEps}, {0, 6},
	} {
		got := ov3.EarliestSlot(q.after, q.dur)
		want := earliestSlot(flat, extra, q.after, q.dur)
		if got != want {
			t.Fatalf("eps-shifted overlay slot(%g,%g) = %v, reference = %v", q.after, q.dur, got, want)
		}
	}
}

// BenchmarkEarliestSlot pits the bucketed index against the linear
// reference on dense timelines past the ~1k-interval mark, where the
// O(n) scan's cost shows; queries start at 0 (the executor's
// remote-transfer pattern, which always searches from the epoch).
func BenchmarkEarliestSlot(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		rng := rand.New(rand.NewSource(7))
		tl, flat := buildRandom(rng, n, float64(n)/4) // dense: few gaps
		queries := make([][2]float64, 256)
		for i := range queries {
			queries[i] = [2]float64{0, rng.Float64()*4 + 0.01}
		}
		b.Run("indexed/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				tl.EarliestSlot(q[0], q[1])
			}
		})
		b.Run("linear/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				earliestSlot(flat, nil, q[0], q[1])
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
