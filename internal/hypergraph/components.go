package hypergraph

// Components returns the connected components of the hypergraph:
// vertices are connected when they share a net. Each component lists
// its vertices in ascending order, and components are ordered by their
// smallest vertex, so the decomposition is deterministic for a given
// hypergraph regardless of construction details.
//
// The scheduler sharding layer uses this to split a sub-batch into
// independent file-sharing groups: tasks in different components share
// no file, so per-component plans compose without interaction (under
// unlimited disk, where no global capacity couples them).
func (h *Hypergraph) Components() [][]int32 {
	comp := make([]int32, h.NumV)
	for v := range comp {
		comp[v] = -1
	}
	netSeen := make([]bool, h.NumN)
	var out [][]int32
	var queue []int32
	for v0 := 0; v0 < h.NumV; v0++ {
		if comp[v0] >= 0 {
			continue
		}
		id := int32(len(out))
		comp[v0] = id
		queue = append(queue[:0], int32(v0))
		// Ascending-order output comes for free: every vertex reachable
		// from v0 gets id, and the final pass collects by scanning 0..V.
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, n := range h.VertexNets(int(v)) {
				if netSeen[n] {
					continue
				}
				netSeen[n] = true
				for _, u := range h.NetPins(int(n)) {
					if comp[u] < 0 {
						comp[u] = id
						queue = append(queue, u)
					}
				}
			}
		}
		out = append(out, nil)
	}
	for v := 0; v < h.NumV; v++ {
		out[comp[v]] = append(out[comp[v]], int32(v))
	}
	return out
}
