// Command paperfigs regenerates the figures of "Task Scheduling and
// File Replication for Data-Intensive Jobs with Batch-shared I/O"
// (HPDC 2006) on the simulated platform, printing one table per
// figure panel.
//
// Usage:
//
//	paperfigs [-fig 3|4|5a|5b|6|all] [-quick] [-ip-budget 20s]
//	          [-skip-ip] [-seed N] [-csv dir] [-workers N]
//
// -workers fans the independent cells of each figure (and each
// scheduler's internal solver) across N goroutines; 0 uses every CPU
// and 1 reproduces the sequential run. Rows are identical for a given
// seed regardless of the worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, 5a, 5b, 6, or all")
	quick := flag.Bool("quick", false, "shrink workloads ~10x for a fast smoke run")
	ipBudget := flag.Duration("ip-budget", 0, "time budget per IP solve (default 20s, quick 3s)")
	skipIP := flag.Bool("skip-ip", false, "omit the IP scheduler")
	seed := flag.Int64("seed", 1, "workload generation seed")
	csvDir := flag.String("csv", "", "also write one CSV per table into this directory")
	workers := flag.Int("workers", 0, "parallel workers for figure cells and solvers (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	opts := experiments.Options{Quick: *quick, IPBudget: *ipBudget, Seed: *seed, SkipIP: *skipIP, Workers: *workers}
	runners := map[string]func(experiments.Options) ([]*report.Table, error){
		"3": experiments.Fig3, "4": experiments.Fig4,
		"5a": experiments.Fig5a, "5b": experiments.Fig5b,
		"6": experiments.Fig6,
	}
	var order []string
	if *fig == "all" {
		order = []string{"3", "4", "5a", "5b", "6"}
	} else if _, ok := runners[*fig]; ok {
		order = []string{*fig}
	} else {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 3, 4, 5a, 5b, 6, all)\n", *fig)
		os.Exit(2)
	}

	start := time.Now()
	for _, f := range order {
		tables, err := runners[f](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	fmt.Printf("\ntotal time: %v\n", time.Since(start).Round(time.Second))
}

func writeCSV(dir string, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == ' ', r == '(', r == ')', r == ',', r == ':':
			return '_'
		default:
			return -1
		}
	}, t.Title)
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	t.FprintCSV(f)
	return nil
}
