// Package minmin implements the paper's first baseline: MinMin task
// scheduling with implicit replication (§3, after Maheswaran et al.).
//
// At every step the algorithm computes, for each unscheduled task, its
// minimum expected completion time (MCT) over all compute nodes —
// accounting for the files each node already holds, files that earlier
// decisions in this plan will have staged, and the cheaper
// compute-to-compute path for files held anywhere in the cluster — and
// schedules the task whose minimum MCT is smallest on its best node.
// Staging every input file of a scheduled task onto its node creates
// copies implicitly, which later tasks exploit: the paper's "implicit
// replication policy".
//
// Disk space is respected while planning: when no remaining task fits
// anywhere, the sub-batch closes, and the popularity eviction policy
// (§4.3) frees space before the next round, exactly as the paper
// integrates it with MinMin.
//
// Two implementations produce byte-identical plans (pinned by
// TestMinMinIncrementalEquivalence): the reference O(T²·C) full-rescan
// loop (Naive: true), and the default incremental one — a keyed
// min-heap over per-task best completion times, updated eagerly for
// tasks sharing a file with each placement (via an inverted file→task
// index) and lazily, via per-node version counters and a lower-bound
// "dirty" discount, for everything else. See DESIGN.md §14 for the
// invariant argument.
package minmin

import (
	"fmt"
	"math"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/eviction"
	"repro/internal/obs/journal"
)

// Scheduler is the MinMin baseline. The zero value is ready to use.
type Scheduler struct {
	// Naive selects the reference full-rescan implementation: an
	// O(T²·C) argmin loop over a fully maintained T×C matrix. It exists
	// for the equivalence test and the bench-scale naive arm; the
	// default incremental path plans the same bytes in roughly
	// O((T log T + shares)·files).
	Naive bool
}

// New returns a MinMin scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return "MinMin" }

// Evict implements core.Scheduler using the §4.3 popularity policy.
func (s *Scheduler) Evict(st *core.State, pending []batch.TaskID) {
	eviction.Popularity(st, pending)
}

// mmState is the working copy of the cluster file state as one plan
// unfolds. Both implementations share it — and in particular the ect
// method — so their float arithmetic is operation-for-operation
// identical.
type mmState struct {
	p         *core.Problem
	b         *batch.Batch
	C         int
	holds     [][]bool
	free      []int64
	ready     []float64
	anyCopy   []bool
	bwRemote  []float64
	bwReplica float64
}

func newMMState(st *core.State) *mmState {
	p := st.P
	b := p.Batch
	C := p.Platform.NumCompute()
	m := &mmState{
		p: p, b: b, C: C,
		holds:   st.PresentMatrix(),
		free:    make([]int64, C),
		ready:   make([]float64, C),
		anyCopy: make([]bool, b.NumFiles()),
	}
	for i := 0; i < C; i++ {
		m.free[i] = st.Free(i)
	}
	for f := 0; f < b.NumFiles(); f++ {
		for i := 0; i < C; i++ {
			if m.holds[i][f] {
				m.anyCopy[f] = true
				break
			}
		}
	}
	m.bwRemote = make([]float64, C)
	for i := 0; i < C; i++ {
		bw := math.Inf(1)
		for sn := range p.Platform.Storage {
			bw = math.Min(bw, p.Platform.RemoteBW(sn, i))
		}
		m.bwRemote[i] = bw
	}
	m.bwReplica = p.Platform.MinReplicaBW()
	return m
}

// ect estimates task k's completion on node i given current plan
// state; extra reports the new bytes the node must hold.
func (m *mmState) ect(k batch.TaskID, i int) (float64, int64) {
	t := &m.b.Tasks[k]
	stage := 0.0
	var extra int64
	var bytes int64
	for _, f := range t.Files {
		size := m.b.FileSize(f)
		bytes += size
		if m.holds[i][f] {
			continue
		}
		extra += size
		if m.anyCopy[f] && !m.p.DisableReplication {
			stage += float64(size) / m.bwReplica
		} else {
			stage += float64(size) / m.bwRemote[i]
		}
	}
	exec := float64(bytes)/m.p.Platform.Compute[i].LocalReadBW + t.Compute
	return m.ready[i] + stage + exec, extra
}

// place applies one placement to the working state exactly as the
// reference does — journal first (pre-commit candidate scores), then
// ready/free/holds updates — and reports which of k's files were newly
// staged and which of those gained their first cluster copy.
func (m *mmState) place(st *core.State, plan *core.SubPlan, k batch.TaskID, bestNode int, bestT float64,
	cands []journal.Candidate) (staged []batch.FileID, first []bool) {
	plan.Tasks = append(plan.Tasks, k)
	plan.Node[k] = bestNode
	if st.J.Enabled() {
		st.J.Emit(journal.Event{T: st.Clock, Kind: journal.KindPlace, Round: st.JRound,
			Place: &journal.Place{Task: int(k), Node: bestNode, Policy: "minmin-mct",
				Score: bestT, Candidates: cands,
				Reason: "smallest minimum expected completion time among unscheduled tasks"}})
	}
	// Stage the task's files (implicit replication) and occupy the
	// node.
	e, extra := m.ect(k, bestNode)
	m.ready[bestNode] = e
	m.free[bestNode] -= extra
	for _, f := range m.b.Tasks[k].Files {
		if !m.holds[bestNode][f] {
			staged = append(staged, f)
			first = append(first, !m.anyCopy[f])
			m.holds[bestNode][f] = true
			m.anyCopy[f] = true
		}
	}
	return staged, first
}

// PlanSubBatch implements core.Scheduler.
func (s *Scheduler) PlanSubBatch(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	if s.Naive {
		return s.planNaive(st, pending)
	}
	return s.planIncremental(st, pending)
}

// planNaive is the reference implementation: a full T×C matrix of
// completion estimates, refreshed after every placement (the changed
// node's column for everyone, full rows for tasks sharing a file that
// just gained its first cluster copy), with an O(T·C) argmin per round.
func (s *Scheduler) planNaive(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	m := newMMState(st)
	b, C := m.b, m.C

	plan := &core.SubPlan{Node: make(map[batch.TaskID]int)}
	unsched := append([]batch.TaskID(nil), pending...)

	// mct[idx][i] caches the completion estimate of unsched[idx] on
	// node i; only the column of the node that changed is refreshed
	// after each assignment.
	mct := make([][]float64, len(unsched))
	fit := make([][]bool, len(unsched))
	for idx, k := range unsched {
		mct[idx] = make([]float64, C)
		fit[idx] = make([]bool, C)
		for i := 0; i < C; i++ {
			e, extra := m.ect(k, i)
			mct[idx][i] = e
			fit[idx][i] = extra <= m.free[i]
		}
	}
	done := make([]bool, len(unsched))
	remaining := len(unsched)

	for remaining > 0 {
		bestIdx, bestNode := -1, -1
		bestT := math.Inf(1)
		for idx := range unsched {
			if done[idx] {
				continue
			}
			for i := 0; i < C; i++ {
				if fit[idx][i] && mct[idx][i] < bestT {
					bestT = mct[idx][i]
					bestIdx, bestNode = idx, i
				}
			}
		}
		if bestIdx < 0 {
			break // nothing fits: close the sub-batch
		}
		k := unsched[bestIdx]
		done[bestIdx] = true
		remaining--
		var cands []journal.Candidate
		if st.J.Enabled() {
			cands = make([]journal.Candidate, C)
			for i := 0; i < C; i++ {
				cands[i] = journal.Candidate{Node: i, Score: mct[bestIdx][i], Fits: fit[bestIdx][i]}
			}
		}
		staged, first := m.place(st, plan, k, bestNode, bestT, cands)
		firstCopy := false
		for _, fc := range first {
			firstCopy = firstCopy || fc
		}
		// Refresh the changed node's column for everyone; tasks that
		// share a file which just gained its first cluster copy see a
		// cheaper replica path on every node, so refresh those rows
		// fully.
		for idx, kk := range unsched {
			if done[idx] {
				continue
			}
			full := false
			if firstCopy {
				for _, f := range b.Tasks[kk].Files {
					for si, sf := range staged {
						if first[si] && sf == f {
							full = true
						}
					}
					if full {
						break
					}
				}
			}
			lo, hi := bestNode, bestNode
			if full {
				lo, hi = 0, C-1
			}
			for i := lo; i <= hi; i++ {
				ee, ex := m.ect(kk, i)
				mct[idx][i] = ee
				fit[idx][i] = ex <= m.free[i]
			}
		}
	}
	if len(plan.Tasks) == 0 {
		return nil, fmt.Errorf("minmin: no pending task fits any node (pending %d)", len(pending))
	}
	return plan, nil
}

// mmEntry is one task's cached best (completion, node) pair in the
// incremental heap. key is a lower bound on the task's true minimum
// completion time; it is exact when the entry is clean (not dirty) and
// its node version matches. node is -1 when the task fits nowhere
// (key +Inf).
type mmEntry struct {
	key   float64
	node  int32
	nver  int32
	dirty bool
	pos   int32 // heap position; -1 once committed
}

// mmHeap is an indexed min-heap over task indices ordered by
// (key, index) — exactly the reference argmin's tie-break (first task
// index achieving the strict minimum).
type mmHeap struct {
	entries []mmEntry
	order   []int32
}

func (h *mmHeap) less(a, b int32) bool {
	ea, eb := &h.entries[a], &h.entries[b]
	if ea.key != eb.key {
		return ea.key < eb.key
	}
	return a < b
}

func (h *mmHeap) swap(i, j int) {
	h.order[i], h.order[j] = h.order[j], h.order[i]
	h.entries[h.order[i]].pos = int32(i)
	h.entries[h.order[j]].pos = int32(j)
}

func (h *mmHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.order[i], h.order[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *mmHeap) down(i int) {
	n := len(h.order)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(h.order[l], h.order[small]) {
			small = l
		}
		if r < n && h.less(h.order[r], h.order[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// fix restores heap order around task idx after its key changed.
func (h *mmHeap) fix(idx int32) {
	h.up(int(h.entries[idx].pos))
	h.down(int(h.entries[idx].pos))
}

// popTop removes the root entry.
func (h *mmHeap) popTop() {
	idx := h.order[0]
	last := len(h.order) - 1
	h.swap(0, last)
	h.order = h.order[:last]
	h.entries[idx].pos = -1
	if last > 0 {
		h.down(0)
	}
}

// planIncremental is the default implementation. Invariants (see
// DESIGN.md §14): every live entry's key is a lower bound on the
// task's true minimum completion time, and a clean entry with a fresh
// node version is exact, so popping the smallest clean-fresh key
// reproduces the reference argmin decision for decision.
func (s *Scheduler) planIncremental(st *core.State, pending []batch.TaskID) (*core.SubPlan, error) {
	m := newMMState(st)
	b, C := m.b, m.C

	plan := &core.SubPlan{Node: make(map[batch.TaskID]int)}
	unsched := append([]batch.TaskID(nil), pending...)

	// Inverted file → pending-task index, for the eager share updates.
	fileTasks := make([][]int32, b.NumFiles())
	for idx, k := range unsched {
		for _, f := range b.Tasks[k].Files {
			fileTasks[f] = append(fileTasks[f], int32(idx))
		}
	}

	// dropRate bounds, per newly replicable byte, how much any node's
	// completion estimate can fall when a file's path switches from
	// remote to replica (the anyCopy flip). Slightly inflated so the
	// discounted key stays a lower bound despite summation rounding.
	dropRate := 0.0
	if !m.p.DisableReplication {
		invRemoteMax := 0.0
		for i := 0; i < C; i++ {
			if inv := 1 / m.bwRemote[i]; inv > invRemoteMax {
				invRemoteMax = inv
			}
		}
		if d := invRemoteMax - 1/m.bwReplica; d > 0 {
			dropRate = d * 1.000001
		}
	}

	h := &mmHeap{entries: make([]mmEntry, len(unsched)), order: make([]int32, len(unsched))}
	nodeVer := make([]int32, C)
	recompute := func(idx int32) {
		k := unsched[idx]
		e := &h.entries[idx]
		e.key, e.node = math.Inf(1), -1
		for i := 0; i < C; i++ {
			v, extra := m.ect(k, i)
			if extra <= m.free[i] && v < e.key {
				e.key, e.node = v, int32(i)
			}
		}
		if e.node >= 0 {
			e.nver = nodeVer[e.node]
		}
		e.dirty = false
	}
	for idx := range unsched {
		recompute(int32(idx))
		h.order[idx] = int32(idx)
		h.entries[idx].pos = int32(idx)
	}
	for i := len(unsched)/2 - 1; i >= 0; i-- {
		h.down(i)
	}

	eagerStamp := make([]int32, len(unsched))
	for i := range eagerStamp {
		eagerStamp[i] = -1
	}
	var commitSeq int32

	for len(h.order) > 0 {
		idx := h.order[0]
		e := &h.entries[idx]
		if e.dirty || (e.node >= 0 && e.nver != nodeVer[e.node]) {
			recompute(idx)
			h.down(0)
			continue
		}
		if e.node < 0 {
			break // nothing fits: close the sub-batch
		}
		k := unsched[idx]
		bestNode, bestT := int(e.node), e.key
		var cands []journal.Candidate
		if st.J.Enabled() {
			// The reference journals every candidate's score from its
			// always-exact matrix; recomputing the row against the
			// pre-commit state yields the same floats.
			cands = make([]journal.Candidate, C)
			for i := 0; i < C; i++ {
				v, extra := m.ect(k, i)
				cands[i] = journal.Candidate{Node: i, Score: v, Fits: extra <= m.free[i]}
			}
		}
		h.popTop()
		staged, first := m.place(st, plan, k, bestNode, bestT, cands)
		nodeVer[bestNode]++
		commitSeq++

		// Eager updates: tasks sharing a newly staged file see their
		// bestNode column drop; evaluating just that column keeps their
		// entries exact (clean entries) or lower-bounded (dirty ones).
		// A first cluster copy additionally cheapens every node's
		// estimate for its sharers: discount their keys by the maximum
		// possible drop and mark them dirty for exact recomputation at
		// pop time.
		for si, f := range staged {
			var disc float64
			if first[si] && dropRate > 0 {
				disc = float64(b.FileSize(f))*dropRate + 1e-9
			}
			for _, oidx := range fileTasks[f] {
				oe := &h.entries[oidx]
				if oe.pos < 0 || oidx == idx {
					continue
				}
				if eagerStamp[oidx] != commitSeq {
					eagerStamp[oidx] = commitSeq
					kk := unsched[oidx]
					v, extra := m.ect(kk, bestNode)
					if extra <= m.free[bestNode] &&
						(v < oe.key || (v == oe.key && int32(bestNode) < oe.node) || oe.node < 0) {
						oe.key, oe.node, oe.nver = v, int32(bestNode), nodeVer[bestNode]
						h.fix(oidx)
					}
				}
				if disc > 0 && !math.IsInf(oe.key, 1) {
					oe.key -= disc
					oe.dirty = true
					h.fix(oidx)
				} else if first[si] && !m.p.DisableReplication {
					oe.dirty = true
				}
			}
		}
	}
	if len(plan.Tasks) == 0 {
		return nil, fmt.Errorf("minmin: no pending task fits any node (pending %d)", len(pending))
	}
	return plan, nil
}
