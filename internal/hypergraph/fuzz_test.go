package hypergraph

import (
	"bytes"
	"testing"
)

// buildFuzzHypergraph decodes an arbitrary byte string into a small
// unit-weight hypergraph plus partitioning parameters. The first three
// bytes pick the vertex count, k, and seed; every following byte pair
// becomes a 2-pin net (self-loops are skipped). Any input yields a
// structurally valid hypergraph, so Build never fails.
func buildFuzzHypergraph(data []byte) (h *Hypergraph, k int, seed int64) {
	if len(data) < 3 {
		return nil, 0, 0
	}
	numV := 2 + int(data[0]%32)
	k = 2 + int(data[1]%4)
	seed = int64(data[2])
	b := NewBuilder()
	for i := 0; i < numV; i++ {
		b.AddVertex(1)
	}
	rest := data[3:]
	for i := 0; i+1 < len(rest); i += 2 {
		u := int(rest[i]) % numV
		v := int(rest[i+1]) % numV
		if u == v {
			continue
		}
		b.AddNet(1+int64(rest[i]%3), []int{u, v})
	}
	h, err := b.Build()
	if err != nil {
		panic("buildFuzzHypergraph produced invalid input: " + err.Error())
	}
	return h, k, seed
}

// FuzzPartitionKWay drives the multilevel bisection pipeline with
// arbitrary small hypergraphs and checks the invariants the rest of
// the repo relies on: every vertex gets a valid part label, the
// result is identical whether the recursion runs sequentially or on
// four workers (the determinism contract), and on unit weights no
// part grossly exceeds its proportional share.
func FuzzPartitionKWay(f *testing.F) {
	f.Add([]byte{10, 0, 1, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5})
	f.Add([]byte{31, 2, 7, 9, 3, 8, 1, 0, 30, 12, 13})
	f.Add([]byte{2, 0, 0})             // minimal: 2 vertices, no nets
	f.Add([]byte{20, 3, 42})           // vertices only, k=5
	f.Add(bytes.Repeat([]byte{5}, 40)) // degenerate: all self-loops
	f.Fuzz(func(t *testing.T, data []byte) {
		h, k, seed := buildFuzzHypergraph(data)
		if h == nil {
			t.Skip()
		}
		part, err := PartitionKWayOpt(h, k, KWayOptions{Eps: 0.1, Seed: seed, Workers: 1})
		if err != nil {
			t.Fatalf("PartitionKWayOpt: %v", err)
		}
		if len(part) != h.NumV {
			t.Fatalf("partition length %d != %d vertices", len(part), h.NumV)
		}
		for v, p := range part {
			if p < 0 || p >= k {
				t.Fatalf("vertex %d in invalid part %d (k=%d)", v, p, k)
			}
		}
		// Determinism: the partition is documented to be a pure function
		// of (h, k, options) regardless of Workers.
		par, err := PartitionKWayOpt(h, k, KWayOptions{Eps: 0.1, Seed: seed, Workers: 4})
		if err != nil {
			t.Fatalf("PartitionKWayOpt workers=4: %v", err)
		}
		for v := range part {
			if part[v] != par[v] {
				t.Fatalf("worker count changed the partition at vertex %d: %d vs %d", v, part[v], par[v])
			}
		}
		// Balance on unit weights. Discreteness dominates on tiny
		// inputs, so only check when every part could hold at least two
		// vertices, and leave generous slack beyond eps for the coarse
		// last-level moves.
		if h.NumV >= 2*k {
			w := PartWeights(h, part, k)
			avg := float64(h.TotalVWeight()) / float64(k)
			for p, pw := range w {
				if float64(pw) > avg*1.5+1 {
					t.Fatalf("part %d weight %d exceeds 1.5×avg+1 (avg=%f, weights=%v)", p, pw, avg, w)
				}
			}
		}
		// The connectivity cost of a valid labeling is well-defined and
		// non-negative.
		if c := h.ConnectivityCost(part); c < 0 {
			t.Fatalf("negative connectivity cost %d", c)
		}
	})
}
