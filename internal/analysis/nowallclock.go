package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that read the wall
// clock; any of them inside a solver package makes scheduling output
// depend on machine speed.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandAllowed are the math/rand (and math/rand/v2) package-level
// functions that do NOT touch the process-global stream: constructors
// for explicitly seeded generators.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// runNoWallClock bans wall-clock reads and the global math/rand stream
// in deterministic packages. Randomness and time budgets must flow in
// as parameters (a seeded *rand.Rand, an explicit deadline), so that a
// fixed seed reproduces the same schedule on any machine at any worker
// count. Methods on *rand.Rand are fine — only the package-level
// functions drawing from the shared global source are flagged.
func runNoWallClock(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.objectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded explicitly
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					p.reportf(sel.Pos(), "time.%s in a deterministic package makes output depend on machine speed; take deadlines/seeds as parameters or annotate //schedlint:allow nowallclock <reason>", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !globalRandAllowed[fn.Name()] {
					p.reportf(sel.Pos(), "rand.%s draws from the process-global stream; thread a seeded *rand.Rand through parameters instead", fn.Name())
				}
			}
			return true
		})
	}
}
