package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count families whose le
// bounds are this registry's power-of-two bucket uppers. Series are
// sorted by name, so the bytes are deterministic for a given snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[k]))
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		n := promName(k)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		exps := make([]int, 0, len(h.Buckets))
		for e := range h.Buckets {
			exp, err := strconv.Atoi(e)
			if err != nil {
				return fmt.Errorf("obs: histogram %s has non-integer bucket key %q", k, e)
			}
			exps = append(exps, exp)
		}
		sort.Ints(exps)
		var cum int64
		for _, exp := range exps {
			cum += h.Buckets[strconv.Itoa(exp)]
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", n, promFloat(math.Ldexp(1, exp)), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("obs: write prometheus text: %w", err)
	}
	return nil
}

// promName maps a registry series name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing everything else with '_' and
// prefixing a leading digit.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects (Go 'g' format
// handles +Inf/-Inf/NaN spellings compatibly).
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
