package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
)

// Order-taint dataflow. A value is order-tainted when it derives from
// a source whose *order* the Go runtime deliberately randomizes or the
// scheduler controls: map iteration, channel-receive completion
// (including `select`), and the unseeded global RNG. Taint propagates
// through assignments, composite literals, arithmetic, indexing,
// returns, and calls (via per-function summaries on the call graph),
// and is cleared by recognized sanitizers — passing the value through
// a canonical sort. The ordertaint check reports when a tainted value
// reaches committed schedule state in a deterministic package.
//
// The analysis is deliberately conservative in documented ways (see
// DESIGN.md §11): flow-sensitivity is approximated by source order
// within a bounded fixpoint (a plain assignment to a bare local is a
// strong update — last assignment wins, so re-sorting a slice really
// does clear it), control-flow (implicit) taint is not tracked, and
// closures are analyzed as separate bodies without captured-variable
// flow.

// taintKind distinguishes the two things a summary must separate:
// intrinsic taint (the function manufactures order-dependence) and
// parameter taint (order-dependence flows through from the caller).
type taintKind uint8

const (
	taintIntrinsic taintKind = 1 << iota
	taintParam
)

// taintVal is the lattice value tracked per variable/expression: the
// kinds plus a deterministic witness for the intrinsic part.
type taintVal struct {
	kinds taintKind
	src   token.Pos // position of the intrinsic source (min wins)
	desc  string    // e.g. "map iteration", "channel receive"
}

func (v taintVal) union(o taintVal) taintVal {
	out := taintVal{kinds: v.kinds | o.kinds, src: v.src, desc: v.desc}
	if o.kinds&taintIntrinsic != 0 && (v.kinds&taintIntrinsic == 0 || o.src < v.src) {
		out.src, out.desc = o.src, o.desc
	}
	return out
}

// taintSummary is the interprocedural contract of one function.
type taintSummary struct {
	// results holds the kinds reaching any return value.
	results taintKind
	// commits holds the kinds reaching a committed store (receiver,
	// pointer/slice/map parameter, or package-level state) inside the
	// body — taintParam here means "stores its arguments".
	commits taintKind
	// origin describes the intrinsic source when results or commits
	// carry taintIntrinsic.
	originPos  token.Pos
	originDesc string
}

// sortSanitizers are the canonical deterministic-order calls: passing
// a slice through any of them clears its taint. Comparator determinism
// is assumed, not verified (DESIGN.md §11).
var sortSanitizers = map[string]bool{
	"sort.Sort": true, "sort.Stable": true, "sort.Slice": true,
	"sort.SliceStable": true, "sort.Strings": true, "sort.Ints": true,
	"sort.Float64s": true,
	"slices.Sort":   true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// taintState runs the local dataflow over one call-graph node.
type taintState struct {
	eng  *engine
	n    *cgNode
	vals map[types.Object]taintVal
	// params marks the parameters and receiver (for committed-store
	// classification and taintParam seeding).
	params  map[types.Object]bool
	summary taintSummary
	// pass is non-nil only during the reporting run over a
	// deterministic package; sinks then produce findings.
	pass *pass
}

func newTaintState(eng *engine, n *cgNode) *taintState {
	st := &taintState{eng: eng, n: n,
		vals: map[types.Object]taintVal{}, params: map[types.Object]bool{}}
	var ft *ast.FuncType
	if n.decl != nil {
		ft = n.decl.Type
		if n.decl.Recv != nil {
			for _, f := range n.decl.Recv.List {
				st.addParams(f)
			}
		}
	} else if n.lit != nil {
		ft = n.lit.Type
	}
	if ft != nil && ft.Params != nil {
		for _, f := range ft.Params.List {
			st.addParams(f)
		}
	}
	return st
}

func (st *taintState) addParams(f *ast.Field) {
	for _, name := range f.Names {
		if obj := st.n.pkg.Info.Defs[name]; obj != nil {
			st.params[obj] = true
			st.vals[obj] = taintVal{kinds: taintParam}
		}
	}
}

// run iterates the body to a bounded fixpoint, then (when reporting)
// makes one final emitting walk with the converged state.
func (st *taintState) run() taintSummary {
	for i := 0; i < 6; i++ {
		if !st.walk(false) {
			break
		}
	}
	if st.pass != nil {
		st.walk(true)
	}
	return st.summary
}

// sourceVal constructs an intrinsic taint value unless the source
// position carries an ordertaint allow annotation (suppressing the
// source kills everything downstream of it, which keeps annotations at
// the source, next to the justification, instead of at every sink).
func (st *taintState) sourceVal(pos token.Pos, desc string) taintVal {
	if st.eng.sup[st.n.pkg].allows(st.n.pkg.Fset.Position(pos), "ordertaint") {
		return taintVal{}
	}
	return taintVal{kinds: taintIntrinsic, src: pos, desc: desc}
}

// walk makes one in-order pass over the body, updating state; with
// emit set it also reports sink hits through st.pass. Returns whether
// any variable's taint changed.
func (st *taintState) walk(emit bool) bool {
	changed := false
	assign := func(obj types.Object, tv taintVal) {
		if obj == nil || tv.kinds == 0 {
			return
		}
		old := st.vals[obj]
		nw := old.union(tv)
		if nw != old {
			st.vals[obj] = nw
			changed = true
		}
	}
	// set is the strong-update form used for plain assignments to bare
	// identifiers: the old value is replaced, not unioned, so
	// `s = sortedCopy(s)` genuinely cleans s. Because state persists
	// across walk passes, a loop's back-edge still carries the value
	// from the bottom of the previous pass.
	set := func(obj types.Object, tv taintVal) {
		if obj == nil {
			return
		}
		old, had := st.vals[obj]
		if tv.kinds == 0 {
			if had {
				delete(st.vals, obj)
				changed = true
			}
			return
		}
		if tv != old {
			st.vals[obj] = tv
			changed = true
		}
	}
	ast.Inspect(st.n.body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false // a separate call-graph node
		case *ast.RangeStmt:
			st.rangeSources(x, assign)
		case *ast.AssignStmt:
			st.assignStmt(x, assign, set, emit)
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				tv := st.exprTaint(r)
				st.summary.results |= tv.kinds
				st.noteOrigin(tv)
			}
		case *ast.CallExpr:
			st.callEffects(x, assign, emit)
		}
		return true
	})
	return changed
}

func (st *taintState) noteOrigin(tv taintVal) {
	if tv.kinds&taintIntrinsic != 0 && (st.summary.originPos == 0 || tv.src < st.summary.originPos) {
		st.summary.originPos, st.summary.originDesc = tv.src, tv.desc
	}
}

// rangeSources marks the iteration variables of order-randomized
// ranges as tainted.
func (st *taintState) rangeSources(rs *ast.RangeStmt, assign func(types.Object, taintVal)) {
	def := func(e ast.Expr) types.Object {
		if id, ok := e.(*ast.Ident); ok {
			if obj := st.n.pkg.Info.Defs[id]; obj != nil {
				return obj
			}
			return st.objectOf(id) // `for k = range m` re-using a var
		}
		return nil
	}
	t := st.typeOf(rs.X)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		tv := st.sourceVal(rs.Pos(), "map iteration")
		if rs.Key != nil {
			assign(def(rs.Key), tv)
		}
		if rs.Value != nil {
			assign(def(rs.Value), tv)
		}
	case *types.Chan:
		tv := st.sourceVal(rs.Pos(), "channel receive")
		if rs.Key != nil {
			assign(def(rs.Key), tv)
		}
	default:
		// Ordered iteration (slice, array, string, int): only the
		// element inherits the container's own taint.
		if rs.Value != nil {
			if tv := st.exprTaint(rs.X); tv.kinds != 0 {
				assign(def(rs.Value), tv)
			}
		}
	}
}

func (st *taintState) assignStmt(as *ast.AssignStmt, assign, set func(types.Object, taintVal), emit bool) {
	rhsVal := func(i int) taintVal {
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			return st.exprTaint(as.Rhs[0]) // tuple from one call
		}
		if i < len(as.Rhs) {
			return st.exprTaint(as.Rhs[i])
		}
		return taintVal{}
	}
	for i, lhs := range as.Lhs {
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" {
			continue
		}
		obj := st.objectOf(root)
		tv := rhsVal(i)
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			tv = tv.union(st.vals[obj]) // compound ops keep prior taint
		}
		idx := st.indexTaint(lhs)
		_, bare := ast.Unparen(lhs).(*ast.Ident)
		if bare && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) {
			set(obj, tv) // strong update: rebinding a local replaces its taint
		} else {
			assign(obj, tv.union(idx))
		}
		if sinkVal := tv.union(idx); sinkVal.kinds != 0 && st.committedStore(lhs, obj) {
			st.summary.commits |= sinkVal.kinds
			st.noteOrigin(sinkVal)
			if emit && sinkVal.kinds&taintIntrinsic != 0 {
				st.pass.reportf(lhs.Pos(),
					"order-tainted value (%s at %s) committed to %s; the result now depends on a randomized order — sort or tie-break deterministically before committing, or annotate //schedlint:allow ordertaint <reason>",
					sinkVal.desc, st.shortPos(sinkVal.src), types.ExprString(lhs))
			}
		}
	}
}

// indexTaint collects taint flowing through positional (slice/array)
// index expressions of an assignable chain. Map indices are excluded:
// a map written under tainted keys holds the same entries in any
// order, while a slice written at a tainted position does not.
func (st *taintState) indexTaint(e ast.Expr) taintVal {
	var tv taintVal
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			if !isMapType(st.typeOf(x.X)) {
				tv = tv.union(st.exprTaint(x.Index))
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return tv
		}
	}
}

// committedStore reports whether the assignment target is committed
// state: a field, element, or pointee reached through a parameter, the
// receiver, or a package-level variable — memory the caller observes
// after the function returns.
func (st *taintState) committedStore(lhs ast.Expr, root types.Object) bool {
	if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
		return false // rebinding a local name commits nothing
	}
	if root == nil {
		return false
	}
	if st.params[root] {
		return true
	}
	v, ok := root.(*types.Var)
	return ok && !v.IsField() && v.Parent() == st.n.pkg.Types.Scope()
}

// callEffects applies sanitizers, interprocedural commit sinks, and
// encoded-output sinks of one call expression.
func (st *taintState) callEffects(call *ast.CallExpr, assign func(types.Object, taintVal), emit bool) {
	name, fn := st.calleeName(call)
	if sortSanitizers[name] && len(call.Args) > 0 {
		if root := rootIdent(call.Args[0]); root != nil {
			if obj := st.objectOf(root); obj != nil {
				if old, ok := st.vals[obj]; ok && old.kinds != 0 {
					delete(st.vals, obj)
				}
			}
		}
		return
	}
	// copy(dst, src): dst inherits src's taint.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) == 2 {
		if _, isB := st.objectOf(id).(*types.Builtin); isB {
			if root := rootIdent(call.Args[0]); root != nil {
				assign(st.objectOf(root), st.exprTaint(call.Args[1]))
			}
			return
		}
	}
	if !emit {
		return
	}
	// Interprocedural commit: a module function that stores its
	// arguments into shared state, handed an order-tainted argument.
	if fn != nil {
		if callee, ok := st.eng.cg.byFunc[fn]; ok {
			if s := st.eng.summaries[callee]; s != nil && s.commits&taintParam != 0 {
				for _, arg := range call.Args {
					if tv := st.exprTaint(arg); tv.kinds&taintIntrinsic != 0 {
						st.pass.reportf(arg.Pos(),
							"order-tainted value (%s at %s) passed to %s, which stores it into shared state; establish a deterministic order first, or annotate //schedlint:allow ordertaint <reason>",
							tv.desc, st.shortPos(tv.src), callee.name())
						break
					}
				}
			}
		}
	}
	// Encoded output: order taint written to a stream is observable
	// nondeterminism even without a store.
	if isEncodedOutput(name) {
		for _, arg := range call.Args {
			if tv := st.exprTaint(arg); tv.kinds&taintIntrinsic != 0 {
				st.pass.reportf(arg.Pos(),
					"order-tainted value (%s at %s) reaches encoded output via %s; emit in a sorted order instead",
					tv.desc, st.shortPos(tv.src), name)
				break
			}
		}
	}
}

// isEncodedOutput recognizes writer-style emit calls whose byte output
// the determinism contract covers.
func isEncodedOutput(name string) bool {
	switch name {
	case "fmt.Fprintf", "fmt.Fprintln", "fmt.Fprint", "Encoder.Encode", "Writer.Write":
		return true
	}
	return false
}

// exprTaint computes the taint of an expression from current state.
func (st *taintState) exprTaint(e ast.Expr) taintVal {
	switch x := e.(type) {
	case *ast.BasicLit, *ast.FuncLit:
		return taintVal{}
	case *ast.Ident:
		return st.vals[st.objectOf(x)]
	case *ast.ParenExpr:
		return st.exprTaint(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return st.sourceVal(x.Pos(), "channel receive")
		}
		return st.exprTaint(x.X)
	case *ast.StarExpr:
		return st.exprTaint(x.X)
	case *ast.BinaryExpr:
		return st.exprTaint(x.X).union(st.exprTaint(x.Y))
	case *ast.IndexExpr:
		return st.exprTaint(x.X).union(st.exprTaint(x.Index))
	case *ast.SliceExpr:
		return st.exprTaint(x.X)
	case *ast.SelectorExpr:
		if x.X != nil {
			if _, isPkg := st.pkgQualifier(x); isPkg {
				return taintVal{} // pkg.Var / pkg.Const
			}
			return st.exprTaint(x.X)
		}
		return taintVal{}
	case *ast.TypeAssertExpr:
		return st.exprTaint(x.X)
	case *ast.CompositeLit:
		var tv taintVal
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				tv = tv.union(st.exprTaint(kv.Key)).union(st.exprTaint(kv.Value))
			} else {
				tv = tv.union(st.exprTaint(el))
			}
		}
		return tv
	case *ast.CallExpr:
		return st.callTaint(x)
	}
	return taintVal{}
}

// callTaint computes the taint of a call's result.
func (st *taintState) callTaint(call *ast.CallExpr) taintVal {
	argTaint := func() taintVal {
		var tv taintVal
		for _, a := range call.Args {
			tv = tv.union(st.exprTaint(a))
		}
		return tv
	}
	name, fn := st.calleeName(call)
	// Builtins with order-independent results.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := st.objectOf(id).(*types.Builtin); isB {
			switch id.Name {
			case "len", "cap", "make", "new", "delete", "clear":
				return taintVal{}
			default: // append, min, max, …
				return argTaint()
			}
		}
	}
	if sortSanitizers[name] {
		return taintVal{}
	}
	if fn != nil && fn.Pkg() != nil {
		sig, _ := fn.Type().(*types.Signature)
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if sig != nil && sig.Recv() == nil && !globalRandAllowed[fn.Name()] {
				return st.sourceVal(call.Pos(), "unseeded "+name)
			}
		}
		if callee, ok := st.eng.cg.byFunc[fn]; ok {
			// Module-local call: use the summary.
			var tv taintVal
			s := st.eng.summaries[callee]
			if s == nil {
				s = &taintSummary{}
			}
			if s.results&taintIntrinsic != 0 {
				src := s.originPos
				desc := s.originDesc
				if desc == "" {
					desc = "order-dependent result"
				}
				tv = tv.union(taintVal{kinds: taintIntrinsic, src: src,
					desc: desc + " via " + callee.name()})
			}
			if s.results&taintParam != 0 {
				at := argTaint()
				if recv := receiverExpr(call); recv != nil {
					at = at.union(st.exprTaint(recv))
				}
				tv = tv.union(at)
			}
			return tv
		}
	}
	// Conversion or unknown/external call: propagate operand taint
	// (seeded *rand.Rand methods come out clean because the receiver
	// is clean; string/format helpers stay tainted when fed taint).
	at := argTaint()
	if recv := receiverExpr(call); recv != nil {
		at = at.union(st.exprTaint(recv))
	}
	return at
}

// receiverExpr returns the receiver expression of a method call.
func receiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// calleeName resolves a call's static callee: a qualified display name
// ("sort.Slice", "Encoder.Encode") and the *types.Func when known.
func (st *taintState) calleeName(call *ast.CallExpr) (string, *types.Func) {
	switch fe := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := st.objectOf(fe).(*types.Func); ok {
			return fn.Name(), fn
		}
	case *ast.SelectorExpr:
		if sel, ok := st.n.pkg.Info.Selections[fe]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return shortTypeName(sel.Recv()) + "." + fn.Name(), fn
			}
			return "", nil
		}
		if fn, ok := st.n.pkg.Info.Uses[fe.Sel].(*types.Func); ok {
			if fn.Pkg() != nil {
				return filepath.Base(fn.Pkg().Path()) + "." + fn.Name(), fn
			}
			return fn.Name(), fn
		}
	}
	return "", nil
}

// pkgQualifier reports whether a selector is `pkg.Name`.
func (st *taintState) pkgQualifier(sel *ast.SelectorExpr) (*types.PkgName, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := st.n.pkg.Info.Uses[id].(*types.PkgName)
	return pn, ok
}

func (st *taintState) typeOf(e ast.Expr) types.Type {
	if tv, ok := st.n.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (st *taintState) objectOf(id *ast.Ident) types.Object {
	if o := st.n.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return st.n.pkg.Info.Defs[id]
}

// shortPos renders a witness position as basename:line — stable across
// checkouts, precise enough to find the source.
func (st *taintState) shortPos(pos token.Pos) string {
	p := st.n.pkg.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}
