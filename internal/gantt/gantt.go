// Package gantt provides the timeline-reservation structure the paper's
// runtime stage (§6) maintains for storage and compute nodes: sorted
// lists of busy intervals supporting earliest-free-slot queries,
// committed reservations, and cheap tentative overlays used while
// estimating a task's earliest completion time without committing its
// transfers.
package gantt

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a half-open busy period [Start, End).
type Interval struct {
	Start, End float64
	// Tag identifies what the reservation is for (caller-defined).
	Tag int32
}

// Timeline is a single-port resource schedule: a sorted,
// non-overlapping list of busy intervals.
type Timeline struct {
	ivs []Interval
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Reset clears all reservations.
func (t *Timeline) Reset() { t.ivs = t.ivs[:0] }

// Len returns the number of busy intervals.
func (t *Timeline) Len() int { return len(t.ivs) }

// Intervals returns the busy intervals in order. The slice must not be
// modified.
func (t *Timeline) Intervals() []Interval { return t.ivs }

// EarliestSlot returns the earliest start ≥ after at which a
// reservation of the given duration fits.
func (t *Timeline) EarliestSlot(after, dur float64) float64 {
	return earliestSlot(t.ivs, nil, after, dur)
}

// Reserve books [start, start+dur) on the timeline. It panics if the
// slot overlaps an existing reservation: callers must only reserve
// slots returned by EarliestSlot (or verified free).
func (t *Timeline) Reserve(start, dur float64, tag int32) {
	if dur < 0 {
		panic("gantt: negative duration")
	}
	end := start + dur
	i := sort.Search(len(t.ivs), func(i int) bool { return t.ivs[i].Start >= start })
	// check neighbours for overlap
	if i > 0 && t.ivs[i-1].End > start+overlapEps {
		panic(fmt.Sprintf("gantt: reservation [%g,%g) overlaps [%g,%g)", start, end, t.ivs[i-1].Start, t.ivs[i-1].End))
	}
	if i < len(t.ivs) && t.ivs[i].Start < end-overlapEps {
		panic(fmt.Sprintf("gantt: reservation [%g,%g) overlaps [%g,%g)", start, end, t.ivs[i].Start, t.ivs[i].End))
	}
	t.ivs = append(t.ivs, Interval{})
	copy(t.ivs[i+1:], t.ivs[i:])
	t.ivs[i] = Interval{Start: start, End: end, Tag: tag}
}

// FinishTime returns the end of the last reservation (0 when empty).
func (t *Timeline) FinishTime() float64 {
	if len(t.ivs) == 0 {
		return 0
	}
	return t.ivs[len(t.ivs)-1].End
}

// BusyTime returns the total reserved duration.
func (t *Timeline) BusyTime() float64 {
	var sum float64
	for _, iv := range t.ivs {
		sum += iv.End - iv.Start
	}
	return sum
}

// overlapEps tolerates floating-point slop when two reservations abut.
const overlapEps = 1e-9

// Overlay augments a base timeline with a small set of tentative
// reservations, so a candidate task's transfers can be slot-searched
// without mutating the committed schedule. Overlays are meant to hold
// only a handful of intervals (one per input file of one task).
type Overlay struct {
	base  *Timeline
	extra []Interval // sorted by Start
}

// NewOverlay wraps base with an empty tentative set.
func NewOverlay(base *Timeline) *Overlay { return &Overlay{base: base} }

// Reset drops the tentative reservations (the base is untouched).
func (o *Overlay) Reset(base *Timeline) {
	o.base = base
	o.extra = o.extra[:0]
}

// Add tentatively books [start, start+dur).
func (o *Overlay) Add(start, dur float64) {
	iv := Interval{Start: start, End: start + dur}
	i := sort.Search(len(o.extra), func(i int) bool { return o.extra[i].Start >= iv.Start })
	o.extra = append(o.extra, Interval{})
	copy(o.extra[i+1:], o.extra[i:])
	o.extra[i] = iv
}

// EarliestSlot returns the earliest start ≥ after at which dur fits,
// considering both committed and tentative reservations.
func (o *Overlay) EarliestSlot(after, dur float64) float64 {
	return earliestSlot(o.base.ivs, o.extra, after, dur)
}

// earliestSlot merge-scans two sorted interval lists for the first gap
// of length dur starting at or after `after`.
func earliestSlot(a, b []Interval, after, dur float64) float64 {
	if dur < 0 {
		panic("gantt: negative duration")
	}
	t := after
	i := sort.Search(len(a), func(i int) bool { return a[i].End > after })
	j := sort.Search(len(b), func(j int) bool { return b[j].End > after })
	for {
		// next blocking interval: the earlier-starting of a[i], b[j]
		var next *Interval
		if i < len(a) && (j >= len(b) || a[i].Start <= b[j].Start) {
			next = &a[i]
		} else if j < len(b) {
			next = &b[j]
		}
		if next == nil || t+dur <= next.Start+overlapEps {
			return t
		}
		if next.End > t {
			t = next.End
		}
		if i < len(a) && next == &a[i] {
			i++
		} else {
			j++
		}
	}
}

// MultiSlot finds the earliest common start ≥ after at which a
// reservation of duration dur fits simultaneously on every one of the
// given slot-searchers (a transfer occupies its source port,
// destination port and, optionally, a shared link at the same time).
func MultiSlot(after, dur float64, res ...SlotSearcher) float64 {
	t := after
	for iter := 0; ; iter++ {
		advanced := false
		for _, r := range res {
			s := r.EarliestSlot(t, dur)
			if s > t {
				t = s
				advanced = true
			}
		}
		if !advanced {
			return t
		}
		if iter > 1_000_000 {
			panic("gantt: MultiSlot failed to converge")
		}
	}
}

// SlotSearcher is the common query interface of Timeline and Overlay.
type SlotSearcher interface {
	EarliestSlot(after, dur float64) float64
}

// Makespan returns the max finish time across timelines.
func Makespan(ts []*Timeline) float64 {
	m := 0.0
	for _, t := range ts {
		m = math.Max(m, t.FinishTime())
	}
	return m
}
