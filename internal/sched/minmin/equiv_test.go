package minmin

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs/journal"
	"repro/internal/platform"
	"repro/internal/workload"
)

// runArm executes one full pipeline (plan → execute → evict → repeat)
// and returns the provenance journal bytes plus the result, the
// byte-level fingerprint of every decision the scheduler made.
func runArm(t *testing.T, s *Scheduler, compute int, disk int64, seed int64) ([]byte, *core.Result) {
	t.Helper()
	b := workload.Random(seed, 60, 45, 5, 2, 12*platform.MB, platform.PaperComputeFactor)
	p := &core.Problem{Batch: b, Platform: platform.XIO(compute, 2, disk)}
	rec := journal.New()
	res, err := core.RunWith(p, s, core.RunOptions{Checked: true, Obs: core.Observer{Journal: rec}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestMinMinIncrementalEquivalence pins the tentpole contract: the
// incremental heap implementation must reproduce the reference
// full-rescan plan byte for byte — every journal event (placement
// order, chosen nodes, full candidate matrices, staging, execution,
// eviction rationale) and the run result — across unlimited disk,
// eviction-pressured multi-round runs, and replication-disabled
// configurations.
func TestMinMinIncrementalEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		compute int
		disk    int64
		seed    int64
	}{
		{"unlimited", 4, 0, 1},
		{"unlimited-wide", 9, 0, 2},
		{"disk-pressure", 3, 90 * platform.MB, 3},
		{"disk-tight", 4, 70 * platform.MB, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			naiveJ, naiveR := runArm(t, &Scheduler{Naive: true}, tc.compute, tc.disk, tc.seed)
			incJ, incR := runArm(t, &Scheduler{}, tc.compute, tc.disk, tc.seed)
			if !bytes.Equal(naiveJ, incJ) {
				line := 0
				a, b := bytes.Split(naiveJ, []byte("\n")), bytes.Split(incJ, []byte("\n"))
				for i := 0; i < len(a) && i < len(b); i++ {
					if !bytes.Equal(a[i], b[i]) {
						line = i
						break
					}
				}
				t.Fatalf("journals diverge at line %d:\nnaive: %s\nincr:  %s", line, a[line], b[line])
			}
			if naiveR.Makespan != incR.Makespan || naiveR.SubBatches != incR.SubBatches ||
				naiveR.Evictions != incR.Evictions || naiveR.TaskCount != incR.TaskCount {
				t.Fatalf("results diverge: naive %+v vs incremental %+v", naiveR, incR)
			}
		})
	}
}

// TestMinMinIncrementalEquivalenceNoReplication covers the
// DisableReplication arm, where the anyCopy flip has no effect and the
// incremental path must skip its dirty-discount machinery without
// changing a byte.
func TestMinMinIncrementalEquivalenceNoReplication(t *testing.T) {
	b := workload.Random(7, 50, 35, 4, 2, 10*platform.MB, platform.PaperComputeFactor)
	for _, disk := range []int64{0, 55 * platform.MB} {
		p := &core.Problem{Batch: b, Platform: platform.XIO(4, 2, disk), DisableReplication: true}
		var outs [][]byte
		for _, naive := range []bool{true, false} {
			rec := journal.New()
			if _, err := core.RunWith(p, &Scheduler{Naive: naive},
				core.RunOptions{Checked: true, Obs: core.Observer{Journal: rec}}); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := rec.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			outs = append(outs, buf.Bytes())
		}
		if !bytes.Equal(outs[0], outs[1]) {
			t.Fatalf("disk=%d: replication-disabled journals diverge", disk)
		}
	}
}
