package ipsched

import "math"

// polish is the solver's final primal heuristic: steepest-descent task
// reassignment evaluated directly on the IP objective (Eq. 9–12, the
// per-node sum of replication, remote-transfer and computation costs,
// minimized over the maximum). Staging decisions are re-derived for
// every candidate the same way warmStart derives them — the first
// needing node pulls remotely, the rest replicate from it — so the
// evaluation stays consistent with the model. Disk capacity is
// enforced on every candidate.
//
// Branch and bound on the large allocation models frequently exhausts
// its budget before the root relaxation finishes; polishing guarantees
// the returned incumbent is at least a local optimum of the objective,
// which is what lets the IP scheme keep its small quality edge over
// BiPartition at these scales.
func (ins *instance) polish(nodeOf []int, maxRounds int) []int {
	C := ins.C
	cur := append([]int(nil), nodeOf...)
	best := ins.evalObjective(cur)
	for round := 0; round < maxRounds; round++ {
		improved := false
		for k := range cur {
			origin := cur[k]
			bestNode, bestObj := origin, best
			for i := 0; i < C; i++ {
				if i == origin {
					continue
				}
				cur[k] = i
				if !ins.diskFeasible(cur) {
					continue
				}
				if obj := ins.evalObjective(cur); obj < bestObj-1e-9 {
					bestNode, bestObj = i, obj
				}
			}
			cur[k] = bestNode
			if bestNode != origin {
				best = bestObj
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// evalObjective computes the Eq. 12 makespan proxy of an assignment
// with warm-start-style staging.
func (ins *instance) evalObjective(nodeOf []int) float64 {
	C := ins.C
	noRep := ins.st.P.DisableReplication
	load := make([]float64, C)
	for k := range ins.tasks {
		load[nodeOf[k]] += ins.execT[k]
	}
	for l := range ins.classes {
		cl := &ins.classes[l]
		needMask := 0
		for _, k := range cl.req {
			if !cl.present[nodeOf[k]] {
				needMask |= 1 << nodeOf[k]
			}
		}
		if needMask == 0 {
			continue
		}
		sz := float64(cl.size)
		origin := -1
		for i := 0; i < C; i++ {
			if cl.present[i] {
				origin = i
				break
			}
		}
		if noRep {
			for i := 0; i < C; i++ {
				if needMask&(1<<i) != 0 {
					load[i] += ins.tRem * sz
				}
			}
			continue
		}
		rest := needMask
		if origin < 0 {
			// First needing node pulls remotely.
			for i := 0; i < C; i++ {
				if needMask&(1<<i) != 0 {
					origin = i
					load[i] += ins.tRem * sz
					rest &^= 1 << i
					break
				}
			}
		}
		for i := 0; i < C; i++ {
			if rest&(1<<i) != 0 {
				load[origin] += ins.tRep * sz
				load[i] += ins.tRep * sz
			}
		}
	}
	obj := 0.0
	for i := 0; i < C; i++ {
		obj = math.Max(obj, load[i])
	}
	return obj
}

// diskFeasible verifies the per-node capacity of an assignment's
// implied staging (newly stored classes only).
func (ins *instance) diskFeasible(nodeOf []int) bool {
	C := ins.C
	var used [64]int64
	for l := range ins.classes {
		cl := &ins.classes[l]
		seen := 0
		for _, k := range cl.req {
			i := nodeOf[k]
			if !cl.present[i] && seen&(1<<i) == 0 {
				seen |= 1 << i
				used[i] += cl.size
			}
		}
	}
	for i := 0; i < C; i++ {
		free := ins.st.Free(i)
		if free < 1<<61 && used[i] > free {
			return false
		}
	}
	return true
}
