// Package tracepurity is a schedlint golden-test fixture for the
// tracepurity check: wall-clock reads fire anywhere outside
// internal/obs; annotated sites and pure time arithmetic do not.
package tracepurity

import "time"

// badClock reads the wall clock twice. Two findings.
func badClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// badUntil reads the clock through time.Until. One finding.
func badUntil(deadline time.Time) time.Duration {
	return time.Until(deadline)
}

// goodArithmetic computes on time values passed in — methods on
// time.Time never read the clock.
func goodArithmetic(a, b time.Time) time.Duration {
	return b.Sub(a)
}

// goodUnits uses the time package only for duration constants.
func goodUnits() time.Duration {
	return 3 * time.Second
}

// suppressedClock is the user-facing timing case — annotated with its
// justification, no finding.
func suppressedClock() time.Time {
	//schedlint:allow tracepurity fixture: wall-clock total printed to the user only
	return time.Now()
}
