package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// forEachCell runs f(0..n−1) — one call per (row, scheduler) cell of a
// figure — across up to workers goroutines. Every cell is independent:
// it generates its own workload, platform and scheduler, so fan-out
// changes only wall-clock time, never results. Results are collected
// by index on the caller's side, and the error returned is the
// lowest-index one, keeping failure reporting deterministic too.
func forEachCell(workers, n int, f func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachCellObserved is forEachCell with deterministic observability
// aggregation: each cell records into private sinks (metrics registry,
// journal recorder), and after all cells finish the sinks merge into
// the root observer in cell-index order — counters and histograms are
// commutative anyway, gauges get a fixed last-writer, and journal
// events keep their per-cell emission order — so the aggregate
// snapshot and the merged journal bytes are identical at any worker
// count. The tracer is passed through shared: its export sorts events
// canonically, so concurrent recording is safe there too.
func forEachCellObserved(workers, n int, root core.Observer, f func(i int, ob core.Observer) error) error {
	if root.Metrics == nil && root.Journal == nil {
		return forEachCell(workers, n, func(i int) error {
			return f(i, core.Observer{Trace: root.Trace})
		})
	}
	var cells []*obs.Metrics
	if root.Metrics != nil {
		cells = make([]*obs.Metrics, n)
		for i := range cells {
			cells[i] = obs.NewMetrics()
		}
	}
	var cellJ []*journal.Recorder
	if root.Journal != nil {
		cellJ = make([]*journal.Recorder, n)
		for i := range cellJ {
			cellJ[i] = journal.New()
			cellJ[i].Emit(journal.Event{Kind: journal.KindCell,
				Run: &journal.Run{Label: fmt.Sprintf("cell %d/%d", i, n)}})
		}
	}
	err := forEachCell(workers, n, func(i int) error {
		ob := core.Observer{Trace: root.Trace}
		if cells != nil {
			ob.Metrics = cells[i]
		}
		if cellJ != nil {
			ob.Journal = cellJ[i]
		}
		return f(i, ob)
	})
	for _, m := range cells {
		root.Metrics.Merge(m)
	}
	for _, j := range cellJ {
		root.Journal.Merge(j)
	}
	return err
}
