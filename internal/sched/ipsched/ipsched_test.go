package ipsched

import (
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched/bipart"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/workload"
)

func tinyProblem(t *testing.T, tasks int, overlap workload.Overlap, disk int64) *core.Problem {
	t.Helper()
	b, err := workload.Sat(workload.SatConfig{NumTasks: tasks, Overlap: overlap, NumStorage: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{Batch: b, Platform: platform.XIO(2, 2, disk)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestIPRunsUnlimited(t *testing.T) {
	p := tinyProblem(t, 10, workload.HighOverlap, 0)
	s := New(1)
	s.AllocBudget = 5 * time.Second
	res, err := core.RunChecked(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubBatches != 1 {
		t.Errorf("sub-batches = %d, want 1", res.SubBatches)
	}
	if res.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
}

func TestIPPlanIsPinnedAndComplete(t *testing.T) {
	p := tinyProblem(t, 8, workload.HighOverlap, 0)
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	s := New(2)
	s.AllocBudget = 5 * time.Second
	plan, err := s.PlanSubBatch(st, p.Batch.AllTasks())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Pinned {
		t.Error("IP plan must be pinned")
	}
	if len(plan.Tasks) != 8 {
		t.Errorf("planned %d of 8 tasks", len(plan.Tasks))
	}
	// Every file of every task must be covered by a staging op on the
	// task's node (initial cluster is empty).
	staged := make(map[[2]int]bool)
	for _, op := range plan.Staging {
		staged[[2]int{int(op.File), op.Dest}] = true
	}
	for _, k := range plan.Tasks {
		n := plan.Node[k]
		for _, f := range p.Batch.Tasks[k].Files {
			if !staged[[2]int{int(f), n}] {
				t.Fatalf("task %d on node %d: file %d has no staging op", k, n, f)
			}
		}
	}
	// Every file must be remote-transferred at least once (Eq. 8).
	remote := make(map[batch.FileID]bool)
	for _, op := range plan.Staging {
		if op.Kind == core.Remote {
			remote[op.File] = true
		}
	}
	for f := 0; f < p.Batch.NumFiles(); f++ {
		if len(p.Batch.Require(batch.FileID(f))) > 0 && !remote[batch.FileID(f)] {
			t.Fatalf("file %d never remote-transferred", f)
		}
	}
}

func TestIPBeatsOrMatchesHeuristicsOnSharedTiny(t *testing.T) {
	// With plenty of sharing and a tight time budget the IP (warm-
	// started) must be at least as good as the baselines on the IP's
	// own objective proxy — we compare simulated makespans and allow a
	// 10% tolerance for runtime-stage effects the static IP cannot see.
	p := tinyProblem(t, 12, workload.HighOverlap, 0)
	ip := New(3)
	ip.AllocBudget = 10 * time.Second
	resIP, err := core.RunChecked(p, ip)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Scheduler{minmin.New(), jdp.New(), bipart.New(4)} {
		res, err := core.RunChecked(p, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if resIP.Makespan > res.Makespan*1.10 {
			t.Errorf("IP makespan %v clearly worse than %s %v", resIP.Makespan, s.Name(), res.Makespan)
		}
	}
}

func TestIPLimitedDiskTwoStage(t *testing.T) {
	b, err := workload.Sat(workload.SatConfig{NumTasks: 16, Overlap: workload.LowOverlap, NumStorage: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	total := b.TotalUniqueBytes(nil)
	p := &core.Problem{Batch: b, Platform: platform.XIO(2, 2, total/3)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := New(6)
	s.AllocBudget = 5 * time.Second
	s.SelectBudget = 5 * time.Second
	res, err := core.RunChecked(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubBatches < 2 {
		t.Errorf("expected ≥2 sub-batches, got %d", res.SubBatches)
	}
}

func TestIPDisableReplication(t *testing.T) {
	p := tinyProblem(t, 8, workload.HighOverlap, 0)
	p.DisableReplication = true
	s := New(7)
	s.AllocBudget = 5 * time.Second
	res, err := core.RunChecked(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicaTransfers != 0 {
		t.Errorf("%d replica transfers with replication disabled", res.ReplicaTransfers)
	}
}

func TestFileClassMerging(t *testing.T) {
	// Three files shared by the same two tasks must collapse into one
	// class; a file with a different sharer set must not.
	b := batch.New()
	f1 := b.AddFile("a", 10, 0)
	f2 := b.AddFile("b", 20, 0)
	f3 := b.AddFile("c", 30, 0)
	f4 := b.AddFile("d", 40, 0)
	b.AddTask("t0", 1, []batch.FileID{f1, f2, f3, f4})
	b.AddTask("t1", 1, []batch.FileID{f1, f2, f3})
	p := &core.Problem{Batch: b, Platform: platform.Uniform(2, 1, 0, 100, 1000)}
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	ins := buildInstance(st, b.AllTasks())
	if len(ins.classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(ins.classes))
	}
	sizes := map[int64]bool{}
	for _, c := range ins.classes {
		sizes[c.size] = true
	}
	if !sizes[60] || !sizes[40] {
		t.Fatalf("class sizes wrong: %+v", ins.classes)
	}
}

func TestClassSplitByPresence(t *testing.T) {
	// Same sharer set but different current placement → separate
	// classes.
	b := batch.New()
	f1 := b.AddFile("a", 10, 0)
	f2 := b.AddFile("b", 20, 0)
	b.AddTask("t0", 1, []batch.FileID{f1, f2})
	p := &core.Problem{Batch: b, Platform: platform.Uniform(2, 1, 0, 100, 1000)}
	st, err := core.NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddFile(0, f1, 0); err != nil {
		t.Fatal(err)
	}
	ins := buildInstance(st, b.AllTasks())
	if len(ins.classes) != 2 {
		t.Fatalf("classes = %d, want 2 (presence differs)", len(ins.classes))
	}
}

func TestStrongAndAggregatedAgreeOnTiny(t *testing.T) {
	p := tinyProblem(t, 6, workload.MediumOverlap, 0)
	for _, strong := range []bool{false, true} {
		s := New(8)
		s.Strong = strong
		s.AllocBudget = 10 * time.Second
		st, err := core.NewState(p)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.PlanSubBatch(st, p.Batch.AllTasks())
		if err != nil {
			t.Fatalf("strong=%v: %v", strong, err)
		}
		if len(plan.Tasks) != 6 {
			t.Fatalf("strong=%v: planned %d tasks", strong, len(plan.Tasks))
		}
	}
}
