GO ?= go

.PHONY: all help build vet lint test race fuzz-short chaos spec-chaos explain-check verify bench bench-scale bench-all bench-parallel profile figures clean

all: verify

help:
	@echo "Targets:"
	@echo "  make verify        - full tier-1 gate: build, vet, lint, test, race, fuzz-short, explain-check"
	@echo "  make build         - compile every package"
	@echo "  make vet           - go vet"
	@echo "  make lint          - run schedlint -strict (7 checks + suppression-hygiene audit)"
	@echo "  make test          - unit tests"
	@echo "  make race          - unit tests under the race detector"
	@echo "  make fuzz-short    - one short iteration of each fuzz target"
	@echo "  make chaos         - fault-injection suite under -race + the chaos matrix"
	@echo "  make spec-chaos    - speculation suite under -race + a speculated CLI run"
	@echo "  make explain-check - journal byte-determinism (workers 1 vs 8) + schedexplain smoke"
	@echo "  make bench         - per-scheduler benches -> BENCH_schedulers.json"
	@echo "  make bench-scale   - task-decade scaling sweep -> BENCH_scale.json"
	@echo "  make bench-all     - all benchmarks, one iteration"
	@echo "  make bench-parallel- workers=1 vs workers=N scaling benches"
	@echo "  make profile       - CPU/heap profiles + Chrome trace of one run"
	@echo "  make figures       - regenerate the paper figures (quick mode)"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# schedlint (cmd/schedlint) statically enforces the determinism
# contract: no map-order-dependent writes, no wall clock or global
# rand in solver packages, no scheduling-order merges, no float
# accumulation in map order, no order-tainted commits (interprocedural
# dataflow), no lock-order cycles. -strict additionally audits the
# allow annotations themselves. See DESIGN.md §8 and §11.
lint:
	$(GO) run ./cmd/schedlint -dir . -strict

test:
	$(GO) test ./...

# The parallel solver core (mip portfolio, concurrent hypergraph
# recursion, experiment fan-out) makes the race detector part of the
# repository's tier-1 verification, not an optional extra.
race:
	$(GO) test -race ./...

# One short round of each fuzz target: replays the committed corpus
# plus a few seconds of new inputs, enough to catch invariant
# regressions without turning verify into a fuzzing campaign.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzPartitionKWay -fuzztime=5s ./internal/hypergraph/
	$(GO) test -run='^$$' -fuzz=FuzzTimelineReserve -fuzztime=5s ./internal/gantt/
	$(GO) test -run='^$$' -fuzz=FuzzFaultPlan -fuzztime=5s ./internal/core/

# The fault-injection suite under the race detector plus the full
# chaos experiment matrix: every deterministic-recovery property
# (identical seeds => identical schedules at any worker count,
# fault-free parity, degraded-run termination) exercised end to end.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Crash|Degrade|Preempt' ./internal/core/ ./internal/faults/ ./internal/gantt/ ./internal/experiments/ -v
	$(GO) run ./cmd/paperfigs -fig chaos -quick

# The speculative-execution suite under the race detector: policy
# parsing/thresholds, the first-finisher-wins race outcomes, rescue
# and double-requeue invariants, and journal byte-determinism with
# speculation armed (the chaos matrix above sweeps the ±spec arms of
# every scheduler; this adds the focused property tests plus one
# speculated CLI run end to end).
spec-chaos:
	$(GO) test -race -run 'Spec|Straggler|Journal' ./internal/core/ ./internal/spec/ ./internal/faults/ ./internal/experiments/ -v
	$(GO) run ./cmd/batchsched -app image -tasks 40 -sched minmin \
		-faults harsh,mttf=100 -speculate single-fork:0.86

# Decision-journal determinism from the CLI down: the same seeded
# figure at -workers 1 and -workers 8 must write byte-identical
# provenance journals, and schedexplain must answer over the result
# (summary + critical path). CI's `journal` job runs this and archives
# the journal as an artifact.
explain-check:
	$(GO) run ./cmd/paperfigs -fig 3 -quick -skip-ip -workers 1 -journal journal_w1.jsonl > /dev/null
	$(GO) run ./cmd/paperfigs -fig 3 -quick -skip-ip -workers 8 -journal journal_w8.jsonl > /dev/null
	cmp journal_w1.jsonl journal_w8.jsonl
	$(GO) run ./cmd/schedexplain -journal journal_w1.jsonl
	$(GO) run ./cmd/schedexplain -journal journal_w1.jsonl -critical > /dev/null

verify: build vet lint test race fuzz-short explain-check

# One timed pipeline run per scheduling scheme, parsed into
# BENCH_schedulers.json (per-scheme ns/op, allocs/op, simulated
# makespan) so CI can archive the performance trajectory; the fault/
# speculation arms land in BENCH_faults.json with the wasted_compute_s
# and spec_wins columns alongside.
bench:
	$(GO) test -run='^$$' -bench='^BenchmarkSchedulers$$' -benchmem -benchtime=5x \
		| $(GO) run ./cmd/benchjson -o BENCH_schedulers.json
	$(GO) test -run='^$$' -bench='^BenchmarkFaultRecovery$$' -benchmem -benchtime=5x \
		| $(GO) run ./cmd/benchjson -o BENCH_faults.json

# The DESIGN §14 scaling sweep: task decades 100 -> 100k over the
# IMAGE workload under MinMin and JobDataPresent — full-pipeline arms
# (BenchmarkScale, including the +shard arms that carry the 100k
# tier) and plan-only optimized-vs-naive arms (BenchmarkScalePlan) —
# parsed into BENCH_scale.json. One iteration per tier: the 100k arms
# take minutes each and the naive 10k arms tens of seconds, so
# -benchtime=1x is the point, not a shortcut.
bench-scale:
	$(GO) test -run='^$$' -bench='^BenchmarkScale(Plan)?$$' -benchmem -benchtime=1x -timeout=120m \
		| $(GO) run ./cmd/benchjson -o BENCH_scale.json

bench-all:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Just the workers=1 vs workers=N scaling benches.
bench-parallel:
	$(GO) test -bench='BenchmarkMIPSolve|BenchmarkKWayPartition|BenchmarkFig3Workers' -benchmem

# Profile one representative run: pprof CPU + heap, Go runtime trace,
# and the Chrome trace of the pipeline itself.
profile:
	$(GO) run ./cmd/batchsched -app image -tasks 200 -sched bipartition \
		-cpuprofile cpu.pprof -memprofile mem.pprof -trace runtime.trace \
		-obs-trace obs_trace.json -obs-metrics obs_metrics.json
	@echo "wrote cpu.pprof mem.pprof runtime.trace obs_trace.json obs_metrics.json"

figures:
	$(GO) run ./cmd/paperfigs -quick

clean:
	$(GO) clean ./...
