// Package allow_all is a schedlint golden-test fixture for the "all"
// suppression wildcard: every statement here would otherwise trigger a
// check, and every one is silenced by a single allow-all annotation.
package allow_all

import "time"

// wildcard triggers nowallclock, detrange and floataccum — all
// silenced line by line with the wildcard form.
func wildcard(m map[string]float64) (time.Time, float64, []string) {
	//schedlint:allow all fixture: wildcard silences every check
	now := time.Now()
	var sum float64
	var keys []string
	//schedlint:allow all fixture: wildcard silences every check
	for k, v := range m {
		sum += v //schedlint:allow all fixture: wildcard silences every check
		//schedlint:allow all fixture: wildcard silences every check
		keys = append(keys, k)
	}
	return now, sum, keys
}
