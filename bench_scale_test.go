package repro

import (
	"fmt"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched/jdp"
	"repro/internal/sched/minmin"
	"repro/internal/sched/shard"
	"repro/internal/workload"
)

// scaleTiers sweeps task decades over the paper's IMAGE workload with a
// patient pool and cluster that grow with the batch, topping out at the
// DESIGN §14 target shape: 100k tasks over ~10k files (74 patients x
// 136 files) on 1k compute nodes. High overlap keeps each patient's
// file region disjoint from the others', so the 100k batch decomposes
// into ~74 independent components — exactly the structure the shard
// scheduler exploits.
var scaleTiers = []struct {
	tasks, patients, nodes int
}{
	{100, 1, 4},
	{1000, 8, 16},
	{10_000, 30, 64},
	{100_000, 74, 1000},
}

func scaleProblem(b *testing.B, tasks, patients, nodes int) *core.Problem {
	b.Helper()
	bt, err := workload.Image(workload.ImageConfig{
		NumTasks: tasks, Overlap: workload.HighOverlap,
		NumStorage: 4, Seed: 17, MaxPatients: patients,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := &core.Problem{Batch: bt, Platform: platform.XIO(nodes, 4, 0)}
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkScale is the full-pipeline (plan + execute) sweep: one run
// per tier per scheme, reporting simulated makespan alongside wall
// time. The +shard arms plan per file-sharing component concurrently;
// their output is byte-identical at any worker count (pinned by
// TestWorkerInvariance in internal/sched/shard). `make bench-scale`
// parses this plus BenchmarkScalePlan into BENCH_scale.json.
func BenchmarkScale(b *testing.B) {
	schemes := []struct {
		name     string
		maxTasks int
		mk       func() core.Scheduler
	}{
		// Unsharded MinMin stops at 10k: its heap still pays an O(C)
		// re-verify per invalidated entry, and at 1k nodes the 100k
		// tier needs ~25 CPU-minutes. The +shard arm is the designated
		// 100k path — per-patient components plan concurrently on all
		// cores (workers<=0 means GOMAXPROCS).
		{"MinMin", 10_000, func() core.Scheduler { return minmin.New() }},
		{"MinMin+shard", 100_000, func() core.Scheduler { return shard.New(minmin.New(), 0) }},
		{"JobDataPresent", 100_000, func() core.Scheduler { return jdp.New() }},
		{"JobDataPresent+shard", 100_000, func() core.Scheduler { return shard.New(jdp.New(), 0) }},
	}
	for _, scheme := range schemes {
		for _, tier := range scaleTiers {
			if tier.tasks > scheme.maxTasks {
				continue
			}
			b.Run(fmt.Sprintf("%s/tasks=%d", scheme.name, tier.tasks), func(b *testing.B) {
				p := scaleProblem(b, tier.tasks, tier.patients, tier.nodes)
				b.ReportAllocs()
				runScheduler(b, p, scheme.mk(), "makespan_s")
			})
		}
	}
}

// BenchmarkScalePlan isolates the planner: a single PlanSubBatch call
// over the whole batch (unlimited disk, so every scheme plans all
// tasks in one sub-batch), no executor. This is where the incremental
// data structures show their edge over the reference full-rescan
// arms: the naive JDP re-scans every cluster node per (task,file)
// availability probe (~18x slower at the 10k tier), and naive MinMin
// re-runs an O(T·C) argmin per committed task, which extrapolates to
// hours at 100k. The MinMin arms both stop at 10k — the sequential
// incremental planner still pays an O(C) re-verify per invalidated
// heap entry, so its 100k/1k-node answer is the sharded arm in
// BenchmarkScale, not an unsharded plan.
func BenchmarkScalePlan(b *testing.B) {
	schemes := []struct {
		name     string
		maxTasks int
		mk       func() core.Scheduler
	}{
		{"MinMin", 10_000, func() core.Scheduler { return minmin.New() }},
		{"MinMin-naive", 10_000, func() core.Scheduler { return &minmin.Scheduler{Naive: true} }},
		{"JobDataPresent", 100_000, func() core.Scheduler { return jdp.New() }},
		{"JobDataPresent-naive", 10_000, func() core.Scheduler {
			s := jdp.New()
			s.Naive = true
			return s
		}},
	}
	for _, scheme := range schemes {
		for _, tier := range scaleTiers {
			if tier.tasks > scheme.maxTasks {
				continue
			}
			b.Run(fmt.Sprintf("%s/tasks=%d", scheme.name, tier.tasks), func(b *testing.B) {
				p := scaleProblem(b, tier.tasks, tier.patients, tier.nodes)
				pending := make([]batch.TaskID, len(p.Batch.Tasks))
				for i := range pending {
					pending[i] = batch.TaskID(i)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := core.NewState(p)
					if err != nil {
						b.Fatal(err)
					}
					plan, err := scheme.mk().PlanSubBatch(st, pending)
					if err != nil {
						b.Fatal(err)
					}
					if len(plan.Tasks) != len(pending) {
						b.Fatalf("planned %d of %d tasks", len(plan.Tasks), len(pending))
					}
				}
			})
		}
	}
}
