package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{Check: "detrange", Pos: token.Position{Filename: "/repo/internal/x/a.go", Line: 12, Column: 2},
			Msg: "map iteration writes to out"},
		{Check: "lockorder", Pos: token.Position{Filename: "/elsewhere/b.go", Line: 3, Column: 1},
			Msg: "acquires b while holding a"},
	}
}

// TestWriteText pins the classic line format byte-for-byte: paths
// inside the root are relativized, paths outside it are left alone.
func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sampleFindings(), "/repo"); err != nil {
		t.Fatal(err)
	}
	want := "internal/x/a.go:12:2: detrange: map iteration writes to out\n" +
		"/elsewhere/b.go:3:1: lockorder: acquires b while holding a\n"
	if buf.String() != want {
		t.Errorf("text output changed:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

// TestWriteJSON checks the schedlint/1 report: version, counts, and
// per-finding fields round-trip.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleFindings(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Version  string   `json:"version"`
		Checks   []string `json:"checks"`
		Findings []struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Message string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Version != "schedlint/1" || rep.Count != 2 || len(rep.Findings) != 2 {
		t.Errorf("report header wrong: version=%q count=%d findings=%d", rep.Version, rep.Count, len(rep.Findings))
	}
	if len(rep.Checks) != len(CheckNames()) {
		t.Errorf("checks list has %d entries, want %d", len(rep.Checks), len(CheckNames()))
	}
	f := rep.Findings[0]
	if f.Check != "detrange" || f.File != "internal/x/a.go" || f.Line != 12 || f.Column != 2 {
		t.Errorf("first finding mangled: %+v", f)
	}
}

// TestWriteSARIF checks the SARIF 2.1.0 envelope: schema, one run, a
// rule per registered check plus the hygiene categories, and
// slash-separated root-relative artifact URIs.
func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleFindings(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("envelope wrong: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "schedlint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if want := len(CheckNames()) + len(hygieneChecks); len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules: got %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results: got %d, want 2", len(run.Results))
	}
	res := run.Results[0]
	loc := res.Locations[0].PhysicalLocation
	if res.RuleID != "detrange" || res.Level != "error" ||
		loc.ArtifactLocation.URI != "internal/x/a.go" ||
		loc.Region.StartLine != 12 || loc.Region.StartColumn != 2 {
		t.Errorf("first result mangled: %+v", res)
	}
}
