package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "demo",
		XLabel:  "overlap",
		YLabel:  "seconds",
		Columns: []string{"A", "B"},
	}
	t.AddRow("high", 1.5, 2000)
	t.AddRowMissing("low", []float64{3.25, 0}, []bool{false, true})
	t.Notes = append(t.Notes, "a note")
	return t
}

func TestFprint(t *testing.T) {
	var sb strings.Builder
	sample().Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "overlap", "A", "B", "high", "1.500", "2000", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Missing cell renders as "-".
	lowLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "low") {
			lowLine = line
		}
	}
	if !strings.HasSuffix(strings.TrimRight(lowLine, " "), "-") {
		t.Errorf("missing cell not rendered as -: %q", lowLine)
	}
}

func TestFprintCSV(t *testing.T) {
	var sb strings.Builder
	sample().FprintCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "overlap,A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "low,3.25," {
		t.Fatalf("missing cell row = %q", lines[2])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{XLabel: "x", Columns: []string{`we"ird,name`}}
	tb.AddRow("r", 1)
	var sb strings.Builder
	tb.FprintCSV(&sb)
	if !strings.Contains(sb.String(), `"we""ird,name"`) {
		t.Fatalf("escaping failed: %s", sb.String())
	}
}
