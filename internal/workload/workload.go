// Package workload generates synthetic batches that reproduce the
// published statistics of the paper's two application emulators:
//
//   - SAT: satellite data processing (Titan-style). A 20-day, ~50 GB
//     dataset of 50 MB chunk files declustered over the storage nodes
//     with a Hilbert curve; tasks are spatio-temporal window queries
//     directed at 4 geographic hot-spot regions.
//   - IMAGE: biomedical image analysis. A ~2 TB dataset of 2000
//     patients with MRI (4 MB) and CT (64 MB) image files distributed
//     round-robin over the storage nodes; tasks select images by
//     patient, study and modality.
//
// Both emulators expose the paper's three overlap classes (high ≈ 85 %,
// medium ≈ 40 %, low ≈ 10 % for SAT / 0 % for IMAGE) measuring how much
// of a task's file set is shared with other tasks in the batch.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/batch"
	"repro/internal/hilbert"
	"repro/internal/platform"
)

// Overlap selects one of the paper's three file-sharing classes.
type Overlap int

// Overlap classes, matching the paper's workload taxonomy.
const (
	HighOverlap   Overlap = iota // ≈85 % shared accesses
	MediumOverlap                // ≈40 % shared accesses
	LowOverlap                   // ≈10 % (SAT) / 0 % (IMAGE)
)

// String returns the class name used in the paper's figures.
func (o Overlap) String() string {
	switch o {
	case HighOverlap:
		return "high"
	case MediumOverlap:
		return "medium"
	case LowOverlap:
		return "low"
	default:
		return fmt.Sprintf("Overlap(%d)", int(o))
	}
}

// fraction returns the target shared-access fraction for an application.
func (o Overlap) fraction(app string) float64 {
	switch o {
	case HighOverlap:
		return 0.85
	case MediumOverlap:
		return 0.40
	case LowOverlap:
		if app == "IMAGE" {
			return 0.0
		}
		return 0.10
	}
	return 0
}

// SatConfig parameterizes the SAT emulator. The zero value is filled
// with the paper's defaults by Sat.
type SatConfig struct {
	NumTasks     int
	Overlap      Overlap
	NumStorage   int   // storage nodes to decluster over
	Seed         int64 //
	Days         int   // dataset extent in days (default 20)
	CellsPerDay  int   // files per day (default 50 → 1000 files ≈ 50 GB)
	FileSize     int64 // default 50 MB
	FilesPerTask int   // average files per task; default depends on Overlap
	Hotspots     int   // hot-spot regions (default 4)
	// ComputeFactor converts input bytes to seconds (default paper's
	// 0.001 s/MB).
	ComputeFactor float64
}

// Sat generates a satellite-data-processing batch.
//
// The dataset is a Days × CellsPerDay grid of chunk files laid out in
// Hilbert order over a spatial grid per day; queries are contiguous
// windows in (day, Hilbert-distance) space anchored at one of the
// hot-spot regions, so tasks directed at the same hot spot request
// heavily overlapping file sets.
func Sat(cfg SatConfig) (*batch.Batch, error) {
	if cfg.NumTasks <= 0 {
		return nil, fmt.Errorf("workload: NumTasks must be positive")
	}
	if cfg.NumStorage <= 0 {
		cfg.NumStorage = 4
	}
	if cfg.Days == 0 {
		cfg.Days = 20
	}
	if cfg.CellsPerDay == 0 {
		cfg.CellsPerDay = 50
	}
	if cfg.FileSize == 0 {
		cfg.FileSize = 50 * platform.MB
	}
	if cfg.FilesPerTask == 0 {
		// Paper: high overlap tasks access ~8 files on average; medium
		// and low overlap tasks ~14.
		if cfg.Overlap == HighOverlap {
			cfg.FilesPerTask = 8
		} else {
			cfg.FilesPerTask = 14
		}
	}
	if cfg.Hotspots == 0 {
		cfg.Hotspots = 4
	}
	if cfg.ComputeFactor == 0 {
		cfg.ComputeFactor = platform.PaperComputeFactor
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Build the file universe: CellsPerDay spatial cells per day. The
	// spatial grid is the smallest near-square holding CellsPerDay
	// cells; file Home follows the Hilbert declustering of that grid,
	// offset per day so consecutive days do not pile onto node 0.
	w, h := gridDims(cfg.CellsPerDay)
	assign := hilbert.Decluster(w, h, cfg.NumStorage)
	b := batch.New()
	nFiles := cfg.Days * cfg.CellsPerDay
	fileAt := make([]batch.FileID, nFiles)
	idx := 0
	for day := 0; day < cfg.Days; day++ {
		// enumerate cells in Hilbert order so that file index order is
		// spatial-locality order.
		n := 1
		for n < w || n < h {
			n *= 2
		}
		cell := 0
		for d := 0; d < n*n && cell < cfg.CellsPerDay; d++ {
			x, y := hilbert.D2XY(n, d)
			if x >= w || y >= h {
				continue
			}
			home := (assign[y][x] + day) % cfg.NumStorage
			name := fmt.Sprintf("sat-d%02d-c%03d", day, cell)
			fileAt[idx] = b.AddFile(name, cfg.FileSize, home)
			cell++
			idx++
		}
	}

	// Hot spots: distinct, non-overlapping anchor regions in the
	// (day, cell) index space, matching the paper's 4 disjoint query
	// sets.
	gen := overlapGenerator{
		rng:          rng,
		pool:         fileAt,
		groups:       cfg.Hotspots,
		filesPerTask: cfg.FilesPerTask,
		sharedFrac:   cfg.Overlap.fraction("SAT"),
	}
	sets := gen.taskFileSets(cfg.NumTasks)
	for ti, fs := range sets {
		var bytes int64
		for _, f := range fs {
			bytes += b.FileSize(f)
		}
		comp := cfg.ComputeFactor * float64(bytes)
		b.AddTask(fmt.Sprintf("sat-q%04d", ti), comp, fs)
	}
	if err := b.Finalize(); err != nil {
		return nil, err
	}
	return compact(b)
}

// ImageConfig parameterizes the IMAGE emulator.
type ImageConfig struct {
	NumTasks   int
	Overlap    Overlap
	NumStorage int
	Seed       int64
	Patients   int   // default 2000
	StudiesPer int   // studies per patient (default 8)
	MRISize    int64 // default 4 MB
	CTSize     int64 // default 64 MB
	// ImagesPerMRIStudy / ImagesPerCTStudy control dataset volume;
	// defaults give ≈1 GB per patient ⇒ ≈2 TB overall.
	ImagesPerMRIStudy int
	ImagesPerCTStudy  int
	FilesPerTask      int // default 8 (paper: ~8 files per task)
	// HotGroups fixes the number of hot (patient, study) groups;
	// 0 derives it from the batch size (≈12 tasks per group).
	HotGroups     int
	ComputeFactor float64
	// MaxPatients caps the patients actually materialized as files;
	// large batches only touch the patients the tasks query, so the
	// emulator lazily creates only those. Zero means derive from the
	// task count.
	MaxPatients int
}

// Image generates a biomedical-image-analysis batch.
//
// Each patient has StudiesPer studies, alternating MRI and CT
// modalities; a study is a series of image files. A task selects a
// window of images from one (patient, study) combination. Overlap
// classes reuse hot (patient, study) combinations across tasks; the
// low-overlap class gives every task a distinct patient (0 % overlap,
// as in the paper). Images of each patient are distributed round-robin
// over the storage nodes.
func Image(cfg ImageConfig) (*batch.Batch, error) {
	if cfg.NumTasks <= 0 {
		return nil, fmt.Errorf("workload: NumTasks must be positive")
	}
	if cfg.NumStorage <= 0 {
		cfg.NumStorage = 4
	}
	if cfg.Patients == 0 {
		cfg.Patients = 2000
	}
	if cfg.StudiesPer == 0 {
		cfg.StudiesPer = 8
	}
	if cfg.MRISize == 0 {
		cfg.MRISize = 4 * platform.MB
	}
	if cfg.CTSize == 0 {
		cfg.CTSize = 64 * platform.MB
	}
	if cfg.ImagesPerMRIStudy == 0 {
		cfg.ImagesPerMRIStudy = 32 // 32 × 4 MB = 128 MB per MRI study
	}
	if cfg.ImagesPerCTStudy == 0 {
		cfg.ImagesPerCTStudy = 2 // 2 × 64 MB = 128 MB per CT study
	}
	if cfg.FilesPerTask == 0 {
		cfg.FilesPerTask = 8
	}
	if cfg.ComputeFactor == 0 {
		cfg.ComputeFactor = platform.PaperComputeFactor
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Hot (patient, study) groups: tasks in a group share that
	// combination's images. The group count scales with the batch so
	// that, as in the paper's Figure 5(b) sweep, the aggregate data
	// requirement grows roughly linearly with batch size (≈12 tasks
	// per hot combination).
	hot := cfg.HotGroups
	if hot == 0 {
		hot = cfg.NumTasks / 12
		if hot < 4 {
			hot = 4
		}
	}
	// Materialize only the patients tasks will touch. High/medium
	// overlap concentrates tasks on the hot patients; low overlap
	// needs one fresh patient per task.
	needPatients := cfg.MaxPatients
	if needPatients == 0 {
		switch cfg.Overlap {
		case LowOverlap:
			needPatients = cfg.NumTasks
		default:
			needPatients = hot
		}
		if needPatients > cfg.Patients {
			needPatients = cfg.Patients
		}
	}

	b := batch.New()
	// files[p][s] lists the image files of study s of patient p.
	files := make([][][]batch.FileID, needPatients)
	rr := 0
	for p := 0; p < needPatients; p++ {
		files[p] = make([][]batch.FileID, cfg.StudiesPer)
		for s := 0; s < cfg.StudiesPer; s++ {
			mri := s%2 == 0
			n, size, mod := cfg.ImagesPerMRIStudy, cfg.MRISize, "mri"
			if !mri {
				n, size, mod = cfg.ImagesPerCTStudy, cfg.CTSize, "ct"
			}
			for im := 0; im < n; im++ {
				name := fmt.Sprintf("img-p%04d-s%02d-%s-%03d", p, s, mod, im)
				f := b.AddFile(name, size, rr%cfg.NumStorage)
				rr++
				files[p][s] = append(files[p][s], f)
			}
		}
	}

	frac := cfg.Overlap.fraction("IMAGE")
	if frac == 0 {
		// Distinct patient per task: zero overlap.
		for ti := 0; ti < cfg.NumTasks; ti++ {
			p := ti % needPatients
			fs := pickStudyWindow(rng, files[p], cfg.FilesPerTask)
			addImageTask(b, cfg, ti, fs)
		}
	} else {
		// Tasks in a hot group are sliding windows over their hot
		// patient's date-ordered image sequence (all studies
		// concatenated), so consecutive queries share most images.
		pool := make([]batch.FileID, 0, needPatients*cfg.StudiesPer)
		for p := 0; p < needPatients; p++ {
			for s := 0; s < cfg.StudiesPer; s++ {
				pool = append(pool, files[p][s]...)
			}
		}
		gen := overlapGenerator{
			rng:          rng,
			pool:         pool,
			groups:       needPatients,
			filesPerTask: cfg.FilesPerTask,
			sharedFrac:   frac,
		}
		for ti, fs := range gen.taskFileSets(cfg.NumTasks) {
			addImageTask(b, cfg, ti, fs)
		}
	}
	if err := b.Finalize(); err != nil {
		return nil, err
	}
	return compact(b)
}

func addImageTask(b *batch.Batch, cfg ImageConfig, ti int, fs []batch.FileID) {
	var bytes int64
	for _, f := range fs {
		bytes += b.FileSize(f)
	}
	b.AddTask(fmt.Sprintf("img-q%04d", ti), cfg.ComputeFactor*float64(bytes), fs)
}

// pickStudyWindow selects k images from a patient's studies, walking
// studies in order (a date-range query).
func pickStudyWindow(rng *rand.Rand, studies [][]batch.FileID, k int) []batch.FileID {
	var fs []batch.FileID
	s := rng.Intn(len(studies))
	for len(fs) < k {
		sf := studies[s%len(studies)]
		for _, f := range sf {
			if len(fs) >= k {
				break
			}
			if !containsFile(fs, f) {
				fs = append(fs, f)
			}
		}
		s++
	}
	return fs
}

func containsFile(fs []batch.FileID, f batch.FileID) bool {
	for _, x := range fs {
		if x == f {
			return true
		}
	}
	return false
}

func gridDims(cells int) (w, h int) {
	w = 1
	for w*w < cells {
		w++
	}
	h = (cells + w - 1) / w
	return w, h
}
