package batch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildBatch(t *testing.T) *Batch {
	t.Helper()
	b := New()
	f0 := b.AddFile("a", 100, 0)
	f1 := b.AddFile("b", 200, 1)
	f2 := b.AddFile("c", 400, 0)
	b.AddTask("t0", 1.5, []FileID{f0, f1})
	b.AddTask("t1", 2.5, []FileID{f1, f2})
	b.AddTask("t2", 0.5, []FileID{f1})
	if err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRequireIndex(t *testing.T) {
	b := buildBatch(t)
	if got := b.Require(1); len(got) != 3 {
		t.Fatalf("Require(f1) = %v", got)
	}
	if got := b.Require(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Require(f0) = %v", got)
	}
}

func TestTaskBytesAndUnique(t *testing.T) {
	b := buildBatch(t)
	if got := b.TaskBytes(0); got != 300 {
		t.Fatalf("TaskBytes(0) = %d", got)
	}
	if got := b.TotalUniqueBytes(nil); got != 700 {
		t.Fatalf("TotalUniqueBytes = %d", got)
	}
	if got := b.TotalUniqueBytes([]TaskID{0, 2}); got != 300 {
		t.Fatalf("TotalUniqueBytes(t0,t2) = %d (f0+f1)", got)
	}
}

func TestStats(t *testing.T) {
	b := buildBatch(t)
	st := b.ComputeStats()
	if st.NumTasks != 3 || st.NumFiles != 3 {
		t.Fatalf("%+v", st)
	}
	if st.MaxSharers != 3 {
		t.Fatalf("max sharers = %d", st.MaxSharers)
	}
	// 5 accesses, 3 unique files → overlap 0.4.
	if st.Overlap < 0.39 || st.Overlap > 0.41 {
		t.Fatalf("overlap = %v", st.Overlap)
	}
}

func TestFinalizeRejects(t *testing.T) {
	b := New()
	f := b.AddFile("a", 100, 0)
	b.AddTask("dup", 1, []FileID{f, f})
	if err := b.Finalize(); err == nil {
		t.Fatal("duplicate file in task not rejected")
	}
	b2 := New()
	b2.AddTask("ghost", 1, []FileID{7})
	if err := b2.Finalize(); err == nil {
		t.Fatal("unknown file not rejected")
	}
	b3 := New()
	b3.AddFile("z", 0, 0) // zero size
	if err := b3.Finalize(); err == nil {
		t.Fatal("zero-size file not rejected")
	}
}

func TestMergeEquivalentFiles(t *testing.T) {
	b := New()
	f0 := b.AddFile("a", 100, 0)
	f1 := b.AddFile("b", 200, 1)
	f2 := b.AddFile("c", 400, 0)
	f3 := b.AddFile("d", 800, 1)
	// f0,f1 both required by exactly {t0}; f2,f3 by {t0,t1}.
	b.AddTask("t0", 1, []FileID{f0, f1, f2, f3})
	b.AddTask("t1", 1, []FileID{f2, f3})
	m, err := MergeEquivalentFiles(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.B.NumFiles() != 2 {
		t.Fatalf("merged files = %d, want 2", m.B.NumFiles())
	}
	sizes := map[int64]bool{}
	for i := range m.B.Files {
		sizes[m.B.Files[i].Size] = true
	}
	if !sizes[300] || !sizes[1200] {
		t.Fatalf("merged sizes wrong: %v", m.B.Files)
	}
	// Expansion restores all original members.
	all := m.Expand([]FileID{0, 1})
	if len(all) != 4 {
		t.Fatalf("expand = %v", all)
	}
}

func TestMergePreservesTaskStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		b := New()
		nf := 10 + rng.Intn(20)
		for f := 0; f < nf; f++ {
			b.AddFile("", int64(1+rng.Intn(100)), rng.Intn(3))
		}
		for k := 0; k < 5+rng.Intn(10); k++ {
			perm := rng.Perm(nf)[:1+rng.Intn(6)]
			fs := make([]FileID, len(perm))
			for i, p := range perm {
				fs[i] = FileID(p)
			}
			b.AddTask("", 1, fs)
		}
		if err := b.Finalize(); err != nil {
			t.Fatal(err)
		}
		m, err := MergeEquivalentFiles(b)
		if err != nil {
			t.Fatal(err)
		}
		// Each task's total input bytes must be preserved.
		for k := 0; k < b.NumTasks(); k++ {
			if b.TaskBytes(TaskID(k)) != m.B.TaskBytes(TaskID(k)) {
				t.Fatalf("trial %d: task %d bytes changed", trial, k)
			}
		}
		// Total bytes preserved.
		if b.TotalUniqueBytes(nil) != m.B.TotalUniqueBytes(nil) {
			t.Fatalf("trial %d: total bytes changed", trial)
		}
	}
}

func TestSubBatch(t *testing.T) {
	b := buildBatch(t)
	sub, taskOrig, fileOrig := SubBatch(b, []TaskID{1, 2})
	if sub.NumTasks() != 2 {
		t.Fatalf("tasks = %d", sub.NumTasks())
	}
	if sub.NumFiles() != 2 { // f1, f2
		t.Fatalf("files = %d", sub.NumFiles())
	}
	if taskOrig[0] != 1 || taskOrig[1] != 2 {
		t.Fatalf("taskOrig = %v", taskOrig)
	}
	for i, of := range fileOrig {
		if sub.Files[i].Size != b.Files[of].Size {
			t.Fatalf("file size mismatch at %d", i)
		}
	}
}

// TestQuickMergeRoundTrip property-tests that merging never loses or
// invents bytes and that every original file lands in exactly one
// class.
func TestQuickMergeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		nf := 5 + rng.Intn(15)
		for f := 0; f < nf; f++ {
			b.AddFile("", int64(1+rng.Intn(50)), 0)
		}
		for k := 0; k < 3+rng.Intn(6); k++ {
			perm := rng.Perm(nf)[:1+rng.Intn(nf)]
			fs := make([]FileID, len(perm))
			for i, p := range perm {
				fs[i] = FileID(p)
			}
			b.AddTask("", 1, fs)
		}
		if err := b.Finalize(); err != nil {
			return false
		}
		m, err := MergeEquivalentFiles(b)
		if err != nil {
			return false
		}
		seen := make([]bool, nf)
		for _, members := range m.Members {
			for _, f := range members {
				if seen[f] {
					return false
				}
				seen[f] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return b.TotalUniqueBytes(nil) == m.B.TotalUniqueBytes(nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
