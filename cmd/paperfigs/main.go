// Command paperfigs regenerates the figures of "Task Scheduling and
// File Replication for Data-Intensive Jobs with Batch-shared I/O"
// (HPDC 2006) on the simulated platform, printing one table per
// figure panel.
//
// Usage:
//
//	paperfigs [-fig 3|4|5a|5b|6|chaos|all] [-quick] [-ip-budget 20s]
//	          [-skip-ip] [-seed N] [-csv dir] [-workers N] [-faults SCENARIO]
//	          [-speculate POLICY] [-obs-trace out.json] [-obs-metrics out.json]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// -fig chaos runs the fault-tolerance matrix (fault scenario ×
// speculation × scheduler) instead of a paper figure; it sweeps its
// own scenarios and reports makespan, degradation with wasted
// compute, and recovery/speculation activity. -faults injects a fixed
// failure scenario (mild, harsh, or a key=value spec) into the cells
// of the ordinary figures, and -speculate arms the straggler watchdog
// (never, fixed-factor[:F], single-fork[:Q]) in those same cells;
// chaos ignores both and sweeps its own matrix.
//
// -workers fans the independent cells of each figure (and each
// scheduler's internal solver) across N goroutines; 0 uses every CPU
// and 1 reproduces the sequential run. Rows are identical for a given
// seed regardless of the worker count.
//
// -obs-trace records every cell's pipeline phases and simulated
// reservations into one Chrome trace-event JSON (open in Perfetto);
// -obs-metrics writes the deterministically merged metric registry of
// all cells. -cpuprofile/-memprofile/-trace write the standard Go
// profiles. Observation is write-only: tables are identical with or
// without these flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/report"
	"repro/internal/spec"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, 5a, 5b, 6, or all")
	quick := flag.Bool("quick", false, "shrink workloads ~10x for a fast smoke run")
	ipBudget := flag.Duration("ip-budget", 0, "time budget per IP solve (default 20s, quick 3s)")
	skipIP := flag.Bool("skip-ip", false, "omit the IP scheduler")
	seed := flag.Int64("seed", 1, "workload generation seed")
	csvDir := flag.String("csv", "", "also write one CSV per table into this directory")
	workers := flag.Int("workers", 0, "parallel workers for figure cells and solvers (0 = all CPUs, 1 = sequential)")
	faultSpec := flag.String("faults", "", "failure scenario for figure cells: none, mild, harsh, or key=value pairs")
	specSpec := flag.String("speculate", "", "speculation policy for figure cells: never, fixed-factor[:F], or single-fork[:Q] (needs -faults; chaos sweeps its own)")
	obsTrace := flag.String("obs-trace", "", "write a Chrome trace-event JSON of all cells (view in Perfetto)")
	obsMetrics := flag.String("obs-metrics", "", "write a JSON snapshot of the merged metric registry")
	journalPath := flag.String("journal", "", "write the merged decision-provenance journal (JSONL) for schedexplain")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	runtimeTrace := flag.String("trace", "", "write a Go runtime trace to this file")
	flag.Parse()

	stopProf, err := obs.Profiles{CPU: *cpuProfile, Mem: *memProfile, Runtime: *runtimeTrace}.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}

	var tracer *obs.Trace
	ob := core.Observer{}
	if *obsTrace != "" {
		tracer = obs.New()
		ob.Trace = tracer
	}
	if *obsMetrics != "" {
		ob.Metrics = obs.NewMetrics()
	}
	if *journalPath != "" {
		ob.Journal = journal.New()
	}

	fp, err := faults.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faults: %v\n", err)
		os.Exit(2)
	}
	sp, err := spec.Parse(*specSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "speculate: %v\n", err)
		os.Exit(2)
	}
	if sp.Active() && fp == nil {
		fmt.Fprintln(os.Stderr, "speculate: no fault scenario (-faults); the watchdog threshold is never exceeded and the policy is inert")
	}

	opts := experiments.Options{Quick: *quick, IPBudget: *ipBudget, Seed: *seed, SkipIP: *skipIP, Workers: *workers, Obs: ob, Faults: fp, Spec: sp}
	runners := map[string]func(experiments.Options) ([]*report.Table, error){
		"3": experiments.Fig3, "4": experiments.Fig4,
		"5a": experiments.Fig5a, "5b": experiments.Fig5b,
		"6": experiments.Fig6, "chaos": experiments.Chaos,
	}
	var order []string
	if *fig == "all" {
		order = []string{"3", "4", "5a", "5b", "6"}
	} else if _, ok := runners[*fig]; ok {
		order = []string{*fig}
	} else {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 3, 4, 5a, 5b, 6, chaos, all)\n", *fig)
		os.Exit(2)
	}

	start := time.Now() //schedlint:allow tracepurity wall-clock total reported to the user, never fed back into scheduling
	for _, f := range order {
		tables, err := runners[f](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	fmt.Printf("\ntotal time: %v\n", time.Since(start).Round(time.Second)) //schedlint:allow tracepurity same wall-clock report as above

	if *obsTrace != "" {
		if err := writeObs(*obsTrace, tracer.WriteChrome); err != nil {
			fmt.Fprintf(os.Stderr, "obs-trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *obsMetrics != "" {
		if err := writeObs(*obsMetrics, ob.Metrics.Snapshot().WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "obs-metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *journalPath != "" {
		if err := writeObs(*journalPath, ob.Journal.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "journal: %v\n", err)
			os.Exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "profile: %v\n", err)
		os.Exit(1)
	}
}

// writeObs creates path and streams write into it, reporting the first
// error from either.
func writeObs(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(dir string, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == ' ', r == '(', r == ')', r == ',', r == ':':
			return '_'
		default:
			return -1
		}
	}, t.Title)
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	t.FprintCSV(f)
	return nil
}
