package core

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/obs/journal"
)

// State is the compute-cluster disk-cache state threaded through the
// sub-batch loop: which files each node currently holds, how much disk
// they consume, and recency/bookkeeping the eviction policies need.
type State struct {
	P *Problem

	holds   [][]bool    // [node][file]
	used    []int64     // bytes used per node
	lastUse [][]float64 // [node][file] absolute sim time of last use
	// Clock is the accumulated simulated execution time of all
	// sub-batches run so far. The executor advances it.
	Clock float64
	// Evictions counts file copies removed so far.
	Evictions int
	// Done marks tasks that have completed.
	Done []bool

	// J receives decision-provenance events when journaling is on.
	// The run loop threads it here so schedulers (via PlanSubBatch's
	// state argument) and the eviction policies can record rationale
	// without API changes; nil (the default) journals nothing.
	J *journal.Recorder
	// JRound is the sub-batch ordinal journal events should carry,
	// maintained by the run loop.
	JRound int
}

// NewState builds the initial state: storage-cluster holds everything,
// compute-cluster disks empty.
func NewState(p *Problem) (*State, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Platform.NumCompute()
	nf := p.Batch.NumFiles()
	st := &State{
		P:       p,
		holds:   make([][]bool, n),
		used:    make([]int64, n),
		lastUse: make([][]float64, n),
		Done:    make([]bool, p.Batch.NumTasks()),
	}
	for i := 0; i < n; i++ {
		st.holds[i] = make([]bool, nf)
		st.lastUse[i] = make([]float64, nf)
	}
	return st, nil
}

// Holds reports whether compute node n currently holds file f.
func (s *State) Holds(n int, f batch.FileID) bool { return s.holds[n][f] }

// Holders returns the compute nodes currently holding file f.
func (s *State) Holders(f batch.FileID) []int {
	var out []int
	for n := range s.holds {
		if s.holds[n][f] {
			out = append(out, n)
		}
	}
	return out
}

// NumCopies returns the number of compute-cluster copies of file f.
func (s *State) NumCopies(f batch.FileID) int {
	c := 0
	for n := range s.holds {
		if s.holds[n][f] {
			c++
		}
	}
	return c
}

// Used returns the bytes of disk used on compute node n.
func (s *State) Used(n int) int64 { return s.used[n] }

// Free returns the free disk bytes on compute node n. Unlimited disks
// report a very large value.
func (s *State) Free(n int) int64 {
	cap := s.P.Platform.Compute[n].DiskSpace
	if cap <= 0 {
		return 1 << 62
	}
	return cap - s.used[n]
}

// AggregateFree returns total free disk across the compute cluster.
func (s *State) AggregateFree() int64 {
	var sum int64
	for n := range s.used {
		f := s.Free(n)
		if f >= 1<<62 {
			return 1 << 62
		}
		sum += f
	}
	return sum
}

// AddFile records that node n now holds file f (staged at absolute sim
// time at). It returns an error on disk-capacity violation — which
// indicates a scheduler bug, since plans must respect capacity.
func (s *State) AddFile(n int, f batch.FileID, at float64) error {
	if s.holds[n][f] {
		s.lastUse[n][f] = at
		return nil
	}
	size := s.P.Batch.FileSize(f)
	if s.Free(n) < size {
		return fmt.Errorf("core: staging file %d (%d B) onto node %d exceeds its disk capacity (free %d B)", f, size, n, s.Free(n))
	}
	s.holds[n][f] = true
	s.used[n] += size
	s.lastUse[n][f] = at
	return nil
}

// Touch records a use of file f on node n at absolute sim time at
// (for LRU eviction).
func (s *State) Touch(n int, f batch.FileID, at float64) {
	if s.holds[n][f] && at > s.lastUse[n][f] {
		s.lastUse[n][f] = at
	}
}

// LastUse returns the most recent use time of file f on node n.
func (s *State) LastUse(n int, f batch.FileID) float64 { return s.lastUse[n][f] }

// Evict removes the copy of file f from node n.
func (s *State) Evict(n int, f batch.FileID) {
	if !s.holds[n][f] {
		return
	}
	s.holds[n][f] = false
	s.used[n] -= s.P.Batch.FileSize(f)
	s.Evictions++
}

// Unstage rolls back an in-flight staging of file f onto node n: the
// copy is removed without counting an Eviction (eviction is a
// scheduling decision; a cancelled speculative transfer is not).
// Used when a speculative twin loses the first-finisher race while
// its inputs are still arriving.
func (s *State) Unstage(n int, f batch.FileID) {
	if !s.holds[n][f] {
		return
	}
	s.holds[n][f] = false
	s.used[n] -= s.P.Batch.FileSize(f)
	s.lastUse[n][f] = 0
}

// DropNode models a node crash: every file copy on compute node n is
// lost and its disk empties. Crash losses are not counted as
// Evictions — eviction is a scheduling decision, a crash is not.
// Returns the number of file copies dropped.
func (s *State) DropNode(n int) int {
	dropped := 0
	for f := range s.holds[n] {
		if s.holds[n][f] {
			s.holds[n][f] = false
			dropped++
		}
		s.lastUse[n][f] = 0
	}
	s.used[n] = 0
	return dropped
}

// PlanView returns a shallow planning view of the state: it shares the
// placement tables (holds, used, recency, Done) read-only but carries
// its own journal recorder, so independent sub-problems can be planned
// concurrently with private journals and merged deterministically
// afterwards. PlanSubBatch implementations never mutate State, which
// is what makes the sharing sound; the view must not outlive the
// planning call.
func (s *State) PlanView(j *journal.Recorder) *State {
	v := *s
	v.J = j
	return &v
}

// PresentMatrix returns a copy of the holds matrix, for scheduler
// formulations that need the full placement snapshot.
func (s *State) PresentMatrix() [][]bool {
	out := make([][]bool, len(s.holds))
	for i := range s.holds {
		out[i] = make([]bool, len(s.holds[i]))
		copy(out[i], s.holds[i])
	}
	return out
}

// AccessFreq returns the number of pending (not-done) tasks that
// access file f — the paper's Access_Freq_l used by the popularity
// eviction policy.
func (s *State) AccessFreq(f batch.FileID) int {
	c := 0
	for _, t := range s.P.Batch.Require(f) {
		if !s.Done[t] {
			c++
		}
	}
	return c
}

// MaxPendingTaskBytes returns the largest file working set among the
// given pending tasks.
func (s *State) MaxPendingTaskBytes(pending []batch.TaskID) int64 {
	var m int64
	for _, t := range pending {
		if n := s.P.Batch.TaskBytes(t); n > m {
			m = n
		}
	}
	return m
}
