package core_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

// SchedulingMSPerTask must keep sub-millisecond resolution:
// Duration.Milliseconds() truncates, which used to report 0 ms/task
// for any batch planned in under 1 ms total.
func TestSchedulingMSPerTaskSubMillisecond(t *testing.T) {
	r := &core.Result{SchedulingTime: 500 * time.Microsecond, TaskCount: 100}
	got := r.SchedulingMSPerTask()
	want := 0.005 // 0.5 ms over 100 tasks
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SchedulingMSPerTask() = %g, want %g", got, want)
	}
	if got == 0 {
		t.Fatal("sub-millisecond scheduling time truncated to 0")
	}

	r = &core.Result{SchedulingTime: 1500 * time.Millisecond, TaskCount: 3}
	if got, want := r.SchedulingMSPerTask(), 500.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("SchedulingMSPerTask() = %g, want %g", got, want)
	}

	r = &core.Result{SchedulingTime: time.Second, TaskCount: 0}
	if got := r.SchedulingMSPerTask(); got != 0 {
		t.Fatalf("SchedulingMSPerTask() with zero tasks = %g, want 0", got)
	}
}
