package jdp

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs/journal"
	"repro/internal/platform"
	"repro/internal/workload"
)

// TestJDPIndexedEquivalence pins the first-holder index against the
// reference copy-scan implementation: full pipeline runs (ordering,
// replication daemon, assignment, execution, LRU eviction rounds) must
// produce byte-identical journals and identical results across
// unlimited disk, disk pressure, and replication-disabled arms.
func TestJDPIndexedEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		compute int
		disk    int64
		seed    int64
		noRepl  bool
	}{
		{"unlimited", 4, 0, 1, false},
		{"unlimited-wide", 9, 0, 2, false},
		{"disk-pressure", 3, 90 * platform.MB, 3, false},
		{"disk-tight", 4, 120 * platform.MB, 4, false},
		{"no-replication", 4, 0, 5, true},
		{"no-replication-disk", 4, 80 * platform.MB, 6, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := workload.Random(tc.seed, 60, 45, 5, 2, 12*platform.MB, platform.PaperComputeFactor)
			var outs [][]byte
			var results []*core.Result
			for _, naive := range []bool{true, false} {
				s := New()
				s.Naive = naive
				p := &core.Problem{Batch: b, Platform: platform.XIO(tc.compute, 2, tc.disk),
					DisableReplication: tc.noRepl}
				rec := journal.New()
				res, err := core.RunWith(p, s, core.RunOptions{Checked: true, Obs: core.Observer{Journal: rec}})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := rec.WriteJSONL(&buf); err != nil {
					t.Fatal(err)
				}
				outs = append(outs, buf.Bytes())
				results = append(results, res)
			}
			if !bytes.Equal(outs[0], outs[1]) {
				a, b := bytes.Split(outs[0], []byte("\n")), bytes.Split(outs[1], []byte("\n"))
				for i := 0; i < len(a) && i < len(b); i++ {
					if !bytes.Equal(a[i], b[i]) {
						t.Fatalf("journals diverge at line %d:\nnaive:   %s\nindexed: %s", i, a[i], b[i])
					}
				}
				t.Fatalf("journals diverge in length: %d vs %d lines", len(a), len(b))
			}
			if results[0].Makespan != results[1].Makespan || results[0].SubBatches != results[1].SubBatches ||
				results[0].Evictions != results[1].Evictions {
				t.Fatalf("results diverge: naive %+v vs indexed %+v", results[0], results[1])
			}
		})
	}
}
